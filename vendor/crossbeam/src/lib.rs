//! Offline stand-in for `crossbeam`, vendored into this workspace.
//!
//! Provides crossbeam's scoped-thread API (`crossbeam::scope`, the
//! `|scope| scope.spawn(|_| ...)` shape) implemented over
//! `std::thread::scope`, which has been stable since Rust 1.63. Only the
//! surface this workspace uses is implemented.

use std::any::Any;
use std::thread as std_thread;

/// Scoped threads.
pub mod thread {
    use super::*;

    /// A scope handle passed to [`scope`]'s closure and to each spawned
    /// thread's closure (crossbeam passes the scope again so children can
    /// spawn siblings; callers here ignore it with `|_|`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The child closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// The crossbeam API returns `Err` when a child panics; the std
    /// implementation underneath propagates child panics instead, so
    /// `Ok` is the only value actually produced (call sites `.expect`
    /// it either way).
    #[allow(clippy::missing_panics_doc)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_locals() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::scope(|scope| {
            for (src, dst) in data.chunks(2).zip(out.chunks_mut(2)) {
                scope.spawn(move |_| {
                    for (s, d) in src.iter().zip(dst.iter_mut()) {
                        *d = s * 10;
                    }
                });
            }
        })
        .expect("workers do not panic");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
