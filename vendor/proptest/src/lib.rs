//! Offline stand-in for `proptest`, vendored into this workspace.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (including `#![proptest_config(...)]`), range and
//! tuple strategies, [`Strategy::prop_map`], `prop::sample::select`,
//! `collection::vec`, and the `prop_assert!` / `prop_assert_eq!`
//! macros. Cases are drawn from a deterministic RNG seeded from the
//! test's module path and name, so failures reproduce exactly. There is
//! no shrinking: a failing case reports the case number and message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The per-test random source. Deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds a generator from a test identifier (module path + name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name; stable across runs and platforms.
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng { inner: StdRng::seed_from_u64(hash) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform sample from a range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: rand::SampleRange<T>,
    {
        self.inner.gen_range(range)
    }
}

/// How a test case fails: carried back to the harness by `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError { msg: msg.to_string() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration. Only `cases` is implemented.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.new_value(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 G)
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Strategies over existing values.
pub mod sample {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Picks uniformly from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires a non-empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.items.len());
            self.items[idx].clone()
        }
    }
}

/// Module alias matching `proptest::prop::...` paths.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-imported prelude, as in real proptest.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) with context when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` randomized draws of its arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0..=1.0f64, n in 1u32..10) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn map_and_tuple_compose(p in (0.0..1.0f64, 1.0..2.0f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..3.0).contains(&p));
        }

        #[test]
        fn select_and_vec(v in prop::collection::vec(prop::sample::select(vec![1, 2, 3]), 8)) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(v.iter().all(|x| [1, 2, 3].contains(x)));
        }
    }
}
