//! Offline stand-in for `rand`, vendored into this workspace.
//!
//! Implements the subset the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over float/integer ranges, and `Rng::gen_bool`.
//! The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a given seed, statistically solid for simulated
//! measurement noise. Sequences differ from the real crate's ChaCha12
//! `StdRng`, which only shifts the simulated lab's noise draws.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// A uniform `f64` in `[0, 1)` from 64 random bits.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
            let y: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&y));
            let n: u32 = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&n));
        }
    }

    #[test]
    fn gen_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
