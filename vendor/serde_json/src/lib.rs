//! Offline stand-in for `serde_json`, vendored into this workspace.
//!
//! Renders the vendored `serde` value tree as JSON and parses JSON back
//! into it. Output is deterministic: map entries keep insertion order,
//! and floats use Rust's shortest round-trip formatting (the
//! `float_roundtrip` feature is therefore always on). Non-finite floats
//! serialize as `null`, as real `serde_json` does.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value as InnerValue;

/// A parsed JSON value.
///
/// Re-uses the vendored serde data model so `Serialize`/`Deserialize`
/// round-trip through it without conversion. `repr(transparent)` makes
/// the reference cast in [`Value::wrap`] sound.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct Value(pub serde::Value);

/// Errors from parsing or rendering JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

/// The `Result` alias used by this crate's API.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // Shortest representation that round-trips; integers print bare.
    out.push_str(&format!("{n}"));
}

fn render(v: &serde::Value, out: &mut String, pretty: bool, indent: usize) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        serde::Value::Null => out.push_str("null"),
        serde::Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        serde::Value::Num(n) => render_number(*n, out),
        serde::Value::Str(s) => escape_into(s, out),
        serde::Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(item, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        serde::Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, out, pretty, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the vendored data model; the `Result` mirrors the
/// real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(Value(value.to_value()))
}

/// Rebuilds a typed value from a [`Value`].
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value.0)?)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<serde::Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", serde::Value::Null),
            Some(b't') => self.parse_keyword("true", serde::Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", serde::Value::Bool(false)),
            Some(b'"') => Ok(serde::Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: serde::Value) -> Result<serde::Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(Error::new)?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(Error::new)?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-scan as UTF-8 from this byte.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(Error::new)?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<serde::Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit()
                || b == b'.'
                || b == b'e'
                || b == b'E'
                || b == b'+'
                || b == b'-'
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(Error::new)?;
        text.parse::<f64>()
            .map(serde::Value::Num)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }

    fn parse_array(&mut self) -> Result<serde::Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(serde::Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(serde::Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<serde::Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(serde::Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(serde::Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

/// Parses a typed value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Parses a typed value from JSON bytes.
///
/// # Errors
///
/// Returns an error on invalid UTF-8, malformed JSON, or shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

// ---------------------------------------------------------------------
// Value ergonomics (indexing, comparisons, accessors)
// ---------------------------------------------------------------------

static NULL: Value = Value(serde::Value::Null);

impl Value {
    /// Member access; returns `Null` for missing keys, like serde_json.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match &self.0 {
            serde::Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| Self::wrap(v)),
            _ => None,
        }
    }

    fn wrap(v: &serde::Value) -> &Value {
        // SAFETY: Value is repr(transparent) over serde::Value.
        unsafe { &*(v as *const serde::Value as *const Value) }
    }

    /// The value as an array of values, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match &self.0 {
            serde::Value::Seq(items) => {
                // SAFETY: Value is repr(transparent) over serde::Value,
                // so a slice of one is layout-identical to the other.
                Some(unsafe {
                    &*(items.as_slice() as *const [serde::Value] as *const [Value])
                })
            }
            _ => None,
        }
    }

    /// The value as an object's entry list, if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, serde::Value)>> {
        match &self.0 {
            serde::Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match &self.0 {
            serde::Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match &self.0 {
            serde::Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if numeric and integral.
    pub fn as_i64(&self) -> Option<i64> {
        match &self.0 {
            serde::Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match &self.0 {
            serde::Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.0 {
            serde::Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self.0, serde::Value::Null)
    }

    /// Whether the value is a string.
    pub fn is_string(&self) -> bool {
        matches!(self.0, serde::Value::Str(_))
    }

    /// Whether the value is a number.
    pub fn is_number(&self) -> bool {
        matches!(self.0, serde::Value::Num(_))
    }

    /// Whether the value is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self.0, serde::Value::Bool(_))
    }

    /// Whether the value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self.0, serde::Value::Seq(_))
    }

    /// Whether the value is an object.
    pub fn is_object(&self) -> bool {
        matches!(self.0, serde::Value::Map(_))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match &self.0 {
            serde::Value::Seq(items) => {
                items.get(idx).map(Value::wrap).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        Ok(Value(v.clone()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        render(&self.0, &mut out, false, 0);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = serde::Value::Map(vec![
            ("id".into(), serde::Value::Str("figure-6".into())),
            (
                "panels".into(),
                serde::Value::Seq(vec![serde::Value::Num(0.5)]),
            ),
        ]);
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"{"id":"figure-6","panels":[0.5]}"#);
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn indexing_and_compare() {
        let v: Value = from_str(r#"{"id":"x","n":[1,2,3]}"#).unwrap();
        assert_eq!(v["id"], "x");
        assert_eq!(v["n"].as_array().unwrap().len(), 3);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_has_indentation() {
        let v: Value = from_str(r#"{"a":1}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\n\"quoted\"\tand \\ back";
        let json = to_string(&serde::Value::Str(s.into())).unwrap();
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }
}
