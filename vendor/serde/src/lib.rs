//! Offline stand-in for `serde`, vendored into this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the serde API the workspace actually uses:
//! `Serialize` / `Deserialize` traits (value-tree based rather than
//! visitor based), the `derive` macros (re-exported from the sibling
//! `serde_derive` proc-macro crate), and impls for the primitive and
//! container types that appear in the model's data structures.
//!
//! The data model is a JSON-shaped [`Value`] tree; `serde_json` (also
//! vendored) renders and parses it. Maps preserve insertion order so
//! serialization is deterministic.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON-shaped serialization value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion-ordered for deterministic output.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Map(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Error produced while deserializing from a [`Value`] tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serialization data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() { Value::Num(x) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    // Non-finite floats serialize as null; map back to NaN
                    // so float fields round-trip structurally.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f64, f32);
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Value trees own their strings, so a borrowed 'static str can
            // only be produced by leaking. The workspace round-trips small
            // static tables (device catalogs) in tests; the leak is bounded
            // by their size.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n; // positional
                            $t::from_value(it.next().ok_or_else(|| {
                                DeError::custom("tuple too short")
                            })?)?
                        },)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected array for tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Num(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn nan_serializes_to_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.get_field("a"), Some(&Value::Num(1.0)));
        assert_eq!(v.get_field("b"), None);
    }
}
