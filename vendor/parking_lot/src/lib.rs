//! Offline stand-in for `parking_lot`, vendored into this workspace.
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! non-poisoning API: `lock()`, `read()`, and `write()` return guards
//! directly. A poisoned std lock (a panic while held) is recovered
//! rather than propagated, matching parking_lot's behavior of never
//! poisoning.

use std::sync;

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex whose guard never reports poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
