//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build environment has no crates.io access, so this proc-macro
//! crate parses the item token stream directly (no `syn`/`quote`) and
//! generates impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits (a value-tree data model).
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields (field attrs: `#[serde(skip)]`,
//!   `#[serde(default = "path")]`, combined `#[serde(skip, default = "path")]`);
//! * newtype and tuple structs (`#[serde(transparent)]` is accepted and
//!   is the default behavior for newtypes);
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics are not supported.

// Token-tree walking reads more clearly with explicit nesting than with
// clippy's collapsed match/if-let forms.
#![allow(clippy::collapsible_match, clippy::single_match)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
    default_path: Option<String>,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed item shape.
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// Serde attributes collected from `#[serde(...)]` groups.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    default_path: Option<String>,
    #[allow(dead_code)]
    transparent: bool,
}

fn parse_serde_attr_group(tokens: Vec<TokenTree>, attrs: &mut SerdeAttrs) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "skip" => attrs.skip = true,
                    "transparent" => attrs.transparent = true,
                    "default" => {
                        // default = "path"
                        if i + 2 < tokens.len() {
                            if let TokenTree::Literal(lit) = &tokens[i + 2] {
                                let s = lit.to_string();
                                attrs.default_path =
                                    Some(s.trim_matches('"').to_string());
                                i += 2;
                            }
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Consumes leading `#[...]` attributes from `tokens[*pos..]`, returning
/// any serde attributes found.
fn consume_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    // #[serde(...)]
                    if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                        (inner.first(), inner.get(1))
                    {
                        if id.to_string() == "serde" {
                            parse_serde_attr_group(
                                args.stream().into_iter().collect(),
                                &mut attrs,
                            );
                        }
                    }
                    *pos += 2;
                    continue;
                }
                *pos += 1;
            }
            _ => break,
        }
    }
    attrs
}

/// Skips an optional `pub` / `pub(...)` visibility marker.
fn consume_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Splits a token list on commas at angle-bracket depth zero (groups
/// already hide their interior commas).
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth: i32 = 0;
    for tt in tokens {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let chunks = split_top_level(group.stream().into_iter().collect());
    let mut fields = Vec::new();
    for chunk in chunks {
        let mut pos = 0;
        let attrs = consume_attrs(&chunk, &mut pos);
        consume_visibility(&chunk, &mut pos);
        let Some(TokenTree::Ident(name)) = chunk.get(pos) else {
            continue;
        };
        fields.push(Field {
            name: name.to_string(),
            skip: attrs.skip,
            default_path: attrs.default_path,
        });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let chunks = split_top_level(group.stream().into_iter().collect());
    let mut variants = Vec::new();
    for chunk in chunks {
        let mut pos = 0;
        let _attrs = consume_attrs(&chunk, &mut pos);
        let Some(TokenTree::Ident(name)) = chunk.get(pos) else {
            continue;
        };
        let name = name.to_string();
        pos += 1;
        let kind = match chunk.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(g.stream().into_iter().collect()).len();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let _attrs = consume_attrs(&tokens, &mut pos);
    consume_visibility(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported");
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(g.stream().into_iter().collect()).len();
                Item::TupleStruct { name, arity }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g) }
            }
            other => panic!("serde derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                if f.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), \
                     serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Map(fields)\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                     serde::Serialize::to_value(&self.0)\n\
                     }}\n}}\n"
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                     serde::Value::Seq(vec![{}])\n\
                     }}\n}}\n",
                    items.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> =
                            (0..*arity).map(|i| format!("x{i}")).collect();
                        let payload = if *arity == 1 {
                            "serde::Serialize::to_value(x0)".to_string()
                        } else {
                            format!(
                                "serde::Value::Seq(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), {payload})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), \
                                     serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    };
    code.parse().expect("serde derive generated invalid Rust")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let n = &f.name;
                if f.skip {
                    let default = f
                        .default_path
                        .clone()
                        .map(|p| format!("{p}()"))
                        .unwrap_or_else(|| "Default::default()".to_string());
                    inits.push_str(&format!("{n}: {default},\n"));
                } else if let Some(path) = &f.default_path {
                    inits.push_str(&format!(
                        "{n}: match v.get_field(\"{n}\") {{\n\
                         Some(x) => serde::Deserialize::from_value(x)?,\n\
                         None => {path}(),\n}},\n"
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: match v.get_field(\"{n}\") {{\n\
                         Some(x) => serde::Deserialize::from_value(x)?,\n\
                         None => return Err(serde::DeError::custom(\
                         \"missing field `{n}` in {name}\")),\n}},\n"
                    ));
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 if !matches!(v, serde::Value::Map(_)) {{\n\
                 return Err(serde::DeError::custom(\"expected map for {name}\"));\n\
                 }}\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                     Ok({name}(serde::Deserialize::from_value(v)?))\n\
                     }}\n}}\n"
                )
            } else {
                let gets: Vec<String> = (0..arity)
                    .map(|i| {
                        format!(
                            "serde::Deserialize::from_value(items.get({i}).ok_or_else(\
                             || serde::DeError::custom(\"tuple too short for {name}\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                     match v {{\n\
                     serde::Value::Seq(items) => Ok({name}({})),\n\
                     _ => Err(serde::DeError::custom(\"expected array for {name}\")),\n\
                     }}\n}}\n}}\n",
                    gets.join(", ")
                )
            }
        }
        Item::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
             fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
             Ok({name})\n}}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        if *arity == 1 {
                            payload_arms.push_str(&format!(
                                "\"{vn}\" => Ok({name}::{vn}(\
                                 serde::Deserialize::from_value(val)?)),\n"
                            ));
                        } else {
                            let gets: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "serde::Deserialize::from_value(\
                                         items.get({i}).ok_or_else(|| \
                                         serde::DeError::custom(\
                                         \"variant payload too short\"))?)?"
                                    )
                                })
                                .collect();
                            payload_arms.push_str(&format!(
                                "\"{vn}\" => match val {{\n\
                                 serde::Value::Seq(items) => Ok({name}::{vn}({})),\n\
                                 _ => Err(serde::DeError::custom(\
                                 \"expected array payload for {name}::{vn}\")),\n}},\n",
                                gets.join(", ")
                            ));
                        }
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let n = &f.name;
                            inits.push_str(&format!(
                                "{n}: match val.get_field(\"{n}\") {{\n\
                                 Some(x) => serde::Deserialize::from_value(x)?,\n\
                                 None => return Err(serde::DeError::custom(\
                                 \"missing field `{n}` in {name}::{vn}\")),\n}},\n"
                            ));
                        }
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(serde::DeError::custom(format!(\
                 \"unknown {name} variant {{other}}\"))),\n\
                 }},\n\
                 serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (key, val) = &entries[0];\n\
                 let _ = val;\n\
                 match key.as_str() {{\n\
                 {payload_arms}\
                 other => Err(serde::DeError::custom(format!(\
                 \"unknown {name} variant {{other}}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(serde::DeError::custom(\"expected {name} variant\")),\n\
                 }}\n}}\n}}\n"
            )
        }
    };
    code.parse().expect("serde derive generated invalid Rust")
}
