//! Offline stand-in for `criterion`, vendored into this workspace.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, throughput
//! annotations, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a small wall-clock harness
//! rather than criterion's statistical machinery. Each benchmark is
//! auto-calibrated to a short time budget and reports the median
//! iteration time to stdout.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    /// Wall-clock budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep `cargo bench` quick: the harness measures medians over a
        // short budget instead of criterion's multi-second sampling.
        Criterion { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.budget;
        run_one(&id.into(), None, budget, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness sizes
    /// samples by time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.budget = time.min(Duration::from_secs(2));
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, self.criterion.budget, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, self.criterion.budget, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An identifier `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{name}/{parameter}") }
    }

    /// An identifier that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmarked closure; its `iter` runs the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(label: &str, throughput: Option<Throughput>, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find an iteration count that takes a measurable slice.
    let mut iters: u64 = 1;
    let per_iter  = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    // Sample within the budget and keep the median.
    let samples = ((budget.as_secs_f64() / (per_iter * iters as f64).max(1e-9)) as usize)
        .clamp(3, 25);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = times[times.len() / 2];
    let throughput_note = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{label:<50} time: {}{throughput_note}", format_time(median));
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:>9.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:>9.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:>9.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:>9.3} s")
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_returns() {
        let mut c = Criterion { budget: Duration::from_millis(10) };
        let mut group = c.benchmark_group("test");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).sum::<u64>())
        });
        group.finish();
    }
}
