//! Design-space exploration: which U-core wins, for which workload, at
//! which parallelism — the decision a heterogeneous-multicore architect
//! faces in Section 6 of the paper.
//!
//! Run with `cargo run --example design_space`.

use ucore::calibrate::WorkloadColumn;
use ucore::model::ParallelFraction;
use ucore::project::{DesignId, ProjectionEngine, Scenario};
use ucore::report::{Align, Table};
use ucore_devices::TechNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = ProjectionEngine::new(Scenario::baseline())?;
    let node = TechNode::N22; // mid-roadmap decision point

    for column in [WorkloadColumn::Fft1024, WorkloadColumn::Mmm, WorkloadColumn::Bs] {
        println!("== {} at {node} ==", column.label());
        let designs = DesignId::for_column(engine.table5(), column);
        let mut table = Table::new(vec![
            "design".into(),
            "f=0.5".into(),
            "f=0.9".into(),
            "f=0.99".into(),
            "f=0.999".into(),
            "limiter @0.99".into(),
        ]);
        for col in 1..=4 {
            table.align(col, Align::Right);
        }
        for design in designs {
            let mut row = vec![design.label()];
            let mut limiter = String::from("-");
            for fv in [0.5, 0.9, 0.99, 0.999] {
                let f = ParallelFraction::new(fv)?;
                let points = engine.project(design, column, f)?;
                match points.iter().find(|p| p.node == node) {
                    Some(p) => {
                        row.push(format!("{:.1}", p.speedup));
                        if (fv - 0.99).abs() < 1e-9 {
                            limiter = p.limiter.to_string();
                        }
                    }
                    None => row.push("-".into()),
                }
            }
            row.push(limiter);
            table.row(row);
        }
        println!("{table}");

        // The architect's takeaway, computed rather than eyeballed.
        let f99 = ParallelFraction::new(0.99)?;
        let mut best: Option<(String, f64)> = None;
        for design in DesignId::for_column(engine.table5(), column) {
            if let Some(s) = engine.speedup_at(design, column, node, f99) {
                if best.as_ref().is_none_or(|(_, b)| s > *b) {
                    best = Some((design.label(), s));
                }
            }
        }
        if let Some((label, speedup)) = best {
            println!("winner at f = 0.99: {label} with {speedup:.1}x\n");
        }
    }
    Ok(())
}
