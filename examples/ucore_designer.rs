//! The designer's inverse questions, answered from the `(µ, φ)` design
//! space: how good must a new fabric be — and when does being better
//! stop mattering?
//!
//! Run with `cargo run --example ucore_designer`.

use ucore::calibrate::BceCalibration;
use ucore::model::{Budgets, ParallelFraction};
use ucore::project::{bandwidth_wall_mu, required_mu, DesignSpaceMap};
use ucore::report::{Align, Table};
use ucore_workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 40 nm budgets for the FFT-1024 workload, in model units.
    let bce = BceCalibration::derive(Workload::fft(1024)?)?;
    let budgets = Budgets::new(
        19.0,
        bce.power_budget_units(100.0, 1.0),
        bce.bandwidth_budget_units(180.0),
    )?;
    let f = ParallelFraction::new(0.99)?;

    println!(
        "FFT-1024 at 40 nm: A = {:.0} BCE, P = {:.1} BCE, B = {:.1} BCE\n",
        budgets.area(),
        budgets.power(),
        budgets.bandwidth()
    );

    // Question 1: where is the bandwidth wall?
    for phi in [0.3, 0.6, 5.0] {
        match bandwidth_wall_mu(&budgets, f, phi) {
            Some(wall) => println!(
                "phi = {phi}: designs become bandwidth-limited past mu ≈ {wall:.1}"
            ),
            None => println!("phi = {phi}: no bandwidth wall in range"),
        }
    }

    // Question 2: what mu does each speedup target demand?
    println!("\nrequired mu (at phi = 0.5) per speedup target:");
    let mut table = Table::new(vec!["target".into(), "required mu".into()]);
    table.align(1, Align::Right);
    for target in [10.0, 20.0, 30.0, 40.0, 45.0] {
        let cell = match required_mu(&budgets, f, 0.5, target) {
            Some(mu) => format!("{mu:.2}"),
            None => "unreachable".into(),
        };
        table.row(vec![format!("{target}x"), cell]);
    }
    println!("{table}");

    // Question 3: the coarse map a designer would pin on the wall.
    let map = DesignSpaceMap::sweep(&budgets, f, (1.0, 1000.0), (0.25, 8.0), 6)?;
    println!("speedup map (rows phi, columns mu):");
    let mut grid = Table::new(
        std::iter::once("phi \\ mu".to_string())
            .chain(map.mu_values().iter().map(|m| format!("{m:.1}")))
            .collect(),
    );
    for col in 1..=map.mu_values().len() {
        grid.align(col, Align::Right);
    }
    let width = map.mu_values().len();
    for (i, phi) in map.phi_values().iter().enumerate() {
        let row_cells = &map.cells()[i * width..(i + 1) * width];
        let mut row = vec![format!("{phi:.2}")];
        row.extend(row_cells.iter().map(|c| format!("{:.1}", c.speedup)));
        grid.row(row);
    }
    println!("{grid}");

    // The same map at higher resolution, as a heatmap.
    let fine = DesignSpaceMap::sweep(&budgets, f, (1.0, 1000.0), (0.25, 8.0), 24)?;
    let heat = ucore::report::Heatmap::new(
        "speedup heatmap (rows phi low->high, cols mu low->high)",
        fine.mu_values().iter().map(|m| format!("mu={m:.1}")).collect(),
        fine.phi_values().iter().map(|p| format!("{p:.2}")).collect(),
        fine.cells().iter().map(|c| c.speedup).collect(),
    );
    // Print just the grid body; the 24-entry column legend is noise here.
    for line in heat.to_string().lines().take(27) {
        println!("{line}");
    }
    println!(
        "reading: beyond the wall, whole columns repeat — extra mu buys nothing; \
         climbing phi rows erodes the power-limited cells."
    );
    Ok(())
}
