//! Energy as the first-class objective — the paper's third question:
//! "would our conclusions change if lowering total energy is the primary
//! objective instead of maximizing performance?"
//!
//! This example optimizes the same chips for maximum speedup, minimum
//! energy, and minimum energy-delay product, and then runs the §6.3
//! iso-performance study: match a CMP's performance with a U-core chip
//! and bank the power difference.
//!
//! Run with `cargo run --example energy_budget`.

use ucore::calibrate::{Table5, WorkloadColumn};
use ucore::model::{
    min_power_for_target, Budgets, ChipSpec, Objective, Optimizer, ParallelFraction,
};
use ucore::report::{Align, Table};
use ucore_devices::DeviceId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table5 = Table5::derive()?;
    let f = ParallelFraction::new(0.9)?;
    // 22 nm-class budgets for the MMM workload.
    let budgets = Budgets::new(75.0, 35.0, 1500.0)?;

    let chips: Vec<(String, ChipSpec)> = vec![
        ("AsymCMP".into(), ChipSpec::asymmetric_offload()),
        (
            "HET R5870".into(),
            ChipSpec::heterogeneous(
                table5
                    .ucore(DeviceId::R5870, WorkloadColumn::Mmm)
                    .expect("published cell"),
            ),
        ),
        (
            "HET ASIC".into(),
            ChipSpec::heterogeneous(
                table5
                    .ucore(DeviceId::Asic, WorkloadColumn::Mmm)
                    .expect("published cell"),
            ),
        ),
    ];

    println!("MMM, f = 0.9, 22 nm-class budgets — three objectives:\n");
    let mut table = Table::new(vec![
        "chip".into(),
        "objective".into(),
        "speedup".into(),
        "energy".into(),
        "EDP".into(),
        "r".into(),
    ]);
    for col in 2..=5 {
        table.align(col, Align::Right);
    }
    for (name, spec) in &chips {
        for (label, objective) in [
            ("max speedup", Objective::MaxSpeedup),
            ("min energy", Objective::MinEnergy),
            ("min EDP", Objective::MinEnergyDelay),
        ] {
            let best = Optimizer::paper_default()
                .with_objective(objective)
                .optimize(spec, &budgets, f)?;
            let edp = best.energy / best.evaluation.speedup.get();
            table.row(vec![
                name.clone(),
                label.into(),
                format!("{:.1}", best.evaluation.speedup.get()),
                format!("{:.3}", best.energy),
                format!("{:.4}", edp),
                format!("{:.0}", best.evaluation.r),
            ]);
        }
    }
    println!("{table}");

    // §6.3: match the CMP's speedup with the ASIC chip at minimum power.
    let cmp = ChipSpec::asymmetric_offload();
    let cmp_best = Optimizer::paper_default().optimize(&cmp, &budgets, f)?;
    let target = cmp_best.evaluation.speedup;
    let asic_spec = &chips[2].1;
    let iso = min_power_for_target(asic_spec, &budgets, f, target)?;
    let cmp_power = cmp_best
        .evaluation
        .serial_power
        .max(cmp_best.evaluation.parallel_power);
    println!(
        "iso-performance: matching the CMP's {target} costs the ASIC chip {:.2} BCE of \
         peak power vs the CMP's {:.2} — a {:.1}x reduction",
        iso.peak_power,
        cmp_power,
        cmp_power / iso.peak_power
    );
    Ok(())
}
