//! Quickstart: model one heterogeneous chip and ask the paper's core
//! question — is a U-core worth it, and what limits it?
//!
//! Run with `cargo run --example quickstart`.

use ucore::calibrate::{Table5, WorkloadColumn};
use ucore::model::{Budgets, ChipSpec, Optimizer, ParallelFraction};
use ucore::project::{DesignId, ProjectionEngine, Scenario};
use ucore_devices::{DeviceId, TechNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Calibrate: derive every U-core's (mu, phi) from the measured
    //    devices — this reproduces the paper's Table 5.
    let table5 = Table5::derive()?;
    let asic_fft = table5
        .ucore(DeviceId::Asic, WorkloadColumn::Fft1024)
        .expect("the ASIC FFT cell is published");
    println!(
        "ASIC FFT-1024 u-core: mu = {:.0} (per-area speed), phi = {:.2} (per-area power)",
        asic_fft.mu(),
        asic_fft.phi()
    );

    // 2. Ask the raw model: with 19 BCE of area, ~9 BCE of power and
    //    ~50 BCE of bandwidth (the 40 nm budgets), what can a chip built
    //    around that u-core achieve on a 99%-parallel FFT workload?
    let chip = ChipSpec::heterogeneous(asic_fft);
    let budgets = Budgets::new(19.0, 9.0, 50.0)?;
    let f = ParallelFraction::new(0.99)?;
    let best = Optimizer::paper_default().optimize(&chip, &budgets, f)?;
    println!(
        "hand-built 40nm chip: speedup {} with r = {} ({}-limited)",
        best.evaluation.speedup, best.evaluation.r, best.evaluation.limiter
    );

    // 3. Or let the projection engine do all of it, across the ITRS
    //    roadmap (this is one line of the paper's Figure 6).
    let engine = ProjectionEngine::new(Scenario::baseline())?;
    println!("\nASIC FFT-1024 HET across the roadmap at f = 0.99:");
    for point in engine.project(DesignId::Het(DeviceId::Asic), WorkloadColumn::Fft1024, f)? {
        println!(
            "  {:>4}: speedup {:6.1}  ({}-limited, r = {:.0}, n = {:.1})",
            point.node.to_string(),
            point.speedup,
            point.limiter,
            point.r,
            point.n
        );
    }

    // 4. The headline comparison: how much does the u-core buy over a
    //    conventional CMP at 11 nm?
    let asic = engine
        .speedup_at(DesignId::Het(DeviceId::Asic), WorkloadColumn::Fft1024, TechNode::N11, f)
        .expect("feasible");
    let cmp = engine
        .speedup_at(DesignId::AsymCmp, WorkloadColumn::Fft1024, TechNode::N11, f)
        .expect("feasible");
    println!("\nat 11nm, f = 0.99: ASIC HET {asic:.1}x vs AsymCMP {cmp:.1}x ({:.1}x gain)", asic / cmp);
    Ok(())
}
