//! A mobile SoC study: the paper's scenario 5 (10 W) made concrete.
//!
//! Under a phone-class power budget, which U-cores still earn their
//! silicon — and does the paper's claim hold that "only the ASIC-based
//! HETs can ever approach bandwidth-limited performance"?
//!
//! Run with `cargo run --example mobile_soc`.

use ucore::calibrate::WorkloadColumn;
use ucore::model::{Limiter, ParallelFraction};
use ucore::project::{DesignId, ProjectionEngine, Scenario};
use ucore_devices::{DeviceId, TechNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let desktop = ProjectionEngine::new(Scenario::baseline())?;
    let mobile = ProjectionEngine::new(Scenario::s5_low_power())?;
    let f = ParallelFraction::new(0.99)?;
    let column = WorkloadColumn::Fft1024;

    println!("FFT-1024, f = 0.99: 100 W desktop budget vs 10 W mobile budget\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>14}",
        "design", "100W @11nm", "10W @11nm", "kept (%)", "10W limiter"
    );
    for design in DesignId::for_column(desktop.table5(), column) {
        let d = desktop.speedup_at(design, column, TechNode::N11, f);
        let points = mobile.project(design, column, f)?;
        let m = points.iter().find(|p| p.node == TechNode::N11);
        match (d, m) {
            (Some(d), Some(m)) => println!(
                "{:<14} {:>10.1} {:>10.1} {:>11.0}% {:>14}",
                design.label(),
                d,
                m.speedup,
                100.0 * m.speedup / d,
                m.limiter.to_string()
            ),
            _ => println!("{:<14} {:>10} {:>10}", design.label(), "-", "infeasible"),
        }
    }

    // Check the paper's scenario-5 claim mechanically.
    let asic_pts = mobile.project(DesignId::Het(DeviceId::Asic), column, f)?;
    let asic_bw_limited = asic_pts.iter().any(|p| p.limiter == Limiter::Bandwidth);
    let flexible_bw_limited = [DeviceId::Gtx285, DeviceId::Gtx480, DeviceId::V6Lx760]
        .iter()
        .any(|&d| {
            mobile
                .project(DesignId::Het(d), column, f)
                .map(|pts| pts.iter().any(|p| p.limiter == Limiter::Bandwidth))
                .unwrap_or(false)
        });
    println!(
        "\nat 10 W: ASIC reaches the bandwidth wall: {asic_bw_limited}; \
         any flexible u-core does: {flexible_bw_limited}"
    );
    println!("(the paper: only ASIC-based HETs approach bandwidth-limited performance)");
    Ok(())
}
