//! Roadmap explorer: sweep every §6.2 scenario for one design and see
//! how the conclusions move — plus a mixed-fabric chip from the paper's
//! §6.3 discussion.
//!
//! Run with `cargo run --example roadmap_explorer`.

use ucore::calibrate::{Table5, WorkloadColumn};
use ucore::model::{MixedChip, ParallelFraction, UCorePartition};
use ucore::project::{DesignId, ProjectionEngine, Scenario};
use ucore_devices::{DeviceId, TechNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = ParallelFraction::new(0.99)?;
    let scenarios = [
        Scenario::baseline(),
        Scenario::s1_low_bandwidth(),
        Scenario::s2_high_bandwidth(),
        Scenario::s3_half_area(),
        Scenario::s4_high_power(),
        Scenario::s5_low_power(),
        Scenario::s6_serial_power(),
    ];

    println!("GTX480 FFT-1024 HET at 11 nm, f = 0.99, across all scenarios:\n");
    for scenario in scenarios {
        let name = scenario.name().to_string();
        let engine = ProjectionEngine::new(scenario)?;
        match engine.speedup_at(
            DesignId::Het(DeviceId::Gtx480),
            WorkloadColumn::Fft1024,
            TechNode::N11,
            f,
        ) {
            Some(s) => println!("  {name:<22} speedup {s:6.1}"),
            None => println!("  {name:<22} infeasible"),
        }
    }

    // Section 6.3's "mix and match" prospect: an MMM ASIC next to a GPU
    // fabric for bandwidth-bound FFTs, on one 75-BCE (22 nm) die.
    let table5 = Table5::derive()?;
    let mmm_asic = table5
        .ucore(DeviceId::Asic, WorkloadColumn::Mmm)
        .expect("published cell");
    let gpu_fft = table5
        .ucore(DeviceId::Gtx480, WorkloadColumn::Fft1024)
        .expect("published cell");
    let chip = MixedChip::new(
        75.0,
        2.0,
        vec![
            UCorePartition { ucore: mmm_asic, area_share: 0.5, work_share: 0.5 },
            UCorePartition { ucore: gpu_fft, area_share: 0.5, work_share: 0.5 },
        ],
    )?;
    let tuned = chip.with_optimal_shares();
    println!(
        "\nmixed 22nm chip (MMM ASIC + GPU FFT fabric), f = 0.99, half the parallel work each:"
    );
    println!("  naive 50/50 area split: speedup {}", chip.speedup(f)?);
    println!(
        "  optimal split ({}% / {}%): speedup {}",
        (tuned.partitions()[0].area_share * 100.0).round(),
        (tuned.partitions()[1].area_share * 100.0).round(),
        tuned.speedup(f)?
    );
    Ok(())
}
