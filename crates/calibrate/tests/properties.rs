//! Property-based tests over the calibration pipeline.

use proptest::prelude::*;
use ucore_calibrate::{
    derive_ucore, mu_ranking, table5_with_conventions, BceCalibration, Table5,
    WorkloadColumn, CALIBRATION_ALPHA,
};
use ucore_devices::DeviceId;
use ucore_simdev::SimLab;
use ucore_workloads::Workload;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn derivation_scales_predictably_with_r(r in 1.0f64..8.0) {
        // mu ∝ 1/sqrt(r): derived values track the convention smoothly.
        let lab = SimLab::paper();
        let w = Workload::mmm(128).unwrap();
        let i7 = lab.measure(DeviceId::CoreI7_960, w).unwrap();
        let gpu = lab.measure(DeviceId::Gtx285, w).unwrap();
        let at_r = derive_ucore(&i7, &gpu, r, CALIBRATION_ALPHA).unwrap();
        let at_2 = derive_ucore(&i7, &gpu, 2.0, CALIBRATION_ALPHA).unwrap();
        let expect = at_2.mu() * (2.0f64 / r).sqrt();
        prop_assert!((at_r.mu() - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn conventions_never_flip_rankings(
        area_factor in 0.5f64..2.0,
        r in 1.5f64..3.0,
        alpha in 1.2f64..2.5,
    ) {
        let rows = table5_with_conventions(area_factor, r, alpha).unwrap();
        for column in WorkloadColumn::ALL {
            let ranking = mu_ranking(&rows, column);
            prop_assert_eq!(ranking[0], DeviceId::Asic, "{}", column);
            // The FPGA is the slowest per-area MMM option in every
            // convention.
            if column == WorkloadColumn::Mmm {
                prop_assert_eq!(*ranking.last().unwrap(), DeviceId::V6Lx760);
            }
        }
    }

    #[test]
    fn bce_budget_conversions_are_linear(
        watts in 10.0f64..400.0,
        scale in 0.2f64..1.0,
        gb_s in 10.0f64..2000.0,
    ) {
        let bce = BceCalibration::derive(Workload::fft(1024).unwrap()).unwrap();
        let p = bce.power_budget_units(watts, scale);
        prop_assert!((bce.power_budget_units(2.0 * watts, scale) - 2.0 * p).abs() < 1e-9 * p);
        prop_assert!((bce.power_budget_units(watts, scale / 2.0) - 2.0 * p).abs() < 1e-9 * p);
        let b = bce.bandwidth_budget_units(gb_s);
        prop_assert!((bce.bandwidth_budget_units(3.0 * gb_s) - 3.0 * b).abs() < 1e-9 * b);
    }
}

#[test]
fn table5_is_stable_across_derivations() {
    // Calibration is deterministic: two derivations agree bit-for-bit.
    let a = Table5::derive().unwrap();
    let b = Table5::derive().unwrap();
    assert_eq!(a, b);
}
