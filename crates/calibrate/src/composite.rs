//! The composite three-kernel workload behind the portfolio study
//! (Figure 11): MMM, Black-Scholes and FFT-1024 as Multi-Amdahl
//! segments, each carrying the Table 5 `(µ, φ)` of the device that
//! accelerates it.
//!
//! The paper evaluates each kernel in isolation; the portfolio figure
//! asks what a chip should look like when one program spends its
//! parallel time across all three. The accelerated fraction `f` is
//! split equally — each kernel takes `f/3` of baseline execution time —
//! so the composite stays a one-knob family exactly like the paper's
//! per-kernel panels.

use crate::params::CalibrationError;
use crate::table5::{Table5, WorkloadColumn};
use ucore_core::{ParallelFraction, Segment, SegmentedWorkload};
use ucore_devices::DeviceId;

/// The three kernel columns of the composite workload, in figure order.
pub const COMPOSITE_COLUMNS: [WorkloadColumn; 3] = [
    WorkloadColumn::Mmm,
    WorkloadColumn::Bs,
    WorkloadColumn::Fft1024,
];

/// The composite workload for one device: serial weight `1 − f`, one
/// segment of weight `f/3` per kernel, each with the device's Table 5
/// `(µ, φ)` for that kernel.
///
/// All three portfolio devices (GTX285, LX760, ASIC) have a published
/// Table 5 cell for every composite column.
///
/// ```
/// use ucore_calibrate::{composite_workload, Table5};
/// use ucore_core::ParallelFraction;
/// use ucore_devices::DeviceId;
/// let table = Table5::derive()?;
/// let f = ParallelFraction::new(0.99)?;
/// let w = composite_workload(&table, DeviceId::Asic, f)?;
/// assert_eq!(w.segments().len(), 3);
/// # Ok::<(), ucore_calibrate::CalibrationError>(())
/// ```
///
/// # Errors
///
/// Returns [`CalibrationError::MissingMeasurement`] if the device lacks
/// a Table 5 cell for one of the three kernels (e.g. the GTX480 never
/// published a Black-Scholes measurement), and
/// [`CalibrationError::InvalidParameters`] if the segment weights fail
/// model validation (impossible for an in-range `f`).
pub fn composite_workload(
    table: &Table5,
    device: DeviceId,
    f: ParallelFraction,
) -> Result<SegmentedWorkload, CalibrationError> {
    let weight = f.get() / COMPOSITE_COLUMNS.len() as f64;
    let mut segments = Vec::with_capacity(COMPOSITE_COLUMNS.len());
    for column in COMPOSITE_COLUMNS {
        let ucore = table.ucore(device, column).ok_or_else(|| {
            CalibrationError::MissingMeasurement {
                cell: format!("{column} on {device}"),
            }
        })?;
        segments
            .push(Segment::new(weight, ucore).map_err(CalibrationError::InvalidParameters)?);
    }
    SegmentedWorkload::new(f.serial(), segments).map_err(CalibrationError::InvalidParameters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_covers_all_three_kernels_for_the_portfolio_devices() {
        let table = Table5::derive().unwrap();
        let f = ParallelFraction::new(0.9).unwrap();
        for device in [DeviceId::Gtx285, DeviceId::V6Lx760, DeviceId::Asic] {
            let w = composite_workload(&table, device, f).unwrap();
            assert_eq!(w.segments().len(), 3);
            assert!((w.serial_weight() - 0.1).abs() < 1e-12);
            assert!((w.parallel_weight() - 0.9).abs() < 1e-9);
        }
    }

    #[test]
    fn segment_parameters_come_from_table5() {
        let table = Table5::derive().unwrap();
        let f = ParallelFraction::new(0.99).unwrap();
        let w = composite_workload(&table, DeviceId::Asic, f).unwrap();
        // MMM is the first composite column; the ASIC cell is (27.4, 0.79).
        assert!((w.segments()[0].ucore().mu() - 27.4).abs() < 0.6);
        assert!((w.segments()[2].ucore().mu() - 489.0).abs() < 10.0);
    }

    #[test]
    fn devices_with_published_gaps_are_rejected() {
        let table = Table5::derive().unwrap();
        let f = ParallelFraction::new(0.9).unwrap();
        // The GTX480 has no published Black-Scholes cell.
        assert!(matches!(
            composite_workload(&table, DeviceId::Gtx480, f),
            Err(CalibrationError::MissingMeasurement { .. })
        ));
    }

    #[test]
    fn fully_serial_composite_is_legal() {
        let table = Table5::derive().unwrap();
        let f = ParallelFraction::new(0.0).unwrap();
        let w = composite_workload(&table, DeviceId::Asic, f).unwrap();
        assert_eq!(w.parallel_weight(), 0.0);
        assert_eq!(w.serial_weight(), 1.0);
    }
}
