//! Footnote 1: deriving `(µ, φ)` from measured observables.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use ucore_core::{ModelError, UCore};
use ucore_simdev::Measurement;

/// The sequential-core size the paper assigns one Core i7 core, in BCE.
pub const CALIBRATION_R: f64 = 2.0;

/// The serial power-law exponent used during calibration.
pub const CALIBRATION_ALPHA: f64 = 1.75;

/// Errors raised during calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// The two measurements are for different workloads and cannot be
    /// compared.
    WorkloadMismatch {
        /// The baseline's workload, displayed.
        baseline: String,
        /// The U-core candidate's workload, displayed.
        candidate: String,
    },
    /// The derived parameters were rejected by the model (zero or
    /// non-finite observables upstream).
    InvalidParameters(ModelError),
    /// The lab has no measurement for the requested cell.
    MissingMeasurement {
        /// Description of the missing cell.
        cell: String,
    },
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::WorkloadMismatch { baseline, candidate } => {
                write!(f, "cannot calibrate {candidate} against a {baseline} baseline")
            }
            CalibrationError::InvalidParameters(e) => {
                write!(f, "derived parameters rejected: {e}")
            }
            CalibrationError::MissingMeasurement { cell } => {
                write!(f, "no measurement for {cell}")
            }
        }
    }
}

impl Error for CalibrationError {}

impl From<ModelError> for CalibrationError {
    fn from(e: ModelError) -> Self {
        CalibrationError::InvalidParameters(e)
    }
}

/// Derives a U-core's `(µ, φ)` from its measurement and the i7 baseline
/// measurement of the *same* workload:
///
/// * `µ = x_u / (x_i7 · √r)` — performance per BCE of area;
/// * `φ = µ · e_i7 / (r^((1−α)/2) · e_u)` — power per BCE of area;
///
/// with `x = perf/mm²` and `e = perf/W`, both at the paper's 40 nm
/// normalization.
///
/// # Errors
///
/// Returns [`CalibrationError::WorkloadMismatch`] if the measurements
/// disagree on the workload, or [`CalibrationError::InvalidParameters`]
/// if the observables produce a non-positive `µ` or `φ`.
pub fn derive_ucore(
    baseline: &Measurement,
    candidate: &Measurement,
    r: f64,
    alpha: f64,
) -> Result<UCore, CalibrationError> {
    if baseline.workload != candidate.workload {
        return Err(CalibrationError::WorkloadMismatch {
            baseline: baseline.workload.to_string(),
            candidate: candidate.workload.to_string(),
        });
    }
    let mu = candidate.perf_per_mm2 / (baseline.perf_per_mm2 * r.sqrt());
    let phi = mu * baseline.perf_per_joule
        / (r.powf((1.0 - alpha) / 2.0) * candidate.perf_per_joule);
    Ok(UCore::new(mu, phi)?)
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
/// The i7-derived BCE observables in area and energy terms, useful for
/// reporting alongside Table 5.
pub struct BceDensity {
    /// BCE performance per mm² (equals the workload unit per mm²).
    pub perf_per_mm2: f64,
    /// BCE performance per watt.
    pub perf_per_watt: f64,
}

/// The BCE's `perf/mm²` and `perf/W` derived from an i7 measurement:
/// a single i7 core is `r` BCE of area delivering `√r` BCE of
/// performance at `r^(α/2)` BCE of power.
pub fn bce_density(baseline: &Measurement, r: f64, alpha: f64) -> BceDensity {
    // x_bce = (bce perf) / (bce area): from x_i7 = (√r · p_bce · cores) /
    // (r · a_bce · cores) = x_bce / √r  =>  x_bce = x_i7 · √r.
    let perf_per_mm2 = baseline.perf_per_mm2 * r.sqrt();
    // e_bce = e_i7 / r^((1-α)/2 · ...): e_i7 = (√r·p)/(r^(α/2)·w) =
    // e_bce · r^((1-α)/2)  =>  e_bce = e_i7 / r^((1-α)/2).
    let perf_per_watt = baseline.perf_per_joule / r.powf((1.0 - alpha) / 2.0);
    BceDensity { perf_per_mm2, perf_per_watt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucore_devices::DeviceId;
    use ucore_simdev::SimLab;
    use ucore_workloads::Workload;

    fn measure(device: DeviceId, w: Workload) -> Measurement {
        SimLab::paper().measure(device, w).unwrap()
    }

    #[test]
    fn gtx285_mmm_matches_published_table5() {
        let w = Workload::mmm(128).unwrap();
        let i7 = measure(DeviceId::CoreI7_960, w);
        let gpu = measure(DeviceId::Gtx285, w);
        let u = derive_ucore(&i7, &gpu, CALIBRATION_R, CALIBRATION_ALPHA).unwrap();
        assert!((u.mu() - 3.41).abs() < 0.05, "mu = {}", u.mu());
        assert!((u.phi() - 0.74).abs() < 0.01, "phi = {}", u.phi());
    }

    #[test]
    fn asic_bs_matches_published_table5() {
        let w = Workload::black_scholes();
        let i7 = measure(DeviceId::CoreI7_960, w);
        let asic = measure(DeviceId::Asic, w);
        let u = derive_ucore(&i7, &asic, CALIBRATION_R, CALIBRATION_ALPHA).unwrap();
        assert!((u.mu() - 482.0).abs() / 482.0 < 0.01, "mu = {}", u.mu());
        assert!((u.phi() - 4.75).abs() < 0.05, "phi = {}", u.phi());
    }

    #[test]
    fn fft_anchors_match_published_table5_exactly() {
        // The FFT observables were built by inverting footnote 1, so the
        // derivation must return the published numbers to high precision.
        let cases = [
            (DeviceId::Gtx285, 64usize, 2.42, 0.59),
            (DeviceId::Gtx285, 1024, 2.88, 0.63),
            (DeviceId::Gtx480, 16384, 2.83, 0.66),
            (DeviceId::V6Lx760, 1024, 2.02, 0.29),
            (DeviceId::Asic, 16384, 689.0, 6.38),
        ];
        for (device, size, mu_pub, phi_pub) in cases {
            let w = Workload::fft(size).unwrap();
            let i7 = measure(DeviceId::CoreI7_960, w);
            let u = measure(device, w);
            let derived = derive_ucore(&i7, &u, CALIBRATION_R, CALIBRATION_ALPHA).unwrap();
            assert!(
                (derived.mu() - mu_pub).abs() / mu_pub < 1e-9,
                "{device:?} FFT-{size} mu"
            );
            assert!(
                (derived.phi() - phi_pub).abs() / phi_pub < 1e-9,
                "{device:?} FFT-{size} phi"
            );
        }
    }

    #[test]
    fn workload_mismatch_rejected() {
        let i7 = measure(DeviceId::CoreI7_960, Workload::mmm(128).unwrap());
        let gpu = measure(DeviceId::Gtx285, Workload::black_scholes());
        let err = derive_ucore(&i7, &gpu, 2.0, 1.75).unwrap_err();
        assert!(matches!(err, CalibrationError::WorkloadMismatch { .. }));
    }

    #[test]
    fn i7_calibrated_against_itself_is_sqrt_r_fold() {
        // The i7 "as a u-core" has mu = 1/sqrt(r) relative to a BCE
        // (device-level x equals x_bce/sqrt(r)).
        let w = Workload::mmm(128).unwrap();
        let i7 = measure(DeviceId::CoreI7_960, w);
        let u = derive_ucore(&i7, &i7, 2.0, 1.75).unwrap();
        assert!((u.mu() - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bce_density_matches_hand_derivation() {
        let w = Workload::mmm(128).unwrap();
        let i7 = measure(DeviceId::CoreI7_960, w);
        let bce = bce_density(&i7, 2.0, 1.75);
        // x_bce = 0.50 * sqrt(2) ≈ 0.707 GFLOP/s/mm².
        assert!((bce.perf_per_mm2 - 0.50 * 2f64.sqrt()).abs() < 1e-9);
        // e_bce = 1.14 / 2^(-0.375) ≈ 1.479 GFLOP/J.
        assert!((bce.perf_per_watt - 1.14 / 2f64.powf(-0.375)).abs() < 1e-9);
    }
}
