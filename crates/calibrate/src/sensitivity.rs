//! Calibration-sensitivity checks.
//!
//! The paper defends its predictions by re-running the study with data
//! "already collected from 55nm/65nm devices" and observing the same
//! conclusions. This module provides the analytical analog: perturb the
//! calibration conventions (the 45 ≈ 40 nm area-normalization choice,
//! the `r = 2` BCE sizing, the α estimate) and verify that the
//! *conclusions* — which device leads each workload, which U-cores are
//! power savers — are invariant even though the raw `(µ, φ)` move.

use crate::params::{derive_ucore, CalibrationError};
use crate::table5::{Table5Row, WorkloadColumn};
use ucore_devices::DeviceId;
use ucore_simdev::{Measurement, SimLab};

/// Derives the Table 5 grid under perturbed conventions:
///
/// * `i7_area_factor` scales the i7's normalized area (1.0 = the paper's
///   45 ≈ 40 nm convention; 0.79 = strict `(40/45)²` scaling);
/// * `r` is the BCE sizing of one i7 core (paper: 2.0; the unrounded
///   Atom-derived value is ≈ 2.06);
/// * `alpha` is the serial power-law exponent (paper: 1.75).
///
/// # Errors
///
/// Returns [`CalibrationError::MissingMeasurement`] if an i7 baseline is
/// unavailable (never, with the shipped lab).
pub fn table5_with_conventions(
    i7_area_factor: f64,
    r: f64,
    alpha: f64,
) -> Result<Vec<Table5Row>, CalibrationError> {
    let lab = SimLab::paper();
    let mut rows = Vec::new();
    for column in WorkloadColumn::ALL {
        let workload = column.workload();
        let baseline = lab
            .measure(DeviceId::CoreI7_960, workload)
            .map_err(|_| CalibrationError::MissingMeasurement {
                cell: format!("{workload} on Core i7"),
            })?;
        // Scaling the i7 area scales its perf/mm² inversely.
        let adjusted = Measurement {
            perf_per_mm2: baseline.perf_per_mm2 / i7_area_factor,
            ..baseline
        };
        for device in DeviceId::ALL {
            if device == DeviceId::CoreI7_960 {
                continue;
            }
            let Ok(measurement) = lab.measure(device, workload) else {
                continue;
            };
            let ucore = derive_ucore(&adjusted, &measurement, r, alpha)?;
            rows.push(Table5Row { device, column, ucore });
        }
    }
    Ok(rows)
}

/// The per-column µ ranking of devices under a derived grid.
pub fn mu_ranking(rows: &[Table5Row], column: WorkloadColumn) -> Vec<DeviceId> {
    let mut in_column: Vec<&Table5Row> =
        rows.iter().filter(|r| r.column == column).collect();
    in_column.sort_by(|a, b| b.ucore.mu().total_cmp(&a.ucore.mu()));
    in_column.iter().map(|r| r.device).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline_rows() -> Vec<Table5Row> {
        table5_with_conventions(1.0, 2.0, 1.75).unwrap()
    }

    #[test]
    fn paper_conventions_reproduce_table5() {
        let rows = baseline_rows();
        let asic_mmm = rows
            .iter()
            .find(|r| r.device == DeviceId::Asic && r.column == WorkloadColumn::Mmm)
            .unwrap();
        assert!((asic_mmm.ucore.mu() - 27.4).abs() < 0.5);
    }

    #[test]
    fn strict_area_scaling_shifts_values_uniformly() {
        // Using (40/45)^2 = 0.79 for the i7 scales every mu by 0.79 and
        // every phi likewise — ratios between devices are untouched.
        let paper = baseline_rows();
        let strict = table5_with_conventions(0.79, 2.0, 1.75).unwrap();
        for (a, b) in paper.iter().zip(&strict) {
            assert_eq!(a.device, b.device);
            assert!((b.ucore.mu() / a.ucore.mu() - 0.79).abs() < 1e-9);
            assert!((b.ucore.phi() / a.ucore.phi() - 0.79).abs() < 1e-9);
        }
    }

    #[test]
    fn rankings_survive_convention_changes() {
        // The paper's conclusions hinge on orderings, and those are
        // invariant to the calibration conventions.
        let variants = [
            table5_with_conventions(1.0, 2.0, 1.75).unwrap(),
            table5_with_conventions(0.79, 2.0, 1.75).unwrap(),
            table5_with_conventions(1.0, 2.06, 1.75).unwrap(),
            table5_with_conventions(1.0, 2.0, 2.25).unwrap(),
        ];
        let reference: Vec<Vec<DeviceId>> = WorkloadColumn::ALL
            .iter()
            .map(|&c| mu_ranking(&variants[0], c))
            .collect();
        for variant in &variants[1..] {
            for (column, expected) in WorkloadColumn::ALL.iter().zip(&reference) {
                assert_eq!(&mu_ranking(variant, *column), expected, "{column}");
            }
        }
    }

    #[test]
    fn asic_leads_every_ranking() {
        let rows = baseline_rows();
        for column in WorkloadColumn::ALL {
            assert_eq!(mu_ranking(&rows, column)[0], DeviceId::Asic, "{column}");
        }
    }

    #[test]
    fn bigger_r_inflates_mu() {
        // mu ∝ 1/sqrt(r): the unrounded r = 2.06 gives slightly smaller
        // mu than the paper's r = 2.
        let r2 = baseline_rows();
        let r206 = table5_with_conventions(1.0, 2.06, 1.75).unwrap();
        for (a, b) in r2.iter().zip(&r206) {
            assert!(b.ucore.mu() < a.ucore.mu());
        }
    }

    #[test]
    fn alpha_only_moves_phi() {
        let a175 = baseline_rows();
        let a225 = table5_with_conventions(1.0, 2.0, 2.25).unwrap();
        for (a, b) in a175.iter().zip(&a225) {
            assert!((a.ucore.mu() - b.ucore.mu()).abs() < 1e-12);
            assert!((a.ucore.phi() - b.ucore.phi()).abs() > 1e-6);
        }
    }
}
