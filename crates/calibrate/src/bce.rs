//! Anchoring the abstract BCE in absolute units, per workload.
//!
//! The projection engine needs three absolute numbers for each workload:
//! what one BCE's throughput *is* (to express speedups in real units),
//! what one BCE's active power is in watts (to convert the 100 W budget
//! into the model's `P`), and what one BCE's compulsory bandwidth is in
//! GB/s (to convert 180 GB/s into the model's `B`). All three follow
//! from the i7 measurement and the Atom-derived `r = 2`.

use crate::params::{CALIBRATION_ALPHA, CALIBRATION_R};
use crate::CalibrationError;
use serde::{Deserialize, Serialize};
use ucore_devices::DeviceId;
use ucore_simdev::SimLab;
use ucore_workloads::Workload;

/// Number of cores on the baseline Core i7-960.
const I7_CORES: f64 = 4.0;

/// The absolute BCE parameters for one workload.
///
/// ```
/// use ucore_calibrate::BceCalibration;
/// use ucore_workloads::Workload;
///
/// let bce = BceCalibration::derive(Workload::mmm(128)?)?;
/// // One BCE of MMM performance is ~17 GFLOP/s and ~11.5 W.
/// assert!((bce.perf() - 16.97).abs() < 0.1);
/// assert!((bce.watts() - 11.5).abs() < 0.2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BceCalibration {
    workload: Workload,
    perf: f64,
    watts: f64,
    compulsory_gb_s: f64,
}

impl BceCalibration {
    /// Derives the BCE parameters for a workload from the lab's i7
    /// measurement.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError::MissingMeasurement`] if the lab has no
    /// i7 measurement for the workload.
    pub fn derive(workload: Workload) -> Result<Self, CalibrationError> {
        let i7 = SimLab::paper()
            .measure(DeviceId::CoreI7_960, workload)
            .map_err(|_| CalibrationError::MissingMeasurement {
                cell: format!("{workload} on Core i7"),
            })?;
        // One i7 core = sqrt(r) BCE of performance at r^(alpha/2) BCE of
        // power.
        let perf = i7.perf / (I7_CORES * CALIBRATION_R.sqrt());
        let core_watts_per_core = i7.core_watts / I7_CORES;
        let watts = core_watts_per_core / CALIBRATION_R.powf(CALIBRATION_ALPHA / 2.0);
        let compulsory_gb_s = workload.compulsory_bandwidth_gb_s(perf);
        Ok(BceCalibration { workload, perf, watts, compulsory_gb_s })
    }

    /// The workload this calibration is for.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// One BCE's throughput in the workload's unit.
    pub fn perf(&self) -> f64 {
        self.perf
    }

    /// One BCE's active power in watts.
    pub fn watts(&self) -> f64 {
        self.watts
    }

    /// One BCE's compulsory off-chip bandwidth in GB/s.
    pub fn compulsory_gb_s(&self) -> f64 {
        self.compulsory_gb_s
    }

    /// Converts a watt budget into the model's `P` (BCE power units).
    ///
    /// `power_scale` is the node's relative power per transistor
    /// (Table 6): at smaller nodes a BCE burns proportionally fewer
    /// watts, so the same 100 W budget buys more BCEs.
    pub fn power_budget_units(&self, watts: f64, power_scale: f64) -> f64 {
        watts / (self.watts * power_scale)
    }

    /// Converts a GB/s budget into the model's `B` (compulsory-bandwidth
    /// units).
    pub fn bandwidth_budget_units(&self, gb_s: f64) -> f64 {
        gb_s / self.compulsory_gb_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmm_bce_absolute_values() {
        let bce = BceCalibration::derive(Workload::mmm(128).unwrap()).unwrap();
        // 96 GFLOP/s / (4 cores x sqrt 2).
        assert!((bce.perf() - 16.97).abs() < 0.01);
        // (96/1.14)/4 W per core / 2^0.875.
        assert!((bce.watts() - 11.48).abs() < 0.05);
        // 16.97 GFLOP/s * 0.03125 bytes/flop.
        assert!((bce.compulsory_gb_s() - 0.53).abs() < 0.01);
    }

    #[test]
    fn fft1024_bce_absolute_values() {
        let bce = BceCalibration::derive(Workload::fft(1024).unwrap()).unwrap();
        // 70 / (4 sqrt 2) = 12.37 pseudo-GFLOP/s.
        assert!((bce.perf() - 12.374).abs() < 0.01);
        // 12.37 * 0.32 bytes/flop ≈ 3.96 GB/s.
        assert!((bce.compulsory_gb_s() - 3.96).abs() < 0.02);
    }

    #[test]
    fn bs_bce_absolute_values() {
        let bce = BceCalibration::derive(Workload::black_scholes()).unwrap();
        // 487 / (4 sqrt 2) = 86.1 Mopts/s; x10 bytes -> 0.861 GB/s.
        assert!((bce.perf() - 86.09).abs() < 0.05);
        assert!((bce.compulsory_gb_s() - 0.861).abs() < 0.005);
    }

    #[test]
    fn table6_budgets_in_bce_units() {
        // Sanity for the projection inputs at 40 nm.
        let bce = BceCalibration::derive(Workload::fft(1024).unwrap()).unwrap();
        let p = bce.power_budget_units(100.0, 1.0);
        assert!((6.0..12.0).contains(&p), "P = {p}");
        let b = bce.bandwidth_budget_units(180.0);
        assert!((40.0..60.0).contains(&b), "B = {b}");
    }

    #[test]
    fn power_scale_grows_budget() {
        let bce = BceCalibration::derive(Workload::mmm(128).unwrap()).unwrap();
        let at40 = bce.power_budget_units(100.0, 1.0);
        let at11 = bce.power_budget_units(100.0, 0.25);
        assert!((at11 - 4.0 * at40).abs() < 1e-9);
    }
}
