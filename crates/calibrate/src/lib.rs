//! # ucore-calibrate — from measurements to model parameters
//!
//! The bridge between the lab (`ucore-simdev`) and the analytical model
//! (`ucore-core`):
//!
//! 1. **BCE anchoring** ([`bce`]): the Core i7 measurement plus the
//!    Atom-derived `r = 2` pin down the Base Core Equivalent's absolute
//!    throughput, power, and compulsory bandwidth for each workload;
//! 2. **U-core derivation** ([`params`], footnote 1 of the paper):
//!    `µ = x_u / (x_i7·√r)` and `φ = µ·e_i7 / (r^((1−α)/2)·e_u)` where
//!    `x` is perf/mm² (40 nm-normalized) and `e` is perf/W;
//! 3. **Table 5** ([`table5`]): the full grid of `(µ, φ)` for five
//!    devices × five workload columns.
//!
//! ```
//! use ucore_calibrate::Table5;
//! use ucore_devices::DeviceId;
//! use ucore_calibrate::WorkloadColumn;
//!
//! let table = Table5::derive()?;
//! let asic_mmm = table.ucore(DeviceId::Asic, WorkloadColumn::Mmm).unwrap();
//! assert!((asic_mmm.mu() - 27.4).abs() < 0.2); // published: 27.4
//! # Ok::<(), ucore_calibrate::CalibrationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom: model code returns typed errors; `unwrap`/`expect`
// stay legal in `#[cfg(test)]` code only (ucore-lint enforces the same
// contract at the token level).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bce;
pub mod composite;
pub mod params;
pub mod sensitivity;
pub mod table5;

pub use bce::BceCalibration;
pub use composite::{composite_workload, COMPOSITE_COLUMNS};
pub use params::{derive_ucore, CalibrationError, CALIBRATION_ALPHA, CALIBRATION_R};
pub use sensitivity::{mu_ranking, table5_with_conventions};
pub use table5::{Table5, Table5Row, WorkloadColumn};
