//! Table 5: the full `(µ, φ)` grid.

use crate::params::{derive_ucore, CalibrationError, CALIBRATION_ALPHA, CALIBRATION_R};
use serde::{Deserialize, Serialize};
use std::fmt;
use ucore_core::UCore;
use ucore_devices::DeviceId;
use ucore_simdev::SimLab;
use ucore_workloads::Workload;

/// The five workload columns of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadColumn {
    /// Dense matrix multiplication.
    Mmm,
    /// Black-Scholes.
    Bs,
    /// 64-point FFT.
    Fft64,
    /// 1024-point FFT.
    Fft1024,
    /// 16384-point FFT.
    Fft16384,
}

impl WorkloadColumn {
    /// All columns, in the paper's order.
    pub const ALL: [WorkloadColumn; 5] = [
        WorkloadColumn::Mmm,
        WorkloadColumn::Bs,
        WorkloadColumn::Fft64,
        WorkloadColumn::Fft1024,
        WorkloadColumn::Fft16384,
    ];

    /// The concrete workload this column measures.
    pub fn workload(self) -> Workload {
        match self {
            // The paper's MMM bandwidth characterization assumes square
            // inputs blocked at N = 128 (footnote 3); the measured
            // observables do not depend on the size parameter.
            WorkloadColumn::Mmm => Workload::mmm_const::<128>(),
            WorkloadColumn::Bs => Workload::black_scholes(),
            WorkloadColumn::Fft64 => Workload::fft_const::<64>(),
            WorkloadColumn::Fft1024 => Workload::fft_const::<1024>(),
            WorkloadColumn::Fft16384 => Workload::fft_const::<16384>(),
        }
    }

    /// The column header used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadColumn::Mmm => "MMM",
            WorkloadColumn::Bs => "BS",
            WorkloadColumn::Fft64 => "FFT-64",
            WorkloadColumn::Fft1024 => "FFT-1024",
            WorkloadColumn::Fft16384 => "FFT-16384",
        }
    }
}

impl fmt::Display for WorkloadColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One cell of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// The U-core device.
    pub device: DeviceId,
    /// The workload column.
    pub column: WorkloadColumn,
    /// The derived parameters.
    pub ucore: UCore,
}

/// The derived Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    rows: Vec<Table5Row>,
}

impl Table5 {
    /// Derives the full table by measuring every available cell in the
    /// simulated lab and applying footnote 1.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrationError::MissingMeasurement`] only if the i7
    /// baseline itself cannot be measured (never the case for the
    /// paper's lab); missing U-core cells are simply absent, as in the
    /// published table.
    pub fn derive() -> Result<Self, CalibrationError> {
        let lab = SimLab::paper();
        let mut rows = Vec::new();
        for column in WorkloadColumn::ALL {
            let workload = column.workload();
            let baseline = lab
                .measure(DeviceId::CoreI7_960, workload)
                .map_err(|_| CalibrationError::MissingMeasurement {
                    cell: format!("{workload} on Core i7"),
                })?;
            for device in DeviceId::ALL {
                if device == DeviceId::CoreI7_960 {
                    continue;
                }
                let Ok(measurement) = lab.measure(device, workload) else {
                    continue; // a published "-" cell
                };
                let ucore =
                    derive_ucore(&baseline, &measurement, CALIBRATION_R, CALIBRATION_ALPHA)?;
                rows.push(Table5Row { device, column, ucore });
            }
        }
        Ok(Table5 { rows })
    }

    /// All derived cells.
    pub fn rows(&self) -> &[Table5Row] {
        &self.rows
    }

    /// The `(µ, φ)` for one cell, if the paper measured it.
    pub fn ucore(&self, device: DeviceId, column: WorkloadColumn) -> Option<UCore> {
        self.rows
            .iter()
            .find(|r| r.device == device && r.column == column)
            .map(|r| r.ucore)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published Table 5, for end-to-end comparison.
    fn published() -> Vec<(DeviceId, WorkloadColumn, f64, f64)> {
        use DeviceId::*;
        use WorkloadColumn::*;
        vec![
            (Gtx285, Mmm, 3.41, 0.74),
            (Gtx285, Bs, 17.0, 0.57),
            (Gtx285, Fft64, 2.42, 0.59),
            (Gtx285, Fft1024, 2.88, 0.63),
            (Gtx285, Fft16384, 3.75, 0.89),
            (Gtx480, Mmm, 1.83, 0.77),
            (Gtx480, Fft64, 1.56, 0.39),
            (Gtx480, Fft1024, 2.20, 0.47),
            (Gtx480, Fft16384, 2.83, 0.66),
            (R5870, Mmm, 8.47, 1.27),
            (V6Lx760, Mmm, 0.75, 0.31),
            (V6Lx760, Bs, 5.68, 0.26),
            (V6Lx760, Fft64, 2.81, 0.29),
            (V6Lx760, Fft1024, 2.02, 0.29),
            (V6Lx760, Fft16384, 3.02, 0.37),
            (Asic, Mmm, 27.4, 0.79),
            (Asic, Bs, 482.0, 4.75),
            (Asic, Fft64, 733.0, 5.34),
            (Asic, Fft1024, 489.0, 4.96),
            (Asic, Fft16384, 689.0, 6.38),
        ]
    }

    #[test]
    fn reproduces_every_published_cell_within_two_percent() {
        let table = Table5::derive().unwrap();
        for (device, column, mu_pub, phi_pub) in published() {
            let u = table
                .ucore(device, column)
                .unwrap_or_else(|| panic!("missing {device:?} {column}"));
            assert!(
                (u.mu() - mu_pub).abs() / mu_pub < 0.02,
                "{device:?} {column} mu: {} vs {mu_pub}",
                u.mu()
            );
            assert!(
                (u.phi() - phi_pub).abs() / phi_pub < 0.02,
                "{device:?} {column} phi: {} vs {phi_pub}",
                u.phi()
            );
        }
    }

    #[test]
    fn has_exactly_the_published_cells() {
        let table = Table5::derive().unwrap();
        assert_eq!(table.rows().len(), published().len());
        // The paper's gaps stay gaps.
        assert!(table.ucore(DeviceId::R5870, WorkloadColumn::Bs).is_none());
        assert!(table.ucore(DeviceId::R5870, WorkloadColumn::Fft1024).is_none());
        assert!(table.ucore(DeviceId::Gtx480, WorkloadColumn::Bs).is_none());
    }

    #[test]
    fn asic_dominates_mu_everywhere() {
        let table = Table5::derive().unwrap();
        for column in WorkloadColumn::ALL {
            let asic = table.ucore(DeviceId::Asic, column).unwrap();
            for device in [DeviceId::Gtx285, DeviceId::Gtx480, DeviceId::V6Lx760] {
                if let Some(other) = table.ucore(device, column) {
                    assert!(asic.mu() > other.mu(), "{column}: {device:?}");
                }
            }
        }
    }

    #[test]
    fn fpga_has_lowest_phi() {
        // The FPGA's hallmark in Table 5: lowest relative power.
        let table = Table5::derive().unwrap();
        for column in WorkloadColumn::ALL {
            let fpga = table.ucore(DeviceId::V6Lx760, column).unwrap();
            for device in [DeviceId::Gtx285, DeviceId::Gtx480, DeviceId::Asic] {
                if let Some(other) = table.ucore(device, column) {
                    assert!(fpga.phi() < other.phi(), "{column}: vs {device:?}");
                }
            }
        }
    }

    #[test]
    fn column_workloads() {
        assert_eq!(WorkloadColumn::Fft1024.workload().size(), 1024);
        assert_eq!(WorkloadColumn::Mmm.label(), "MMM");
        assert_eq!(WorkloadColumn::ALL.len(), 5);
    }
}
