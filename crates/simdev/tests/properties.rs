//! Property-based tests over the simulated lab.

use proptest::prelude::*;
use ucore_devices::DeviceId;
use ucore_simdev::power::PowerModel;
use ucore_simdev::probe::CurrentProbe;
use ucore_simdev::trace::{synthesize_trace, Segment, Trace};
use ucore_simdev::{data, Roofline};

fn any_device() -> impl Strategy<Value = DeviceId> {
    prop::sample::select(DeviceId::ALL.to_vec())
}

proptest! {
    #[test]
    fn roofline_attainable_never_exceeds_either_ceiling(
        compute in 0.1f64..1e4,
        bandwidth in 0.1f64..1e3,
        intensity in 0.001f64..1e3,
    ) {
        let r = Roofline::new(compute, bandwidth);
        let (attained, _) = r.attainable(intensity);
        prop_assert!(attained <= compute + 1e-9);
        prop_assert!(attained <= bandwidth * intensity + 1e-9);
        prop_assert!(attained >= 0.0);
    }

    #[test]
    fn roofline_verdict_is_consistent_with_ridge(
        compute in 0.1f64..1e4,
        bandwidth in 0.1f64..1e3,
        intensity in 0.001f64..1e3,
    ) {
        use ucore_simdev::RooflineVerdict;
        let r = Roofline::new(compute, bandwidth);
        let (_, verdict) = r.attainable(intensity);
        if intensity >= r.ridge_intensity() {
            prop_assert_eq!(verdict, RooflineVerdict::ComputeBound);
        } else {
            prop_assert_eq!(verdict, RooflineVerdict::BandwidthBound);
        }
    }

    #[test]
    fn power_breakdown_components_are_non_negative_and_sum(
        device in any_device(),
        core_watts in 0.0f64..500.0,
        traffic in 0.0f64..500.0,
    ) {
        let b = PowerModel::for_device(device).breakdown(core_watts, traffic);
        for part in [b.core_dynamic, b.core_leakage, b.uncore_static, b.uncore_dynamic, b.unknown] {
            prop_assert!(part >= 0.0);
        }
        let sum = b.core_dynamic + b.core_leakage + b.uncore_static
            + b.uncore_dynamic + b.unknown;
        prop_assert!((b.total() - sum).abs() < 1e-9);
        prop_assert!((b.core_total() - core_watts).abs() < 1e-9);
    }

    #[test]
    fn uncore_subtraction_recovers_core_power_within_residue(
        device in any_device(),
        core_watts in 1.0f64..300.0,
        traffic in 0.0f64..300.0,
    ) {
        let m = PowerModel::for_device(device);
        let total = m.breakdown(core_watts, traffic).total();
        let recovered = m.subtract_uncore(total, traffic);
        prop_assert!((recovered - core_watts).abs() / core_watts < 0.10);
    }

    #[test]
    fn probe_steady_state_is_within_the_noise_band(
        watts in 0.1f64..500.0,
        noise in 0.0f64..0.10,
        seed in 0u64..1000,
    ) {
        let mut probe = CurrentProbe::new(watts, noise, seed);
        let reading = probe.steady_state(200);
        prop_assert!(reading >= watts * (1.0 - noise) - 1e-9);
        prop_assert!(reading <= watts * (1.0 + noise) + 1e-9);
    }

    #[test]
    fn trace_estimator_is_exact_on_synthesized_traces(
        f in 0.0f64..=1.0,
        segments in 2usize..400,
        width in 2u32..256,
        seed in 0u64..500,
    ) {
        let trace = synthesize_trace(f, segments, width, seed);
        // Renormalization targets f exactly, up to the granularity of
        // whole segments at the extremes.
        let est = trace.estimate_f();
        prop_assert!((est - f).abs() < 1.0 / segments as f64 + 1e-9,
            "f = {f}, est = {est}");
    }

    #[test]
    fn trace_histogram_is_a_distribution(
        f in 0.0f64..=1.0,
        segments in 2usize..200,
        seed in 0u64..100,
    ) {
        let trace = synthesize_trace(f, segments, 8, seed);
        let hist = trace.width_histogram();
        let total: f64 = hist.iter().map(|(_, t)| t).sum();
        if !trace.segments().is_empty() {
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
        for (_, share) in hist {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&share));
        }
    }

    #[test]
    fn fft_data_monotone_metadata(
        log2 in 4u32..=20,
    ) {
        // Every published FFT observable is positive, and area is
        // consistent with perf / perf_per_mm2.
        for device in [DeviceId::CoreI7_960, DeviceId::Gtx285, DeviceId::Gtx480,
                       DeviceId::V6Lx760, DeviceId::Asic] {
            let d = data::fft_data(device, 1usize << log2).unwrap();
            prop_assert!(d.perf > 0.0);
            prop_assert!(d.perf_per_mm2 > 0.0);
            prop_assert!(d.perf_per_joule > 0.0);
            let area = d.area_mm2();
            prop_assert!((d.perf / area - d.perf_per_mm2).abs() / d.perf_per_mm2 < 1e-9);
        }
    }

    #[test]
    fn manual_trace_estimates_match_hand_computation(
        serial in 0.1f64..10.0,
        parallel in 0.1f64..10.0,
    ) {
        let trace = Trace::new(vec![
            Segment { duration: serial, width: 1 },
            Segment { duration: parallel, width: 16 },
        ]);
        let expect = parallel / (serial + parallel);
        prop_assert!((trace.estimate_f() - expect).abs() < 1e-12);
    }
}
