//! Streaming-pipeline throughput models for the custom-logic designs.
//!
//! The paper's ASIC and FPGA kernels are *streaming pipelines*: Spiral
//! generates radix-2² single-delay-feedback FFT datapaths, the MMM core
//! is a systolic tile array, and the Black-Scholes core is a fully
//! pipelined arithmetic chain that retires one option per cycle. This
//! module models those structures directly — ops per cycle × clock =
//! throughput — and cross-checks the lab's calibrated ASIC observables
//! against what the structures can physically sustain.

use serde::{Deserialize, Serialize};
use ucore_workloads::{Workload, WorkloadKind};

/// A hardware streaming pipeline: a datapath that accepts `inputs_per_cycle`
/// work items per cycle once full.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingPipeline {
    /// Items (samples, options, MAC operands) accepted per cycle.
    pub inputs_per_cycle: f64,
    /// Operations retired per item (the kernel's ops/sample).
    pub ops_per_input: f64,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Fill latency in cycles (irrelevant to steady-state throughput but
    /// part of the design).
    pub latency_cycles: u64,
}

impl StreamingPipeline {
    /// Steady-state throughput in billions of operations per second:
    /// `inputs/cycle × ops/input × GHz`.
    pub fn gops_per_s(&self) -> f64 {
        self.inputs_per_cycle * self.ops_per_input * self.clock_ghz
    }

    /// Steady-state item throughput (items per nanosecond ≡ G-items/s).
    pub fn items_per_ns(&self) -> f64 {
        self.inputs_per_cycle * self.clock_ghz
    }

    /// Time to drain one batch of `n` items, in microseconds, including
    /// the fill latency.
    pub fn batch_time_us(&self, n: u64) -> f64 {
        let cycles = self.latency_cycles as f64 + n as f64 / self.inputs_per_cycle;
        cycles / (self.clock_ghz * 1000.0)
    }
}

/// A streaming FFT core in the Spiral radix-2² SDF style: one complex
/// sample per cycle per lane, `5·log2 N` pseudo-ops per sample.
pub fn fft_core(n: usize, lanes: f64, clock_ghz: f64) -> StreamingPipeline {
    let log2n = (n as f64).log2();
    StreamingPipeline {
        inputs_per_cycle: lanes,
        ops_per_input: 5.0 * log2n,
        clock_ghz,
        // One stage of buffering per rank: ~N cycles to fill.
        latency_cycles: n as u64,
    }
}

/// A systolic MMM tile array: `macs` multiply-accumulate units, each
/// retiring 2 flops per cycle.
pub fn mmm_core(macs: f64, clock_ghz: f64) -> StreamingPipeline {
    StreamingPipeline {
        inputs_per_cycle: macs,
        ops_per_input: 2.0,
        clock_ghz,
        latency_cycles: 64,
    }
}

/// A fully pipelined Black-Scholes chain: `lanes` options per cycle,
/// each worth the pipeline's op count.
pub fn black_scholes_core(lanes: f64, clock_ghz: f64) -> StreamingPipeline {
    StreamingPipeline {
        inputs_per_cycle: lanes,
        ops_per_input: ucore_workloads::blackscholes::FLOPS_PER_OPTION,
        clock_ghz,
        latency_cycles: 120, // deep transcendental pipeline
    }
}

/// The pipeline configuration that explains a calibrated ASIC
/// observable: how many lanes/MACs at a 65 nm-class clock are needed to
/// sustain the lab's published throughput.
///
/// Returns `None` when the lab has no ASIC data for the workload.
pub fn explain_asic_throughput(workload: Workload, clock_ghz: f64) -> Option<StreamingPipeline> {
    let observed = crate::asic::synthesize(workload)?;
    let per_lane = match workload.kind() {
        WorkloadKind::Fft => fft_core(workload.size(), 1.0, clock_ghz),
        WorkloadKind::Mmm => mmm_core(1.0, clock_ghz),
        WorkloadKind::BlackScholes => black_scholes_core(1.0, clock_ghz),
    };
    // perf is GFLOP/s for MMM/FFT and Mopts/s for BS; convert BS to
    // G-ops/s through its op count.
    let target_gops = match workload.kind() {
        WorkloadKind::BlackScholes => {
            observed.perf / 1000.0 * ucore_workloads::blackscholes::FLOPS_PER_OPTION
        }
        _ => observed.perf,
    };
    let lanes = target_gops / per_lane.gops_per_s();
    Some(StreamingPipeline {
        inputs_per_cycle: per_lane.inputs_per_cycle * lanes,
        ..per_lane
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_arithmetic() {
        let p = StreamingPipeline {
            inputs_per_cycle: 2.0,
            ops_per_input: 50.0,
            clock_ghz: 0.4,
            latency_cycles: 100,
        };
        assert!((p.gops_per_s() - 40.0).abs() < 1e-12);
        assert!((p.items_per_ns() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fft_core_ops_match_the_pseudo_flop_convention() {
        let core = fft_core(1024, 1.0, 0.5);
        // 5 log2(1024) = 50 pseudo-ops per sample at 0.5 GHz = 25 Gops/s.
        assert!((core.gops_per_s() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn batch_time_includes_fill_latency() {
        let core = fft_core(1024, 1.0, 1.0);
        let t = core.batch_time_us(1024);
        // 1024 fill + 1024 drain cycles at 1 GHz = 2.048 us.
        assert!((t - 2.048e-3 * 1000.0).abs() < 1e-9);
        // More lanes shrink the drain, not the (structural) fill.
        let wide = fft_core(1024, 4.0, 1.0);
        assert!(wide.batch_time_us(1024) < t);
    }

    #[test]
    fn asic_fft_explained_by_a_plausible_lane_count() {
        // The calibrated ASIC FFT-1024 core (~4 TFLOP/s at 16 mm²):
        // at a 65 nm-class 600 MHz clock that is ~130 sample lanes —
        // plausible for a 16 mm² array of streaming cores, not absurd.
        let w = Workload::fft(1024).unwrap();
        let pipeline = explain_asic_throughput(w, 0.6).unwrap();
        let lanes = pipeline.inputs_per_cycle;
        assert!((50.0..500.0).contains(&lanes), "lanes = {lanes}");
        // And the pipeline reproduces the observed throughput.
        let observed = crate::asic::synthesize(w).unwrap().perf;
        assert!((pipeline.gops_per_s() - observed).abs() / observed < 1e-9);
    }

    #[test]
    fn asic_mmm_explained_by_a_plausible_mac_count() {
        // 694 GFLOP/s at 600 MHz = ~578 MACs; a 24x24 systolic tile
        // array — plausible at 36 mm² (40 nm-normalized).
        let w = Workload::mmm(2048).unwrap();
        let pipeline = explain_asic_throughput(w, 0.6).unwrap();
        let macs = pipeline.inputs_per_cycle;
        assert!((400.0..800.0).contains(&macs), "macs = {macs}");
    }

    #[test]
    fn asic_bs_explained_by_a_handful_of_lanes() {
        // 25.5 Gopts/s at 600 MHz = ~43 option lanes.
        let w = Workload::black_scholes();
        let pipeline = explain_asic_throughput(w, 0.6).unwrap();
        let lanes = pipeline.inputs_per_cycle;
        assert!((10.0..100.0).contains(&lanes), "lanes = {lanes}");
    }

    #[test]
    fn no_asic_data_no_explanation() {
        // All three kernels have data, so use an FFT size that the lab
        // clamps rather than misses: it must still return Some.
        assert!(explain_asic_throughput(Workload::fft(32).unwrap(), 0.6).is_some());
    }
}
