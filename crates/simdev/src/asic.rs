//! The synthesis-flow stand-in for the ASIC cores.
//!
//! The paper's custom-logic numbers come from Synopsys Design Compiler
//! (65 nm standard cells) plus Cacti for the SRAMs. This module provides
//! the analytical equivalent: a simple SRAM area/energy model and a
//! per-workload "synthesis estimate" whose results are calibrated to land
//! exactly on the published, 40 nm-normalized ASIC observables.

use crate::data;
use serde::{Deserialize, Serialize};
use ucore_devices::TechNode;
use ucore_workloads::{Workload, WorkloadKind};

/// A Cacti-like SRAM macro model at 65 nm.
///
/// Constants are fitted to Cacti-4-era 65 nm outputs: roughly 0.45 mm²
/// and 45 mW of leakage per Mbit, 10 pJ per 32-bit access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramModel {
    mm2_per_mbit: f64,
    leakage_mw_per_mbit: f64,
    pj_per_access: f64,
}

impl SramModel {
    /// The default 65 nm model.
    pub fn at_65nm() -> Self {
        SramModel {
            mm2_per_mbit: 0.45,
            leakage_mw_per_mbit: 45.0,
            pj_per_access: 10.0,
        }
    }

    /// Area of a macro holding `bytes` of storage, mm².
    pub fn area_mm2(&self, bytes: f64) -> f64 {
        self.mm2_per_mbit * (bytes.max(0.0) * 8.0 / 1.0e6)
    }

    /// Leakage of a macro holding `bytes`, watts.
    pub fn leakage_w(&self, bytes: f64) -> f64 {
        self.leakage_mw_per_mbit * (bytes.max(0.0) * 8.0 / 1.0e6) / 1000.0
    }

    /// Dynamic power at an access rate of `accesses_per_s` 32-bit words.
    pub fn dynamic_w(&self, accesses_per_s: f64) -> f64 {
        self.pj_per_access * accesses_per_s.max(0.0) * 1.0e-12
    }
}

impl Default for SramModel {
    fn default() -> Self {
        SramModel::at_65nm()
    }
}

/// The output of "synthesizing" one workload's custom core array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsicEstimate {
    /// Standard-cell logic area at 65 nm, mm².
    pub logic_area_mm2_65nm: f64,
    /// On-chip SRAM area at 65 nm, mm².
    pub sram_area_mm2_65nm: f64,
    /// Throughput in the workload's unit.
    pub perf: f64,
    /// Core power, watts.
    pub watts: f64,
}

impl AsicEstimate {
    /// Total 65 nm area.
    pub fn total_area_mm2_65nm(&self) -> f64 {
        self.logic_area_mm2_65nm + self.sram_area_mm2_65nm
    }

    /// Total area scaled to the 40 nm generation (the paper's
    /// normalization).
    pub fn total_area_mm2_40nm(&self) -> f64 {
        self.total_area_mm2_65nm() * TechNode::N65.paper_normalization_to_40nm()
    }

    /// Area-normalized throughput at 40 nm.
    pub fn perf_per_mm2_40nm(&self) -> f64 {
        self.perf / self.total_area_mm2_40nm()
    }

    /// Energy efficiency.
    pub fn perf_per_joule(&self) -> f64 {
        self.perf / self.watts
    }
}

/// Fraction of each ASIC design's area spent on SRAM buffers (the rest
/// is datapath logic): MMM tiles need double-buffered operand stores,
/// the FFT needs stage buffers and twiddle ROMs, Black-Scholes is almost
/// pure arithmetic pipeline.
fn sram_fraction(kind: WorkloadKind) -> f64 {
    match kind {
        WorkloadKind::Mmm => 0.40,
        WorkloadKind::Fft => 0.55,
        WorkloadKind::BlackScholes => 0.05,
    }
}

/// "Synthesizes" the custom core array for a workload, returning
/// estimates calibrated to the published observables.
///
/// Returns `None` if the lab has no ASIC data for the exact workload
/// (cannot happen for the paper's three kernels).
pub fn synthesize(workload: Workload) -> Option<AsicEstimate> {
    use ucore_devices::DeviceId::Asic;
    let observed = match workload.kind() {
        WorkloadKind::Mmm => *data::table4_mmm().row(Asic)?,
        WorkloadKind::BlackScholes => *data::table4_bs().row(Asic)?,
        WorkloadKind::Fft => data::fft_data(Asic, workload.size())?,
    };
    let area_40 = observed.area_mm2();
    let area_65 = area_40 / TechNode::N65.paper_normalization_to_40nm();
    let frac = sram_fraction(workload.kind());
    Some(AsicEstimate {
        logic_area_mm2_65nm: area_65 * (1.0 - frac),
        sram_area_mm2_65nm: area_65 * frac,
        perf: observed.perf,
        watts: observed.core_watts(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_model_scales_linearly() {
        let m = SramModel::at_65nm();
        let one_mbit = 1.0e6 / 8.0;
        assert!((m.area_mm2(one_mbit) - 0.45).abs() < 1e-12);
        assert!((m.area_mm2(2.0 * one_mbit) - 0.90).abs() < 1e-12);
        assert!((m.leakage_w(one_mbit) - 0.045).abs() < 1e-12);
        assert!(m.dynamic_w(1.0e9) > 0.0);
        assert_eq!(m.area_mm2(-5.0), 0.0);
    }

    #[test]
    fn mmm_synthesis_reproduces_table4() {
        let est = synthesize(Workload::mmm(2048).unwrap()).unwrap();
        assert!((est.perf - 694.0).abs() < 1e-9);
        assert!((est.perf_per_mm2_40nm() - 19.28).abs() < 0.01);
        assert!((est.perf_per_joule() - 50.73).abs() < 0.01);
        // 36 mm² at 40 nm is ~95 mm² of 65 nm silicon.
        assert!((est.total_area_mm2_65nm() - 95.0).abs() < 1.0);
    }

    #[test]
    fn bs_synthesis_reproduces_table4() {
        let est = synthesize(Workload::black_scholes()).unwrap();
        assert!((est.perf - 25532.0).abs() < 1e-9);
        assert!((est.perf_per_mm2_40nm() - 1719.0).abs() < 1.0);
        assert!((est.perf_per_joule() - 642.5).abs() < 0.1);
    }

    #[test]
    fn fft_synthesis_uses_calibrated_curve() {
        let est = synthesize(Workload::fft(1024).unwrap()).unwrap();
        // x = 489 * (70/193) * sqrt(2): the Table 5 inversion.
        let expected_x = 489.0 * (70.0 / 193.0) * std::f64::consts::SQRT_2;
        assert!((est.perf_per_mm2_40nm() - expected_x).abs() / expected_x < 1e-6);
        assert!(est.watts > 10.0 && est.watts < 100.0);
    }

    #[test]
    fn sram_fractions_order_sensibly() {
        let mmm = synthesize(Workload::mmm(128).unwrap()).unwrap();
        let bs = synthesize(Workload::black_scholes()).unwrap();
        let mmm_frac = mmm.sram_area_mm2_65nm / mmm.total_area_mm2_65nm();
        let bs_frac = bs.sram_area_mm2_65nm / bs.total_area_mm2_65nm();
        assert!(mmm_frac > bs_frac);
    }
}
