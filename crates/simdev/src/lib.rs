//! # ucore-simdev — the simulated measurement lab
//!
//! The paper calibrates its model by *measuring* tuned kernels on real
//! hardware: current probes on supply rails, GPU performance counters,
//! microbenchmarks that subtract uncore power, and a commercial synthesis
//! flow for the ASIC cores. None of that hardware is available here, so
//! this crate builds the closest synthetic equivalent:
//!
//! * [`data`] — the calibrated per-device, per-workload observables
//!   (absolute throughput, area-normalized throughput, energy
//!   efficiency), anchored to the paper's published Tables 4 and 5 and
//!   interpolated across FFT sizes;
//! * [`roofline`] — the compute-vs-bandwidth attainable-performance
//!   model that decides when a device stops being compute-bound;
//! * [`measure`] — [`measure::SimLab`], the top-level "lab" that
//!   produces steady-state measurements (Figures 2–4, Table 4);
//! * [`power`] — the power-breakdown model behind Figure 3 and the
//!   microbenchmark-style uncore subtraction of §4.2;
//! * [`probe`] — a simulated current probe with deterministic noise and
//!   steady-state averaging;
//! * [`counters`] — simulated off-chip bandwidth counters, including the
//!   GTX285's on-chip-capacity transition at FFT size 2^12 (Figure 4);
//! * [`asic`] — a stand-in for the Synopsys + Cacti flow: analytical
//!   area/power estimates for the custom-logic cores and their SRAM.
//!
//! Everything downstream (calibration, projection) consumes only the
//! observables this lab produces, exactly as the paper's model consumes
//! only its measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom: model code returns typed errors; `unwrap`/`expect`
// stay legal in `#[cfg(test)]` code only (ucore-lint enforces the same
// contract at the token level).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod asic;
pub mod counters;
pub mod data;
pub mod dram;
pub mod measure;
pub mod pipeline;
pub mod power;
pub mod probe;
pub mod roofline;
pub mod trace;

pub use data::{DeviceWorkloadData, MeasuredTable};
pub use dram::{memory_system, DramKind, MemorySystem};
pub use measure::{Measurement, SimLab, SimLabError};
pub use pipeline::StreamingPipeline;
pub use power::{PowerBreakdown, PowerModel};
pub use roofline::{Roofline, RooflineVerdict};
pub use trace::{synthesize_trace, Segment, Trace};
