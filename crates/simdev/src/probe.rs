//! A simulated current probe.
//!
//! "To collect power data, a current probe was used to measure various
//! devices while running applications in steady state." The simulated
//! probe returns the true power plus deterministic, seeded measurement
//! noise; the steady-state reading averages many samples, converging on
//! the truth the way the physical measurement does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A probe clamped around one supply rail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurrentProbe {
    true_watts: f64,
    noise_fraction: f64,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl CurrentProbe {
    /// Clamps a probe on a rail carrying `true_watts`, with relative
    /// measurement noise `noise_fraction` (e.g. `0.01` for ±1%) and a
    /// seed for reproducibility.
    pub fn new(true_watts: f64, noise_fraction: f64, seed: u64) -> Self {
        CurrentProbe {
            true_watts: true_watts.max(0.0),
            noise_fraction: noise_fraction.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One instantaneous sample: truth plus uniform noise.
    pub fn sample(&mut self) -> f64 {
        let noise = self
            .rng
            .gen_range(-self.noise_fraction..=self.noise_fraction);
        self.true_watts * (1.0 + noise)
    }

    /// A steady-state reading: the mean of `samples` instantaneous
    /// samples.
    pub fn steady_state(&mut self, samples: usize) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let sum: f64 = (0..samples).map(|_| self.sample()).sum();
        sum / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_within_noise_band() {
        let mut probe = CurrentProbe::new(100.0, 0.02, 7);
        for _ in 0..1000 {
            let s = probe.sample();
            assert!((98.0..=102.0).contains(&s), "sample {s}");
        }
    }

    #[test]
    fn steady_state_converges_to_truth() {
        let mut probe = CurrentProbe::new(66.8, 0.05, 11);
        let reading = probe.steady_state(10_000);
        assert!((reading - 66.8).abs() < 0.2, "reading {reading}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = CurrentProbe::new(50.0, 0.03, 42);
        let mut b = CurrentProbe::new(50.0, 0.03, 42);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn zero_noise_is_exact() {
        let mut probe = CurrentProbe::new(10.0, 0.0, 1);
        assert_eq!(probe.sample(), 10.0);
        assert_eq!(probe.steady_state(17), 10.0);
    }

    #[test]
    fn degenerate_inputs() {
        let mut probe = CurrentProbe::new(-5.0, 0.5, 1);
        assert_eq!(probe.sample(), 0.0);
        assert_eq!(probe.steady_state(0), 0.0);
    }
}
