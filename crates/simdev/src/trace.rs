//! Synthetic execution traces and parallel-fraction estimation.
//!
//! The model's key workload parameter — the parallel fraction `f` — is
//! something a practitioner must *measure*, typically by profiling an
//! execution and classifying time into serial and parallelizable
//! segments. This module closes that methodological gap for the
//! simulated lab: it generates synthetic traces with a known ground
//! truth and provides the estimator that recovers `f` (and a full
//! parallelism profile) from a trace, so the projection inputs can be
//! derived the same way the authors would have derived them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One profiled segment of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Wall-clock duration of the segment on the baseline core,
    /// in arbitrary units.
    pub duration: f64,
    /// The parallelism the segment could exploit: 1 = strictly serial,
    /// larger = parallelizable across that many workers (the model
    /// treats anything > 1 as "parallel section").
    pub width: u32,
}

/// A profiled execution: an ordered list of segments.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    segments: Vec<Segment>,
}

impl Trace {
    /// Wraps raw segments (zero-duration segments are dropped).
    pub fn new(segments: Vec<Segment>) -> Self {
        Trace {
            segments: segments
                .into_iter()
                .filter(|s| s.duration > 0.0 && s.duration.is_finite())
                .collect(),
        }
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total baseline time.
    pub fn total_time(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// The Amdahl parallel fraction: time in segments with `width > 1`
    /// over total time. Returns 0 for an empty trace.
    pub fn estimate_f(&self) -> f64 {
        let total = self.total_time();
        if total <= 0.0 {
            return 0.0;
        }
        let parallel: f64 = self
            .segments
            .iter()
            .filter(|s| s.width > 1)
            .map(|s| s.duration)
            .sum();
        parallel / total
    }

    /// A parallelism profile: `(width, share-of-time)` pairs, widths
    /// aggregated and shares normalized. Feed this to
    /// `ucore_core::ParallelismProfile` (mapping widths to effective
    /// `f` per phase) for profile-aware projections.
    pub fn width_histogram(&self) -> Vec<(u32, f64)> {
        let total = self.total_time();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut acc: Vec<(u32, f64)> = Vec::new();
        for s in &self.segments {
            match acc.iter_mut().find(|(w, _)| *w == s.width) {
                Some((_, t)) => *t += s.duration,
                None => acc.push((s.width, s.duration)),
            }
        }
        acc.sort_by_key(|(w, _)| *w);
        for (_, t) in &mut acc {
            *t /= total;
        }
        acc
    }
}

/// Generates a synthetic trace with ground-truth parallel fraction `f`:
/// serial and parallel segments with exponential-ish random durations,
/// interleaved randomly, totaling `segments` entries.
///
/// The parallel segments carry width `parallel_width`.
pub fn synthesize_trace(
    f: f64,
    segments: usize,
    parallel_width: u32,
    seed: u64,
) -> Trace {
    let f = f.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let segments = segments.max(2);
    // Split the segment count by f, then give each class randomized
    // durations that are renormalized to hit f exactly.
    let parallel_count = ((segments as f64) * f).round() as usize;
    let serial_count = segments - parallel_count;
    let mut out: Vec<Segment> = Vec::with_capacity(segments);
    let draw = |rng: &mut StdRng| -> f64 { rng.gen_range(0.5..1.5) };
    let mut parallel: Vec<f64> = (0..parallel_count).map(|_| draw(&mut rng)).collect();
    let mut serial: Vec<f64> = (0..serial_count).map(|_| draw(&mut rng)).collect();
    let psum: f64 = parallel.iter().sum();
    let ssum: f64 = serial.iter().sum();
    // Renormalize so parallel time is exactly f of the total (time 1).
    for d in &mut parallel {
        *d *= if psum > 0.0 { f / psum } else { 0.0 };
    }
    for d in &mut serial {
        *d *= if ssum > 0.0 { (1.0 - f) / ssum } else { 0.0 };
    }
    // Random interleave: pop from a randomly chosen non-empty pool until
    // both drain.
    while !parallel.is_empty() || !serial.is_empty() {
        let take_parallel = if serial.is_empty() {
            true
        } else if parallel.is_empty() {
            false
        } else {
            rng.gen_bool(0.5)
        };
        if take_parallel {
            if let Some(duration) = parallel.pop() {
                out.push(Segment { duration, width: parallel_width.max(2) });
            }
        } else if let Some(duration) = serial.pop() {
            out.push(Segment { duration, width: 1 });
        }
    }
    Trace::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_recovers_ground_truth() {
        for &f in &[0.0, 0.5, 0.9, 0.99, 1.0] {
            let trace = synthesize_trace(f, 1000, 64, 11);
            assert!(
                (trace.estimate_f() - f).abs() < 1e-9,
                "f = {f}: got {}",
                trace.estimate_f()
            );
        }
    }

    #[test]
    fn histogram_sums_to_one_and_matches_f() {
        let trace = synthesize_trace(0.9, 500, 32, 3);
        let hist = trace.width_histogram();
        let total: f64 = hist.iter().map(|(_, t)| t).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let parallel_share: f64 =
            hist.iter().filter(|(w, _)| *w > 1).map(|(_, t)| t).sum();
        assert!((parallel_share - 0.9).abs() < 1e-9);
        assert_eq!(hist.len(), 2); // widths 1 and 32
    }

    #[test]
    fn empty_and_degenerate_traces() {
        let empty = Trace::new(vec![]);
        assert_eq!(empty.estimate_f(), 0.0);
        assert!(empty.width_histogram().is_empty());
        // Zero/NaN durations are dropped.
        let cleaned = Trace::new(vec![
            Segment { duration: 0.0, width: 4 },
            Segment { duration: f64::NAN, width: 4 },
            Segment { duration: 1.0, width: 1 },
        ]);
        assert_eq!(cleaned.segments().len(), 1);
        assert_eq!(cleaned.estimate_f(), 0.0);
    }

    #[test]
    fn deterministic_generation() {
        let a = synthesize_trace(0.75, 100, 16, 5);
        let b = synthesize_trace(0.75, 100, 16, 5);
        assert_eq!(a, b);
        let c = synthesize_trace(0.75, 100, 16, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn trace_feeds_the_model_round_trip() {
        // The methodological loop: synthesize -> estimate f -> project.
        use ucore_workloads::Workload;
        let trace = synthesize_trace(0.99, 2000, 128, 8);
        let f = trace.estimate_f();
        let workload = Workload::fft(1024).unwrap();
        // A crude projection sanity: the estimated f drives Amdahl.
        let ceiling = 1.0 / (1.0 - f);
        assert!((ceiling - 100.0).abs() < 2.0);
        assert_eq!(workload.size(), 1024);
    }
}
