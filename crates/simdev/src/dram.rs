//! The off-chip memory substrate: deriving each device's peak bandwidth
//! from its memory system (Table 2's "Memory"/"Bandwidth" rows).
//!
//! Peak bandwidth is not a free parameter — it follows from the DRAM
//! technology, interface width and data rate, which is how the lab's
//! [`crate::data::peak_bandwidth_gb_s`] numbers are grounded:
//!
//! | device | interface | rate | peak |
//! |---|---|---|---|
//! | Core i7-960 | 3 × 64-bit DDR3 | 1.333 GT/s | 32.0 GB/s |
//! | GTX285 | 512-bit GDDR3 | 2.484 GT/s | 159.0 GB/s |
//! | GTX480 | 384-bit GDDR5 | 3.696 GT/s | 177.4 GB/s |
//! | R5870 | 256-bit GDDR5 | 4.8 GT/s | 153.6 GB/s |

use serde::{Deserialize, Serialize};
use ucore_devices::DeviceId;

/// A DRAM interface generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramKind {
    /// DDR3 system memory.
    Ddr3,
    /// GDDR3 graphics memory.
    Gddr3,
    /// GDDR5 graphics memory.
    Gddr5,
}

/// One device's memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// DRAM generation.
    pub kind: DramKind,
    /// Total interface width in bits.
    pub bus_bits: u32,
    /// Per-pin data rate in gigatransfers per second.
    pub data_rate_gt_s: f64,
}

impl MemorySystem {
    /// Peak bandwidth in GB/s: `bits/8 × GT/s`.
    pub fn peak_gb_s(&self) -> f64 {
        f64::from(self.bus_bits) / 8.0 * self.data_rate_gt_s
    }

    /// A derated "achievable" bandwidth: real memory systems sustain a
    /// fraction of peak (row-buffer misses, refresh, read/write
    /// turnaround). GDDR parts sustain more of their peak than
    /// commodity DDR.
    pub fn achievable_gb_s(&self) -> f64 {
        let efficiency = match self.kind {
            DramKind::Ddr3 => 0.70,
            DramKind::Gddr3 => 0.75,
            DramKind::Gddr5 => 0.75,
        };
        self.peak_gb_s() * efficiency
    }
}

/// The memory system behind each measured device's published bandwidth.
///
/// The FPGA board and the ASIC harness are not DRAM-bound in the study
/// and return `None`.
pub fn memory_system(device: DeviceId) -> Option<MemorySystem> {
    match device {
        DeviceId::CoreI7_960 => Some(MemorySystem {
            kind: DramKind::Ddr3,
            bus_bits: 192, // three 64-bit channels
            data_rate_gt_s: 1.333,
        }),
        DeviceId::Gtx285 => Some(MemorySystem {
            kind: DramKind::Gddr3,
            bus_bits: 512,
            data_rate_gt_s: 2.484,
        }),
        DeviceId::Gtx480 => Some(MemorySystem {
            kind: DramKind::Gddr5,
            bus_bits: 384,
            data_rate_gt_s: 3.696,
        }),
        DeviceId::R5870 => Some(MemorySystem {
            kind: DramKind::Gddr5,
            bus_bits: 256,
            data_rate_gt_s: 4.8,
        }),
        DeviceId::V6Lx760 | DeviceId::Asic => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn derived_peaks_match_table2() {
        let cases = [
            (DeviceId::CoreI7_960, 32.0),
            (DeviceId::Gtx285, 159.0),
            (DeviceId::Gtx480, 177.4),
            (DeviceId::R5870, 153.6),
        ];
        for (device, published) in cases {
            let derived = memory_system(device).unwrap().peak_gb_s();
            assert!(
                (derived - published).abs() / published < 0.01,
                "{device:?}: derived {derived} vs published {published}"
            );
        }
    }

    #[test]
    fn derived_peaks_match_lab_assumptions() {
        for device in [DeviceId::CoreI7_960, DeviceId::Gtx285, DeviceId::Gtx480, DeviceId::R5870]
        {
            let derived = memory_system(device).unwrap().peak_gb_s();
            let assumed = data::peak_bandwidth_gb_s(device);
            assert!((derived - assumed).abs() / assumed < 0.01, "{device:?}");
        }
    }

    #[test]
    fn achievable_is_below_peak() {
        for device in [DeviceId::CoreI7_960, DeviceId::Gtx480] {
            let m = memory_system(device).unwrap();
            assert!(m.achievable_gb_s() < m.peak_gb_s());
            assert!(m.achievable_gb_s() > 0.5 * m.peak_gb_s());
        }
    }

    #[test]
    fn gtx285_out_of_core_plateau_is_achievable() {
        // The Figure 4 plateau (~115 GB/s) sits just below the GTX285's
        // achievable bandwidth — the counters saw a saturated memory
        // system, not a throttled one.
        let m = memory_system(DeviceId::Gtx285).unwrap();
        let plateau = 0.72 * data::peak_bandwidth_gb_s(DeviceId::Gtx285);
        assert!(plateau <= m.achievable_gb_s() + 1.0);
        assert!(plateau > 0.9 * m.achievable_gb_s());
    }

    #[test]
    fn non_dram_devices_have_no_memory_system() {
        assert!(memory_system(DeviceId::V6Lx760).is_none());
        assert!(memory_system(DeviceId::Asic).is_none());
    }
}
