//! The top-level simulated lab: steady-state measurements per device and
//! workload.

use crate::counters;
use crate::data;
use crate::power::{PowerBreakdown, PowerModel};
use crate::probe::CurrentProbe;
use crate::roofline::{Roofline, RooflineVerdict};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use ucore_devices::DeviceId;
use ucore_workloads::{Workload, WorkloadKind};

/// Errors the lab can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimLabError {
    /// The paper has no measurement for this (device, workload) cell.
    NoData {
        /// The device.
        device: DeviceId,
        /// The workload.
        workload: Workload,
    },
}

impl fmt::Display for SimLabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimLabError::NoData { device, workload } => {
                write!(f, "no measured data for {workload} on {device}")
            }
        }
    }
}

impl Error for SimLabError {}

/// One steady-state measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The device measured.
    pub device: DeviceId,
    /// The workload run.
    pub workload: Workload,
    /// Throughput in the workload's unit (GFLOP/s or Mopts/s).
    pub perf: f64,
    /// Area-normalized throughput at 40 nm.
    pub perf_per_mm2: f64,
    /// Energy efficiency (per joule of *core* energy).
    pub perf_per_joule: f64,
    /// Core power, watts.
    pub core_watts: f64,
    /// The Figure 3 power breakdown.
    pub breakdown: PowerBreakdown,
    /// Off-chip traffic while running, GB/s.
    pub bandwidth_gb_s: f64,
    /// Compute- or bandwidth-bound verdict from the roofline.
    pub verdict: RooflineVerdict,
}

/// The simulated measurement lab.
///
/// ```
/// use ucore_simdev::SimLab;
/// use ucore_devices::DeviceId;
/// use ucore_workloads::Workload;
///
/// let lab = SimLab::paper();
/// let m = lab.measure(DeviceId::Gtx285, Workload::mmm(2048)?)?;
/// assert_eq!(m.perf, 425.0); // Table 4
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimLab {
    honor_paper_gaps: bool,
    probe_noise: f64,
}

impl SimLab {
    /// A lab configured like the paper's: missing cells stay missing and
    /// the probe carries ±1% noise.
    pub fn paper() -> Self {
        SimLab { honor_paper_gaps: true, probe_noise: 0.01 }
    }

    /// A lab that also simulates the measurements the authors could not
    /// take (GTX480 counters, R5870 FFT remains unavailable — there is
    /// no calibration to extrapolate from).
    pub fn extended() -> Self {
        SimLab { honor_paper_gaps: false, probe_noise: 0.01 }
    }

    /// Whether the paper's measurement gaps are preserved.
    pub fn honors_paper_gaps(&self) -> bool {
        self.honor_paper_gaps
    }

    /// The underlying observables for a (device, workload) cell.
    fn observables(
        &self,
        device: DeviceId,
        workload: Workload,
    ) -> Option<data::DeviceWorkloadData> {
        match workload.kind() {
            WorkloadKind::Mmm => data::table4_mmm().row(device).copied(),
            WorkloadKind::BlackScholes => data::table4_bs().row(device).copied(),
            WorkloadKind::Fft => data::fft_data(device, workload.size()),
        }
    }

    /// Takes a steady-state measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SimLabError::NoData`] for cells the paper could not
    /// measure (e.g. Black-Scholes on the R5870).
    pub fn measure(
        &self,
        device: DeviceId,
        workload: Workload,
    ) -> Result<Measurement, SimLabError> {
        let observed = self
            .observables(device, workload)
            .ok_or(SimLabError::NoData { device, workload })?;

        // Traffic: the counters for FFT (capturing the out-of-core
        // regime), compulsory traffic otherwise.
        let bandwidth_gb_s = match workload.kind() {
            WorkloadKind::Fft => counters::fft_bandwidth(device, workload.size(), false)
                .map(|r| r.measured_gb_s)
                .unwrap_or_else(|| workload.compulsory_bandwidth_gb_s(observed.perf)),
            _ => workload.compulsory_bandwidth_gb_s(observed.perf),
        };

        let roofline = Roofline::new(observed.perf, data::peak_bandwidth_gb_s(device));
        let (_, verdict) = roofline.attainable(
            observed.perf / bandwidth_gb_s.max(f64::MIN_POSITIVE),
        );

        let core_watts = observed.core_watts();
        let breakdown = PowerModel::for_device(device).breakdown(core_watts, bandwidth_gb_s);

        Ok(Measurement {
            device,
            workload,
            perf: observed.perf,
            perf_per_mm2: observed.perf_per_mm2,
            perf_per_joule: observed.perf_per_joule,
            core_watts,
            breakdown,
            bandwidth_gb_s,
            verdict,
        })
    }

    /// Reads total wall power with the simulated current probe: the
    /// breakdown's total plus measurement noise, averaged to steady
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`SimLabError::NoData`] as [`measure`](Self::measure)
    /// does.
    pub fn probe_total_watts(
        &self,
        device: DeviceId,
        workload: Workload,
        samples: usize,
    ) -> Result<f64, SimLabError> {
        let m = self.measure(device, workload)?;
        let seed = (device as u64) << 32 | workload.size() as u64;
        let mut probe = CurrentProbe::new(m.breakdown.total(), self.probe_noise, seed);
        Ok(probe.steady_state(samples.max(1)))
    }

    /// The Figure 2/3/4 sweep: FFT measurements for sizes `2^4..2^20`.
    pub fn fft_sweep(&self, device: DeviceId) -> Vec<Measurement> {
        (4..=20)
            .filter_map(|log2| {
                self.measure(device, Workload::fft(1usize << log2).ok()?).ok()
            })
            .collect()
    }

    /// Regenerates the Table 4 rows for a workload (MMM or BS).
    pub fn table4(&self, kind: WorkloadKind) -> Vec<Measurement> {
        let workload = match kind {
            WorkloadKind::Mmm => Workload::mmm_const::<2048>(),
            WorkloadKind::BlackScholes => Workload::black_scholes(),
            WorkloadKind::Fft => Workload::fft_const::<1024>(),
        };
        DeviceId::ALL
            .iter()
            .filter_map(|&d| self.measure(d, workload).ok())
            .collect()
    }
}

impl Default for SimLab {
    fn default() -> Self {
        SimLab::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> SimLab {
        SimLab::paper()
    }

    #[test]
    fn table4_mmm_round_trips() {
        let rows = lab().table4(WorkloadKind::Mmm);
        assert_eq!(rows.len(), 6);
        let r5870 = rows.iter().find(|m| m.device == DeviceId::R5870).unwrap();
        assert_eq!(r5870.perf, 1491.0);
        assert_eq!(r5870.perf_per_mm2, 5.95);
        assert_eq!(r5870.perf_per_joule, 9.87);
    }

    #[test]
    fn table4_bs_has_four_rows() {
        let rows = lab().table4(WorkloadKind::BlackScholes);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn missing_cells_error() {
        let err = lab()
            .measure(DeviceId::R5870, Workload::black_scholes())
            .unwrap_err();
        assert!(err.to_string().contains("R5870"));
    }

    #[test]
    fn all_measured_kernels_are_compute_bound() {
        // The paper "ensured that all measured applications on a given
        // system are compute-bound"; the lab must reproduce that.
        let lab = lab();
        for kind in [WorkloadKind::Mmm, WorkloadKind::BlackScholes] {
            for m in lab.table4(kind) {
                assert_eq!(
                    m.verdict,
                    RooflineVerdict::ComputeBound,
                    "{:?} on {:?}",
                    kind,
                    m.device
                );
            }
        }
    }

    #[test]
    fn fft_sweep_has_17_sizes() {
        let sweep = lab().fft_sweep(DeviceId::Gtx285);
        assert_eq!(sweep.len(), 17);
        assert!(sweep.iter().all(|m| m.perf > 0.0));
    }

    #[test]
    fn fft_sweep_empty_for_r5870() {
        assert!(lab().fft_sweep(DeviceId::R5870).is_empty());
    }

    #[test]
    fn probe_reading_close_to_breakdown_total() {
        let lab = lab();
        let w = Workload::mmm(2048).unwrap();
        let m = lab.measure(DeviceId::Gtx285, w).unwrap();
        let probed = lab.probe_total_watts(DeviceId::Gtx285, w, 5000).unwrap();
        assert!(
            (probed - m.breakdown.total()).abs() / m.breakdown.total() < 0.01,
            "{probed} vs {}",
            m.breakdown.total()
        );
    }

    #[test]
    fn gpu_total_power_exceeds_core_power() {
        let m = lab()
            .measure(DeviceId::Gtx480, Workload::mmm(2048).unwrap())
            .unwrap();
        assert!(m.breakdown.total() > m.core_watts);
    }

    #[test]
    fn asic_fft_watts_are_modest() {
        let m = lab()
            .measure(DeviceId::Asic, Workload::fft(1024).unwrap())
            .unwrap();
        assert!(m.core_watts < 60.0, "got {}", m.core_watts);
        assert!(m.perf > 1000.0, "ASIC FFT should be multi-TFLOP-class");
    }

    #[test]
    fn paper_vs_extended_gaps() {
        // Both labs lack R5870 FFT (no calibration exists), but the
        // extended lab can still measure everything Table 5 covers.
        assert!(SimLab::extended()
            .measure(DeviceId::R5870, Workload::fft(1024).unwrap())
            .is_err());
        assert!(SimLab::extended()
            .measure(DeviceId::Gtx480, Workload::fft(1024).unwrap())
            .is_ok());
    }
}
