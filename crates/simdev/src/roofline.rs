//! The roofline model: attainable throughput under compute and bandwidth
//! ceilings.
//!
//! The paper's methodology requires every measured kernel to be
//! *compute-bound* ("performance increases would not be possible without
//! more chip area"); the roofline is how the lab checks that property and
//! how it clips throughput when a hypothetical configuration would run
//! out of memory bandwidth instead.

use serde::{Deserialize, Serialize};

/// Whether the compute or the bandwidth ceiling binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RooflineVerdict {
    /// The kernel's arithmetic keeps the device busy: more area would
    /// mean more performance.
    ComputeBound,
    /// Off-chip traffic limits throughput below the compute peak.
    BandwidthBound,
}

/// A two-ceiling roofline: a compute peak (in the workload's throughput
/// unit) and a memory-bandwidth peak (GB/s).
///
/// ```
/// use ucore_simdev::{Roofline, RooflineVerdict};
/// // 100 GFLOP/s compute peak, 10 GB/s of bandwidth, 2 flops/byte:
/// // bandwidth supports only 20 GFLOP/s.
/// let r = Roofline::new(100.0, 10.0);
/// let (attained, verdict) = r.attainable(2.0);
/// assert_eq!(attained, 20.0);
/// assert_eq!(verdict, RooflineVerdict::BandwidthBound);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    compute_peak: f64,
    bandwidth_peak_gb_s: f64,
}

impl Roofline {
    /// Creates a roofline from a compute peak (workload units/s, e.g.
    /// GFLOP/s) and a bandwidth peak in GB/s.
    ///
    /// Non-finite or non-positive ceilings are clamped to zero, making
    /// the device unable to attain anything — a deliberate "fail shut"
    /// for nonsense inputs.
    pub fn new(compute_peak: f64, bandwidth_peak_gb_s: f64) -> Self {
        let clamp = |v: f64| if v.is_finite() && v > 0.0 { v } else { 0.0 };
        Roofline {
            compute_peak: clamp(compute_peak),
            bandwidth_peak_gb_s: clamp(bandwidth_peak_gb_s),
        }
    }

    /// The compute ceiling.
    pub fn compute_peak(&self) -> f64 {
        self.compute_peak
    }

    /// The bandwidth ceiling in GB/s.
    pub fn bandwidth_peak_gb_s(&self) -> f64 {
        self.bandwidth_peak_gb_s
    }

    /// Attainable throughput at an arithmetic intensity of
    /// `flops_per_byte` (in GFLOP-per-GB terms, i.e. ops per byte),
    /// together with which ceiling binds.
    ///
    /// Ties count as compute-bound: the device is exactly balanced.
    pub fn attainable(&self, flops_per_byte: f64) -> (f64, RooflineVerdict) {
        let bw_limited = self.bandwidth_peak_gb_s * flops_per_byte.max(0.0);
        if bw_limited < self.compute_peak {
            (bw_limited, RooflineVerdict::BandwidthBound)
        } else {
            (self.compute_peak, RooflineVerdict::ComputeBound)
        }
    }

    /// The arithmetic intensity at which the two ceilings meet (the
    /// "ridge point"); kernels above it are compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        if self.bandwidth_peak_gb_s <= 0.0 {
            f64::INFINITY
        } else {
            self.compute_peak / self.bandwidth_peak_gb_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_intensity_is_compute_bound() {
        let r = Roofline::new(100.0, 10.0);
        let (perf, verdict) = r.attainable(1000.0);
        assert_eq!(perf, 100.0);
        assert_eq!(verdict, RooflineVerdict::ComputeBound);
    }

    #[test]
    fn low_intensity_is_bandwidth_bound() {
        let r = Roofline::new(100.0, 10.0);
        let (perf, verdict) = r.attainable(0.5);
        assert_eq!(perf, 5.0);
        assert_eq!(verdict, RooflineVerdict::BandwidthBound);
    }

    #[test]
    fn ridge_point_is_the_boundary() {
        let r = Roofline::new(100.0, 10.0);
        assert_eq!(r.ridge_intensity(), 10.0);
        let (perf, verdict) = r.attainable(10.0);
        assert_eq!(perf, 100.0);
        assert_eq!(verdict, RooflineVerdict::ComputeBound);
    }

    #[test]
    fn nonsense_inputs_fail_shut() {
        let r = Roofline::new(f64::NAN, -5.0);
        assert_eq!(r.compute_peak(), 0.0);
        assert_eq!(r.bandwidth_peak_gb_s(), 0.0);
        let (perf, _) = r.attainable(1.0);
        assert_eq!(perf, 0.0);
        assert_eq!(r.ridge_intensity(), f64::INFINITY);
    }

    #[test]
    fn attainable_monotone_in_intensity() {
        let r = Roofline::new(50.0, 8.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let (perf, _) = r.attainable(i as f64 * 0.2);
            assert!(perf >= prev);
            prev = perf;
        }
    }

    #[test]
    fn mmm_on_gtx285_is_compute_bound() {
        // GTX285: 425 GFLOP/s, 159 GB/s peak; MMM at 32 flops/byte needs
        // only ~13 GB/s.
        let r = Roofline::new(425.0, 159.0);
        let (perf, verdict) = r.attainable(32.0);
        assert_eq!(perf, 425.0);
        assert_eq!(verdict, RooflineVerdict::ComputeBound);
    }
}
