//! The power-breakdown model (Figure 3) and the uncore-subtraction
//! methodology (§4.2).
//!
//! The paper reports total device power split into core dynamic, core
//! leakage, uncore static, uncore dynamic, and an "unknown" remainder;
//! the compute-only power used for calibration is obtained by running
//! microbenchmarks that exercise only the memory system and subtracting
//! their draw. The lab reproduces both steps with a parameterized model:
//!
//! * **core power** (dynamic + leakage) comes from the calibrated
//!   `perf / (perf/J)` observables in [`crate::data`];
//! * **leakage** is a device-class-dependent fraction of core power;
//! * **uncore static** is a per-device constant (idle memory
//!   controllers, PLLs, I/O);
//! * **uncore dynamic** is proportional to the off-chip traffic;
//! * **unknown** is a small measurement residue.

use serde::{Deserialize, Serialize};
use ucore_devices::DeviceId;

/// One device's power, split the way Figure 3 plots it (watts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Switching power of the compute cores.
    pub core_dynamic: f64,
    /// Leakage of the compute cores.
    pub core_leakage: f64,
    /// Constant power of non-compute blocks (memory controllers, I/O).
    pub uncore_static: f64,
    /// Traffic-dependent power of the memory system.
    pub uncore_dynamic: f64,
    /// Measurement residue the paper labels "Unknown".
    pub unknown: f64,
}

impl PowerBreakdown {
    /// Total measured wall power.
    pub fn total(&self) -> f64 {
        self.core_dynamic + self.core_leakage + self.uncore_static + self.uncore_dynamic
            + self.unknown
    }

    /// The compute-only power the calibration wants: core dynamic plus
    /// core leakage.
    pub fn core_total(&self) -> f64 {
        self.core_dynamic + self.core_leakage
    }
}

/// The parameterized breakdown model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    leakage_fraction: f64,
    uncore_static_w: f64,
    uncore_w_per_gb_s: f64,
    unknown_fraction: f64,
}

impl PowerModel {
    /// The lab's model for a given device, with class-appropriate
    /// constants: GPUs carry heavy uncore (GDDR interfaces), the CPU a
    /// moderate one, the FPGA a light one, and the synthesized ASIC
    /// almost none.
    pub fn for_device(device: DeviceId) -> Self {
        match device {
            DeviceId::CoreI7_960 => PowerModel {
                leakage_fraction: 0.20,
                uncore_static_w: 25.0,
                uncore_w_per_gb_s: 0.30,
                unknown_fraction: 0.05,
            },
            DeviceId::Gtx285 | DeviceId::Gtx480 | DeviceId::R5870 => PowerModel {
                leakage_fraction: 0.15,
                uncore_static_w: 40.0,
                uncore_w_per_gb_s: 0.25,
                unknown_fraction: 0.06,
            },
            DeviceId::V6Lx760 => PowerModel {
                leakage_fraction: 0.35, // programmable fabrics leak hard
                uncore_static_w: 12.0,
                uncore_w_per_gb_s: 0.20,
                unknown_fraction: 0.04,
            },
            DeviceId::Asic => PowerModel {
                leakage_fraction: 0.08,
                uncore_static_w: 1.0,
                uncore_w_per_gb_s: 0.10,
                unknown_fraction: 0.02,
            },
        }
    }

    /// Splits a measured core power and traffic level into the Figure 3
    /// components.
    pub fn breakdown(&self, core_watts: f64, traffic_gb_s: f64) -> PowerBreakdown {
        let core_watts = core_watts.max(0.0);
        let traffic = traffic_gb_s.max(0.0);
        let core_leakage = core_watts * self.leakage_fraction;
        let core_dynamic = core_watts - core_leakage;
        let uncore_dynamic = traffic * self.uncore_w_per_gb_s;
        let known = core_watts + self.uncore_static_w + uncore_dynamic;
        PowerBreakdown {
            core_dynamic,
            core_leakage,
            uncore_static: self.uncore_static_w,
            uncore_dynamic,
            unknown: known * self.unknown_fraction,
        }
    }

    /// The §4.2 methodology: what a memory-only microbenchmark would
    /// measure (no core compute), at a given traffic level.
    pub fn microbenchmark_watts(&self, traffic_gb_s: f64) -> f64 {
        let uncore_dynamic = traffic_gb_s.max(0.0) * self.uncore_w_per_gb_s;
        let known = self.uncore_static_w + uncore_dynamic;
        known * (1.0 + self.unknown_fraction)
    }

    /// Recovers compute-only power the way the paper does: measure the
    /// full application, measure the microbenchmark at the same traffic,
    /// subtract.
    pub fn subtract_uncore(&self, app_total_watts: f64, traffic_gb_s: f64) -> f64 {
        (app_total_watts - self.microbenchmark_watts(traffic_gb_s)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_total() {
        let m = PowerModel::for_device(DeviceId::Gtx285);
        let b = m.breakdown(66.8, 20.0);
        let parts = b.core_dynamic + b.core_leakage + b.uncore_static + b.uncore_dynamic
            + b.unknown;
        assert!((b.total() - parts).abs() < 1e-12);
        assert!((b.core_total() - 66.8).abs() < 1e-9);
    }

    #[test]
    fn uncore_subtraction_recovers_core_power() {
        // The round trip at the heart of §4.2: total measured power minus
        // the microbenchmark's power returns core power up to the unknown
        // residue attributable to the cores.
        for device in DeviceId::ALL {
            let m = PowerModel::for_device(device);
            let core = 50.0;
            let traffic = 30.0;
            let b = m.breakdown(core, traffic);
            let recovered = m.subtract_uncore(b.total(), traffic);
            // The residue scales with core power; tolerate it.
            assert!(
                (recovered - core).abs() / core < 0.10,
                "{device:?}: {recovered} vs {core}"
            );
        }
    }

    #[test]
    fn gpu_uncore_exceeds_asic_uncore() {
        let gpu = PowerModel::for_device(DeviceId::Gtx480).breakdown(60.0, 50.0);
        let asic = PowerModel::for_device(DeviceId::Asic).breakdown(60.0, 50.0);
        assert!(gpu.uncore_static > asic.uncore_static);
        assert!(gpu.total() > asic.total());
    }

    #[test]
    fn fpga_leaks_more_than_asic() {
        let fpga = PowerModel::for_device(DeviceId::V6Lx760).breakdown(50.0, 10.0);
        let asic = PowerModel::for_device(DeviceId::Asic).breakdown(50.0, 10.0);
        assert!(fpga.core_leakage > asic.core_leakage);
    }

    #[test]
    fn traffic_raises_uncore_dynamic_only() {
        let m = PowerModel::for_device(DeviceId::Gtx285);
        let quiet = m.breakdown(60.0, 0.0);
        let busy = m.breakdown(60.0, 100.0);
        assert_eq!(quiet.core_dynamic, busy.core_dynamic);
        assert_eq!(quiet.uncore_static, busy.uncore_static);
        assert!(busy.uncore_dynamic > quiet.uncore_dynamic);
    }

    #[test]
    fn negative_inputs_clamp() {
        let m = PowerModel::for_device(DeviceId::Asic);
        let b = m.breakdown(-5.0, -10.0);
        assert_eq!(b.core_total(), 0.0);
        assert_eq!(b.uncore_dynamic, 0.0);
        assert_eq!(m.subtract_uncore(0.0, 10.0), 0.0);
    }
}
