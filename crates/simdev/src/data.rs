//! Calibrated observables for every (device, workload) pair.
//!
//! The source of truth is the paper itself:
//!
//! * MMM and Black-Scholes observables are Table 4, verbatim;
//! * FFT observables are reconstructed from Table 5's published `(µ, φ)`
//!   at sizes 64 / 1024 / 16384 by inverting the calibration formulas
//!   (footnote 1) around a documented Core i7 Spiral-FFT baseline, and
//!   interpolated in `log2 N` between those anchors;
//! * the Core i7 FFT baseline (45 / 70 / 60 GFLOP/s at N = 64 / 1024 /
//!   16384, 84 W of core power) is chosen to be consistent with published
//!   Spiral results on Nehalem *and* to reproduce the speedup ceilings of
//!   the paper's Figure 6 (see EXPERIMENTS.md).
//!
//! Derived quantities round-trip: running `ucore-calibrate` over this
//! data reproduces Table 5 to within rounding.

use serde::{Deserialize, Serialize};
use ucore_devices::DeviceId;
use ucore_workloads::{Workload, WorkloadKind};

/// The observables the lab can produce for one (device, workload) pair,
/// all at the paper's 40 nm area normalization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceWorkloadData {
    /// The device.
    pub device: DeviceId,
    /// Absolute throughput in the workload's unit (GFLOP/s or Mopts/s).
    pub perf: f64,
    /// Area-normalized throughput, per mm² at 40 nm.
    pub perf_per_mm2: f64,
    /// Energy efficiency (GFLOP/J or Mopts/J).
    pub perf_per_joule: f64,
}

impl DeviceWorkloadData {
    /// The compute area this design occupies (40 nm-normalized mm²).
    pub fn area_mm2(&self) -> f64 {
        self.perf / self.perf_per_mm2
    }

    /// Core power drawn while running, in watts.
    pub fn core_watts(&self) -> f64 {
        self.perf / self.perf_per_joule
    }
}

/// A published-measurement table: rows keyed by device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredTable {
    workload: WorkloadKind,
    rows: Vec<DeviceWorkloadData>,
}

impl MeasuredTable {
    /// The workload this table measures.
    pub fn workload(&self) -> WorkloadKind {
        self.workload
    }

    /// All rows.
    pub fn rows(&self) -> &[DeviceWorkloadData] {
        &self.rows
    }

    /// The row for a device, if the paper has one (missing cells — BS on
    /// GTX480/R5870, FFT on R5870 — return `None`).
    pub fn row(&self, device: DeviceId) -> Option<&DeviceWorkloadData> {
        self.rows.iter().find(|r| r.device == device)
    }
}

/// Table 4, MMM section (GFLOP/s, (GFLOP/s)/mm², GFLOP/J).
pub fn table4_mmm() -> MeasuredTable {
    let rows = vec![
        row(DeviceId::CoreI7_960, 96.0, 0.50, 1.14),
        row(DeviceId::Gtx285, 425.0, 2.40, 6.78),
        row(DeviceId::Gtx480, 541.0, 1.28, 3.52),
        row(DeviceId::R5870, 1491.0, 5.95, 9.87),
        row(DeviceId::V6Lx760, 204.0, 0.53, 3.62),
        row(DeviceId::Asic, 694.0, 19.28, 50.73),
    ];
    MeasuredTable { workload: WorkloadKind::Mmm, rows }
}

/// Table 4, Black-Scholes section (Mopts/s, (Mopts/s)/mm², Mopts/J).
///
/// The GTX480 and R5870 rows are absent, as in the paper ("we were unable
/// to obtain optimized ... BS for the GTX480").
pub fn table4_bs() -> MeasuredTable {
    let rows = vec![
        row(DeviceId::CoreI7_960, 487.0, 2.52, 4.88),
        row(DeviceId::Gtx285, 10756.0, 60.72, 189.0),
        row(DeviceId::V6Lx760, 7800.0, 20.26, 138.0),
        row(DeviceId::Asic, 25532.0, 1719.0, 642.5),
    ];
    MeasuredTable { workload: WorkloadKind::BlackScholes, rows }
}

fn row(device: DeviceId, perf: f64, perf_per_mm2: f64, perf_per_joule: f64) -> DeviceWorkloadData {
    DeviceWorkloadData { device, perf, perf_per_mm2, perf_per_joule }
}

/// The anchor FFT sizes at which Table 5 publishes `(µ, φ)`.
pub const FFT_ANCHOR_LOG2: [u32; 3] = [6, 10, 14];

/// The Core i7 (4-core, Spiral-tuned, single-precision) FFT baseline at
/// the anchor sizes, in pseudo-GFLOP/s. See the module docs for how these
/// were chosen.
pub const I7_FFT_GFLOPS: [f64; 3] = [45.0, 70.0, 60.0];

/// Core-rail power of the i7 while running FFT, in watts (EATX12V-style
/// core+L1/L2 measurement).
pub const I7_FFT_CORE_WATTS: f64 = 84.0;

/// The i7 core+cache area at the 40 nm normalization, mm² (Table 2).
pub const I7_CORE_AREA_MM2: f64 = 193.0;

/// The area each FPGA design occupies: the paper scales designs until the
/// LX760 is full, and Table 4 puts the resulting fabric at ≈ 385 mm²
/// (204 GFLOP/s ÷ 0.53 (GFLOP/s)/mm²).
pub const FPGA_DESIGN_AREA_MM2: f64 = 385.0;

/// The 40 nm-normalized area of the ASIC FFT core array (chosen; the MMM
/// and BS ASIC areas come from Table 4 directly).
pub const ASIC_FFT_AREA_MM2: f64 = 16.0;

/// Published Table 5 `(φ, µ)` entries — also the source from which the
/// FFT observables are reconstructed.
///
/// Returns `(phi, mu)` or `None` for the paper's missing cells.
pub fn table5(device: DeviceId, workload: WorkloadKind, fft_log2: Option<u32>) -> Option<(f64, f64)> {
    use DeviceId::*;
    use WorkloadKind::*;
    match (device, workload, fft_log2) {
        (Gtx285, Mmm, _) => Some((0.74, 3.41)),
        (Gtx285, BlackScholes, _) => Some((0.57, 17.0)),
        (Gtx285, Fft, Some(6)) => Some((0.59, 2.42)),
        (Gtx285, Fft, Some(10)) => Some((0.63, 2.88)),
        (Gtx285, Fft, Some(14)) => Some((0.89, 3.75)),

        (Gtx480, Mmm, _) => Some((0.77, 1.83)),
        (Gtx480, Fft, Some(6)) => Some((0.39, 1.56)),
        (Gtx480, Fft, Some(10)) => Some((0.47, 2.20)),
        (Gtx480, Fft, Some(14)) => Some((0.66, 2.83)),

        (R5870, Mmm, _) => Some((1.27, 8.47)),

        (V6Lx760, Mmm, _) => Some((0.31, 0.75)),
        (V6Lx760, BlackScholes, _) => Some((0.26, 5.68)),
        (V6Lx760, Fft, Some(6)) => Some((0.29, 2.81)),
        (V6Lx760, Fft, Some(10)) => Some((0.29, 2.02)),
        (V6Lx760, Fft, Some(14)) => Some((0.37, 3.02)),

        (Asic, Mmm, _) => Some((0.79, 27.4)),
        (Asic, BlackScholes, _) => Some((4.75, 482.0)),
        (Asic, Fft, Some(6)) => Some((5.34, 733.0)),
        (Asic, Fft, Some(10)) => Some((4.96, 489.0)),
        (Asic, Fft, Some(14)) => Some((6.38, 689.0)),

        _ => None,
    }
}

/// `r^((1-α)/2)` with the paper's `r = 2`, `α = 1.75` — the constant in
/// the φ inversion.
fn r_pow() -> f64 {
    2f64.powf(-0.375)
}

/// `√r` with `r = 2`.
const SQRT_R: f64 = std::f64::consts::SQRT_2;

/// The i7 FFT observables at an anchor index.
fn i7_fft_anchor(idx: usize) -> DeviceWorkloadData {
    let perf = I7_FFT_GFLOPS[idx];
    DeviceWorkloadData {
        device: DeviceId::CoreI7_960,
        perf,
        perf_per_mm2: perf / I7_CORE_AREA_MM2,
        perf_per_joule: perf / I7_FFT_CORE_WATTS,
    }
}

/// Reconstructs a U-core device's FFT observables at an anchor index by
/// inverting footnote 1 around the i7 baseline:
/// `x_u = µ·x_i7·√r` and `e_u = µ·e_i7 / (φ·r^((1−α)/2))`.
fn ucore_fft_anchor(device: DeviceId, idx: usize) -> Option<DeviceWorkloadData> {
    let (phi, mu) = table5(device, WorkloadKind::Fft, Some(FFT_ANCHOR_LOG2[idx]))?;
    let i7 = i7_fft_anchor(idx);
    let x = mu * i7.perf_per_mm2 * SQRT_R;
    let e = mu * i7.perf_per_joule / (phi * r_pow());
    let area = match device {
        DeviceId::V6Lx760 => FPGA_DESIGN_AREA_MM2,
        DeviceId::Asic => ASIC_FFT_AREA_MM2,
        DeviceId::Gtx285 => 338.0 * (40.0f64 / 55.0).powi(2),
        DeviceId::Gtx480 => 422.0,
        DeviceId::R5870 => 250.5,
        DeviceId::CoreI7_960 => I7_CORE_AREA_MM2,
    };
    Some(DeviceWorkloadData {
        device,
        perf: x * area,
        perf_per_mm2: x,
        perf_per_joule: e,
    })
}

/// FFT observables for a device at an arbitrary power-of-two size,
/// interpolating (and clamping) the anchor data in `log2 N`.
///
/// Returns `None` for devices without published FFT results (the R5870).
pub fn fft_data(device: DeviceId, size: usize) -> Option<DeviceWorkloadData> {
    let workload = Workload::fft(size).ok()?;
    let log2 = (workload.size() as f64).log2();
    let anchors: Vec<DeviceWorkloadData> = if device == DeviceId::CoreI7_960 {
        (0..3).map(i7_fft_anchor).collect()
    } else {
        (0..3)
            .map(|i| ucore_fft_anchor(device, i))
            .collect::<Option<Vec<_>>>()?
    };
    let xs: Vec<f64> = FFT_ANCHOR_LOG2.iter().map(|&l| f64::from(l)).collect();
    let perf = interp_log(&xs, &anchors.iter().map(|a| a.perf).collect::<Vec<_>>(), log2);
    let x = interp_log(
        &xs,
        &anchors.iter().map(|a| a.perf_per_mm2).collect::<Vec<_>>(),
        log2,
    );
    let e = interp_log(
        &xs,
        &anchors.iter().map(|a| a.perf_per_joule).collect::<Vec<_>>(),
        log2,
    );
    Some(DeviceWorkloadData {
        device,
        perf,
        perf_per_mm2: x,
        perf_per_joule: e,
    })
}

/// Piecewise-linear interpolation in `log2 N`, geometric in the value
/// (linear in `log(value)`), clamped at the ends.
fn interp_log(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    for i in 0..xs.len() - 1 {
        if (xs[i]..=xs[i + 1]).contains(&x) {
            let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
            let ln = ys[i].ln() + t * (ys[i + 1].ln() - ys[i].ln());
            return ln.exp();
        }
    }
    // Only reachable for unsorted anchor tables (a data-entry bug, not a
    // caller input): degrade to the nearest-end clamp rather than
    // panicking the measurement path.
    ys[ys.len() - 1]
}

/// The off-chip peak bandwidth the lab assumes per device, in GB/s
/// (Table 2 where published; an interconnect-limited estimate for the
/// FPGA board and effectively unlimited for the ASIC test harness).
pub fn peak_bandwidth_gb_s(device: DeviceId) -> f64 {
    match device {
        DeviceId::CoreI7_960 => 32.0,
        DeviceId::Gtx285 => 159.0,
        DeviceId::Gtx480 => 177.4,
        DeviceId::R5870 => 153.6,
        // A fully populated multi-bank DDR3 memory system: the measured
        // Black-Scholes design streams 78 GB/s and stays compute-bound.
        DeviceId::V6Lx760 => 100.0,
        DeviceId::Asic => 1.0e4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_mmm_matches_paper() {
        let t = table4_mmm();
        assert_eq!(t.rows().len(), 6);
        let asic = t.row(DeviceId::Asic).unwrap();
        assert_eq!(asic.perf, 694.0);
        assert_eq!(asic.perf_per_mm2, 19.28);
        assert_eq!(asic.perf_per_joule, 50.73);
        // Implied ASIC MMM core: 36 mm².
        assert!((asic.area_mm2() - 36.0).abs() < 0.1);
    }

    #[test]
    fn table4_bs_has_paper_gaps() {
        let t = table4_bs();
        assert!(t.row(DeviceId::Gtx480).is_none());
        assert!(t.row(DeviceId::R5870).is_none());
        assert_eq!(t.row(DeviceId::Gtx285).unwrap().perf, 10756.0);
    }

    #[test]
    fn fft_anchor_inversion_round_trips_table5() {
        // Re-deriving (mu, phi) from the reconstructed observables must
        // give back the published Table 5 values.
        for device in [DeviceId::Gtx285, DeviceId::Gtx480, DeviceId::V6Lx760, DeviceId::Asic] {
            for (idx, &log2) in FFT_ANCHOR_LOG2.iter().enumerate() {
                let (phi, mu) = table5(device, WorkloadKind::Fft, Some(log2)).unwrap();
                let u = ucore_fft_anchor(device, idx).unwrap();
                let i7 = i7_fft_anchor(idx);
                let mu_back = u.perf_per_mm2 / (i7.perf_per_mm2 * SQRT_R);
                let phi_back = mu_back * i7.perf_per_joule / (r_pow() * u.perf_per_joule);
                assert!((mu_back - mu).abs() / mu < 1e-12, "{device:?} N=2^{log2}");
                assert!((phi_back - phi).abs() / phi < 1e-12, "{device:?} N=2^{log2}");
            }
        }
    }

    #[test]
    fn fft_data_interpolates_and_clamps() {
        let at64 = fft_data(DeviceId::Gtx285, 64).unwrap();
        let at128 = fft_data(DeviceId::Gtx285, 128).unwrap();
        let at1024 = fft_data(DeviceId::Gtx285, 1024).unwrap();
        assert!(at128.perf > at64.perf.min(at1024.perf) * 0.99);
        // Below the smallest anchor: clamped.
        let at16 = fft_data(DeviceId::Gtx285, 16).unwrap();
        assert_eq!(at16.perf, at64.perf);
        // Above the largest anchor: clamped.
        let at_million = fft_data(DeviceId::Gtx285, 1 << 20).unwrap();
        let at16k = fft_data(DeviceId::Gtx285, 1 << 14).unwrap();
        assert_eq!(at_million.perf, at16k.perf);
    }

    #[test]
    fn fft_data_missing_for_r5870() {
        assert!(fft_data(DeviceId::R5870, 1024).is_none());
    }

    #[test]
    fn fft_data_rejects_non_power_of_two() {
        assert!(fft_data(DeviceId::Gtx285, 1000).is_none());
    }

    #[test]
    fn asic_fft_is_orders_of_magnitude_denser() {
        // Figure 2 (bottom): ASIC ~100x the flexible cores, ~1000x the
        // CPU in area-normalized FFT performance.
        let asic = fft_data(DeviceId::Asic, 1024).unwrap();
        let i7 = fft_data(DeviceId::CoreI7_960, 1024).unwrap();
        let fpga = fft_data(DeviceId::V6Lx760, 1024).unwrap();
        let ratio_cpu = asic.perf_per_mm2 / i7.perf_per_mm2;
        let ratio_fpga = asic.perf_per_mm2 / fpga.perf_per_mm2;
        assert!((400.0..1500.0).contains(&ratio_cpu), "vs CPU: {ratio_cpu}");
        assert!((100.0..500.0).contains(&ratio_fpga), "vs FPGA: {ratio_fpga}");
    }

    #[test]
    fn asic_fft_energy_efficiency_dominates() {
        // Figure 4 (top): ASIC ~2 orders over the CPU, ~10x over
        // GPUs/FPGA in GFLOP/J.
        let asic = fft_data(DeviceId::Asic, 1024).unwrap();
        let i7 = fft_data(DeviceId::CoreI7_960, 1024).unwrap();
        let gtx480 = fft_data(DeviceId::Gtx480, 1024).unwrap();
        assert!(asic.perf_per_joule / i7.perf_per_joule > 50.0);
        let over_gpu = asic.perf_per_joule / gtx480.perf_per_joule;
        assert!((5.0..50.0).contains(&over_gpu), "vs GPU: {over_gpu}");
    }

    #[test]
    fn core_watts_are_plausible() {
        for device in [DeviceId::CoreI7_960, DeviceId::Gtx285, DeviceId::Gtx480, DeviceId::V6Lx760]
        {
            let d = fft_data(device, 1024).unwrap();
            let w = d.core_watts();
            assert!((10.0..200.0).contains(&w), "{device:?}: {w} W");
        }
    }

    #[test]
    fn peak_bandwidths_match_table2() {
        assert_eq!(peak_bandwidth_gb_s(DeviceId::Gtx285), 159.0);
        assert_eq!(peak_bandwidth_gb_s(DeviceId::Gtx480), 177.4);
        assert_eq!(peak_bandwidth_gb_s(DeviceId::CoreI7_960), 32.0);
    }
}
