//! Simulated off-chip bandwidth counters (Figure 4, bottom).
//!
//! The paper verified compute-boundedness by reading CPU/GPU performance
//! counters while sweeping FFT sizes. The observed GTX285 behavior:
//! traffic equals the *compulsory* bandwidth while the working set fits
//! on chip, then jumps to an out-of-core regime at `N = 2^12` — yet stays
//! below the 159 GB/s peak, because the library switches to
//! higher-intensity out-of-core algorithms.

use crate::data;
use serde::{Deserialize, Serialize};
use ucore_devices::DeviceId;
use ucore_workloads::Workload;

/// One bandwidth-counter reading for an FFT size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthReading {
    /// The FFT size.
    pub size: usize,
    /// Compulsory traffic at the achieved throughput, GB/s.
    pub compulsory_gb_s: f64,
    /// What the counters actually see, GB/s.
    pub measured_gb_s: f64,
    /// Whether the working set spilled out of on-chip memory.
    pub out_of_core: bool,
}

/// The traffic multiplier once a transform no longer fits on chip (the
/// extra pass of a four-step out-of-core FFT).
const OUT_OF_CORE_MULTIPLIER: f64 = 2.0;

/// Fraction of peak bandwidth the out-of-core regime saturates at (the
/// GTX285 plateaus near 115 of 159 GB/s).
const OUT_OF_CORE_CEILING: f64 = 0.72;

/// On-chip capacity available to an FFT working set, in bytes.
pub fn onchip_capacity_bytes(device: DeviceId) -> f64 {
    match device {
        // 8 MB shared L3.
        DeviceId::CoreI7_960 => 8.0 * 1024.0 * 1024.0,
        // 30 SMs x 16 KB shared memory + register files: the observed
        // 2^12 transition implies ~64 KB usable per transform.
        DeviceId::Gtx285 => 64.0 * 1024.0,
        // 15 SMs x 48 KB + 768 KB L2.
        DeviceId::Gtx480 => 512.0 * 1024.0,
        DeviceId::R5870 => 256.0 * 1024.0,
        // ~26 Mb of block RAM.
        DeviceId::V6Lx760 => 3.2 * 1024.0 * 1024.0,
        // Streaming design with exactly-sized buffers.
        DeviceId::Asic => f64::INFINITY,
    }
}

/// Simulates the counter sweep for one device and FFT size.
///
/// Returns `None` when the lab has no FFT data for the device (the
/// R5870) — or, matching the paper's note that "for the GTX480, we were
/// unable to measure the bandwidth counters", when `device` is the
/// GTX480 and `honor_paper_gaps` is true.
pub fn fft_bandwidth(
    device: DeviceId,
    size: usize,
    honor_paper_gaps: bool,
) -> Option<BandwidthReading> {
    if honor_paper_gaps && device == DeviceId::Gtx480 {
        return None;
    }
    let measured = data::fft_data(device, size)?;
    let workload = Workload::fft(size).ok()?;
    let compulsory = workload.compulsory_bandwidth_gb_s(measured.perf);
    let working_set = workload.compulsory_bytes_per_unit();
    let out_of_core = working_set >= onchip_capacity_bytes(device);
    let measured_gb_s = if out_of_core {
        let ceiling = OUT_OF_CORE_CEILING * data::peak_bandwidth_gb_s(device);
        (compulsory * OUT_OF_CORE_MULTIPLIER).min(ceiling)
    } else {
        compulsory
    };
    Some(BandwidthReading { size, compulsory_gb_s: compulsory, measured_gb_s, out_of_core })
}

/// The full Figure 4 (bottom) sweep: sizes `2^4 .. 2^20`.
pub fn fft_bandwidth_sweep(device: DeviceId, honor_paper_gaps: bool) -> Vec<BandwidthReading> {
    (4..=20)
        .filter_map(|log2| fft_bandwidth(device, 1usize << log2, honor_paper_gaps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx285_transitions_at_2_to_the_12() {
        let below = fft_bandwidth(DeviceId::Gtx285, 1 << 11, true).unwrap();
        let above = fft_bandwidth(DeviceId::Gtx285, 1 << 12, true).unwrap();
        assert!(!below.out_of_core);
        assert!(above.out_of_core);
        // In core: counters see exactly the compulsory traffic.
        assert_eq!(below.measured_gb_s, below.compulsory_gb_s);
        // Out of core: more than compulsory...
        assert!(above.measured_gb_s > above.compulsory_gb_s);
    }

    #[test]
    fn gtx285_never_reaches_peak() {
        // The paper's compute-bound evidence: even out of core, measured
        // bandwidth stays below the 159 GB/s peak.
        for reading in fft_bandwidth_sweep(DeviceId::Gtx285, true) {
            assert!(
                reading.measured_gb_s < 159.0,
                "N = {}: {} GB/s",
                reading.size,
                reading.measured_gb_s
            );
        }
    }

    #[test]
    fn gtx480_counters_unavailable_as_in_paper() {
        assert!(fft_bandwidth(DeviceId::Gtx480, 1024, true).is_none());
        // But the lab can simulate them when asked to go beyond the paper.
        assert!(fft_bandwidth(DeviceId::Gtx480, 1024, false).is_some());
    }

    #[test]
    fn r5870_has_no_fft_data_at_all() {
        assert!(fft_bandwidth(DeviceId::R5870, 1024, false).is_none());
    }

    #[test]
    fn asic_streams_at_compulsory_traffic_everywhere() {
        for reading in fft_bandwidth_sweep(DeviceId::Asic, true) {
            assert!(!reading.out_of_core);
            assert_eq!(reading.measured_gb_s, reading.compulsory_gb_s);
        }
    }

    #[test]
    fn sweep_covers_paper_range() {
        let sweep = fft_bandwidth_sweep(DeviceId::Gtx285, true);
        assert_eq!(sweep.len(), 17); // 2^4 ..= 2^20
        assert_eq!(sweep.first().unwrap().size, 16);
        assert_eq!(sweep.last().unwrap().size, 1 << 20);
    }

    #[test]
    fn i7_stays_in_cache_much_longer() {
        let i7_first_spill = fft_bandwidth_sweep(DeviceId::CoreI7_960, true)
            .iter()
            .find(|r| r.out_of_core)
            .map(|r| r.size);
        // 16N bytes > 8 MB first at N = 2^19.
        assert_eq!(i7_first_spill, Some(1 << 19));
    }
}
