//! Property tests: the symbol graph is *total*. Whatever source text
//! arrives — byte soup, unbalanced braces, half-written items, hostile
//! `use` trees — `SymbolGraph::build` must return without panicking,
//! keep every node's spans and file indices in range, and keep every
//! internal resolution pointing at a real node.

use proptest::prelude::*;
use ucore_lint::context::FileContext;
use ucore_lint::graph::{Resolution, SymbolGraph};

/// Builds the graph over one pseudo-file and checks the invariants
/// every consumer (the workspace rules) relies on.
fn assert_total(src: &str) {
    let ctx = FileContext::new("crates/core/src/fixture.rs", src);
    let files = [ctx];
    let graph = SymbolGraph::build(&files);
    for f in &graph.fns {
        assert!(f.file < files.len(), "file index out of range in {src:?}");
        assert!(!f.name.is_empty(), "unnamed fn node in {src:?}");
        assert!(f.line >= 1 && f.col >= 1, "1-indexed fn span in {src:?}");
        let n_tokens = files[f.file].tokens.len();
        for call in &f.calls {
            assert!(call.site.token < n_tokens, "call token out of range in {src:?}");
            if let Resolution::Internal(ids) = &call.resolved {
                assert!(
                    ids.iter().all(|&id| id < graph.fns.len()),
                    "dangling resolution in {src:?}"
                );
            }
        }
        for site in &f.index_sites {
            assert!(site.token < n_tokens, "index token out of range in {src:?}");
        }
    }
}

/// Fragments shaped like the indexer's edges: nested/unbalanced
/// items, impl headers, use trees, calls, and keyword lookalikes.
const HOSTILE_FRAGMENTS: [&str; 20] = [
    "fn",
    "fn f(",
    "fn f() {",
    "}",
    "impl",
    "impl<T: Iterator<Item = U>> X for",
    "impl Y { fn m(&self)",
    "mod m {",
    "use a::{b::{c as d, e}, f};",
    "use ::*;",
    "use {,};",
    "self::super::Self::x()",
    "x.y.z()",
    "a!{",
    "v[",
    "][",
    "extern \"C\" { fn sig(h: fn(i32)); }",
    "let _ = if x { y() } else { z!() };",
    "pub pub fn g()",
    "Trait::<A, {B}>::call()",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup (lossily decoded) never panics the indexer.
    #[test]
    fn indexes_arbitrary_bytes(
        input in (0usize..=256, prop::collection::vec(0u8..=255u8, 256)),
    ) {
        let (len, bytes) = input;
        let src = String::from_utf8_lossy(&bytes[..len]).into_owned();
        assert_total(&src);
    }

    /// Concatenations of hostile fragments — half-written Rust items —
    /// never panic the indexer either.
    #[test]
    fn indexes_hostile_fragment_soup(
        picks in prop::collection::vec(0usize..HOSTILE_FRAGMENTS.len(), 12),
    ) {
        let src: String =
            picks.iter().map(|&i| HOSTILE_FRAGMENTS[i]).collect::<Vec<_>>().join(" ");
        assert_total(&src);
    }
}

#[test]
fn indexes_every_single_hostile_fragment() {
    for frag in HOSTILE_FRAGMENTS {
        assert_total(frag);
    }
    assert_total("");
}
