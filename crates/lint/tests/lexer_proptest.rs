//! Property tests: the lexer is *total*. Whatever bytes arrive — UTF-8
//! soup, truncated literals, unterminated raw strings, nested comment
//! bombs — `lex` must return without panicking, never emit an empty
//! token (the forward-progress guarantee), and keep every token's span
//! inside the source.

use proptest::prelude::*;
use ucore_lint::lexer;

/// Shared invariant check for any lexed source.
fn assert_total(src: &str) {
    let tokens = lexer::lex(src);
    let mut consumed = 0usize;
    for t in &tokens {
        assert!(!t.text.is_empty(), "empty token (no forward progress) in {src:?}");
        assert!(t.line >= 1 && t.col >= 1, "1-indexed span in {src:?}");
        consumed += t.text.len();
    }
    // Tokens cover at most the source (the rest is whitespace).
    assert!(consumed <= src.len(), "tokens overrun the source in {src:?}");
}

/// Fragments chosen to sit on the lexer's edges: raw-string fences,
/// nested comments, char-vs-lifetime, byte literals, stray quotes.
const HOSTILE_FRAGMENTS: [&str; 24] = [
    "r#\"",
    "\"#",
    "r###\"x\"##",
    "br##\"",
    "b'",
    "b\"\\\"",
    "'a",
    "'\\''",
    "/*",
    "/* /* */",
    "*/",
    "//!",
    "////",
    "\\",
    "\"",
    "0x",
    "1e",
    "1.0e+",
    "0b__",
    "..=",
    "1..2",
    "::<>",
    "r#match",
    "\u{fffd}\u{10000}é",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup (lossily decoded) never panics the lexer.
    #[test]
    fn lexes_arbitrary_bytes(
        input in (0usize..=256, prop::collection::vec(0u8..=255u8, 256)),
    ) {
        let (len, bytes) = input;
        let src = String::from_utf8_lossy(&bytes[..len]).into_owned();
        assert_total(&src);
    }

    /// Concatenations of hostile fragments — inputs shaped like the
    /// worst corners of real Rust — never panic the lexer either.
    #[test]
    fn lexes_hostile_fragment_soup(
        picks in prop::collection::vec(0usize..HOSTILE_FRAGMENTS.len(), 12),
    ) {
        let src: String = picks.iter().map(|&i| HOSTILE_FRAGMENTS[i]).collect();
        assert_total(&src);
    }
}

#[test]
fn lexes_every_single_hostile_fragment() {
    for frag in HOSTILE_FRAGMENTS {
        assert_total(frag);
    }
    assert_total("");
}
