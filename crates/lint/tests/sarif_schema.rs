//! Pins the SARIF 2.1.0 subset `--sarif` emits. The emitter is
//! hand-rolled (no serde in the production path), so this test parses
//! its output with the vendored `serde_json` and asserts every field a
//! SARIF consumer (GitHub code scanning, `sarif-tools`) requires:
//! `$schema`, `version`, the driver rule table, and one physical
//! location per result. Escaping is exercised with hostile message
//! content.

use serde_json::Value;
use ucore_lint::diag::Diagnostic;
use ucore_lint::rules;
use ucore_lint::sarif::{render_sarif, SCHEMA_URI};

fn parse(findings: &[Diagnostic]) -> Value {
    let text = render_sarif(findings, &rules::all_rule_metadata());
    serde_json::from_str(&text).expect("--sarif output must be valid JSON")
}

#[test]
fn document_declares_the_pinned_schema_and_version() {
    let doc = parse(&[]);
    assert_eq!(doc["$schema"], SCHEMA_URI);
    assert_eq!(doc["version"], "2.1.0");
    assert_eq!(doc["runs"].as_array().map(|a| a.len()), Some(1));
}

#[test]
fn driver_lists_every_registered_rule() {
    let doc = parse(&[]);
    let driver = &doc["runs"][0]["tool"]["driver"];
    assert_eq!(driver["name"], "ucore-lint");
    assert!(driver["version"].is_string());
    let ids: Vec<&str> = driver["rules"]
        .as_array()
        .expect("driver.rules is an array")
        .iter()
        .map(|r| r["id"].as_str().expect("rule id is a string"))
        .collect();
    for (name, _) in rules::all_rule_metadata() {
        assert!(ids.contains(&name), "driver.rules is missing `{name}`");
    }
    for rule in driver["rules"].as_array().unwrap() {
        assert!(
            rule["shortDescription"]["text"].is_string(),
            "every rule carries a shortDescription"
        );
    }
    assert_eq!(doc["runs"][0]["results"].as_array().map(|a| a.len()), Some(0));
}

#[test]
fn results_carry_rule_level_message_and_location() {
    let finding = Diagnostic {
        rule: "contract-drift",
        file: "crates/serve/src/obs.rs".into(),
        line: 57,
        col: 31,
        message: "metric `serve.accepted` has \"quotes\", a \\ backslash,\nand a newline".into(),
    };
    let doc = parse(&[finding]);
    let result = &doc["runs"][0]["results"][0];
    assert_eq!(result["ruleId"], "contract-drift");
    assert_eq!(result["level"], "error");
    assert_eq!(
        result["message"]["text"].as_str().unwrap(),
        "metric `serve.accepted` has \"quotes\", a \\ backslash,\nand a newline"
    );
    let loc = &result["locations"][0]["physicalLocation"];
    assert_eq!(loc["artifactLocation"]["uri"], "crates/serve/src/obs.rs");
    assert_eq!(loc["region"]["startLine"], 57);
    assert_eq!(loc["region"]["startColumn"], 31);
}
