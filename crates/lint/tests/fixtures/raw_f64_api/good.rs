//! raw-f64-api fixture: newtypes and non-dimensioned params pass.

/// A stand-in newtype, as `units.rs` provides.
pub struct Speedup(pub f64);

/// Typed quantity plus a scalar with no dimension: no findings.
pub fn apply(s: Speedup, iterations: f64) -> f64 {
    s.0 * iterations
}

/// Not public API: raw floats are fine crate-internally.
pub(crate) fn helper(area: f64) -> f64 {
    area + 1.0
}
