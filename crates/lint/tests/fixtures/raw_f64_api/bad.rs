//! raw-f64-api fixture: dimensioned quantities as anonymous floats.

/// Takes two dimensioned quantities raw: two findings on one line.
pub fn misuse(area: f64, power: f64, label: &str) -> f64 {
    let _ = label;
    area * power
}

/// The paper's `f` is a dimensioned fraction: one finding.
pub fn run(f: f64) -> f64 {
    f + 0.0
}
