//! errors-doc fixture: fallible public API with undocumented errors.

/// Parses a number (but never says how it fails).
pub fn parse_num(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}
