//! errors-doc fixture: fallible public API documenting its errors.

/// Parses a number.
///
/// # Errors
///
/// Returns the integer-parse error for non-numeric input.
pub fn parse_num(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

/// Infallible functions need no `# Errors` section.
pub fn double(v: u32) -> u32 {
    v * 2
}
