//! float-eq fixture: accepted comparison idioms.

/// Compares via exact bits, an epsilon band, and plain integers.
pub fn good_compares(x: f64, y: f64) -> bool {
    let exact = x.to_bits() == y.to_bits();
    let close = (x - y).abs() < 1e-9;
    let ints = (x as u32) == 3_u32;
    exact || close || ints
}
