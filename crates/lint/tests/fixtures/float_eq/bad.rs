//! float-eq fixture: raw float comparisons the rule must flag.

/// Compares raw floats; each comparison line is one finding.
pub fn bad_compares(x: f64) -> bool {
    let a = x == 1.0;
    let b = 0.5 != x;
    let c = x == f64::NAN;
    a || b || c
}
