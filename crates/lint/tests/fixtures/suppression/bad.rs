//! suppression fixture: malformed, unknown, and stale allows.

/// A missing reason leaves both the allow and the finding live.
pub fn missing_reason(x: f64) -> bool {
    // ucore-lint: allow(float-eq)
    x == 0.25
}

/// An unknown rule name is itself a finding, and suppresses nothing.
pub fn unknown_rule(x: f64) -> bool {
    // ucore-lint: allow(no-such-rule): reasons do not save unknown rules
    x == 0.75
}

/// A stale allow with nothing underneath to suppress.
// ucore-lint: allow(determinism): stale — nothing below reads the clock
pub fn stale() -> u32 {
    7
}
