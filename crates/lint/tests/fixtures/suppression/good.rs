//! suppression fixture: a well-formed allow with a reason.

/// An exact-bits comparison kept as written.
pub fn allowed(x: f64) -> bool {
    // ucore-lint: allow(float-eq): exact IEEE comparison is this fixture's point
    x == 4.0
}
