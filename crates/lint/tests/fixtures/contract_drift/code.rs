//! contract-drift fixture: a registry, an error constructor, and a CLI
//! parser whose documented contracts are diffed by the rule.

/// Registers one documented metric and one the docs never mention.
pub fn register(r: &Registry) {
    r.counter("serve.accepted");
    r.counter("serve.shed");
}

/// Constructs one documented error code and one undocumented.
pub fn classify(kind: Kind) -> ServeError {
    match kind {
        Kind::Overloaded => ServeError::new("server.overloaded", 503),
        Kind::Draining => ServeError::new("server.draining", 503),
    }
}

/// Parses the flags the README tables must cover.
pub fn parse(arg: &str) -> bool {
    matches!(arg, "--json" | "--workers")
}
