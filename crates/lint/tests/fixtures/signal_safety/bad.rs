//! signal-safety fixture: allocation and panic paths inside a handler.

extern "C" {
    fn signal(s: i32, h: extern "C" fn(i32)) -> usize;
}

/// The handler: formats (allocates) and indexes (can panic).
extern "C" fn on_signal(_sig: i32) {
    eprintln!("caught");
    let _code = EXIT_CODES[0];
    helper();
}

/// Reached from the handler; the filesystem call is not on the allowlist.
fn helper() {
    std::fs::remove_file("lock");
}

/// Installs the handler.
pub fn install() {
    // SAFETY: installing a fn-pointer handler for SIGINT is sound; the
    // handler body is what this fixture audits.
    unsafe { signal(2, on_signal) };
}
