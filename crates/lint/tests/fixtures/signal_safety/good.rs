//! signal-safety fixture: the handler touches only atomics and the
//! async-signal-safe set.

extern "C" {
    fn signal(s: i32, h: extern "C" fn(i32)) -> usize;
    fn fsync(fd: i32) -> i32;
    fn _exit(code: i32) -> !;
}

/// Flags the request, fsyncs the journal fd, and exits — every leaf is
/// on the allowlist.
extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
    let fd = JOURNAL_FD.load(Ordering::SeqCst);
    // SAFETY: fsync and _exit are async-signal-safe; the fd is the
    // published journal descriptor.
    unsafe {
        fsync(fd);
        _exit(130);
    }
}

/// Installs the handler.
pub fn install() {
    // SAFETY: installing a fn-pointer handler for SIGINT is sound.
    unsafe { signal(2, on_signal) };
}
