//! determinism fixture: wall clock and hash ordering on the output path.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

/// Lets nondeterminism reach the output bytes.
pub fn stamp() -> usize {
    let started = Instant::now();
    let wall = SystemTime::now();
    let mut m: HashMap<u64, u64> = HashMap::new();
    m.insert(0, started.elapsed().as_nanos() as u64);
    drop(wall);
    m.len()
}
