//! determinism fixture: ordered containers, no wall clock.

use std::collections::BTreeMap;

/// Assembles output from deterministically ordered state.
pub fn stamp() -> usize {
    let mut m: BTreeMap<u64, u64> = BTreeMap::new();
    m.insert(0, 1);
    m.len()
}
