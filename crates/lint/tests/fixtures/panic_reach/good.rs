//! panic-reachability fixture: typed errors outside tests, unwrap inside.

/// Divides, reporting failure as a typed error.
///
/// # Errors
///
/// Returns `Err` when `b` is zero.
pub fn checked_div(a: u32, b: u32) -> Result<u32, String> {
    a.checked_div(b).ok_or_else(|| String::from("division by zero"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::checked_div(4, 2).unwrap(), 2);
        assert!(super::checked_div(1, 0).is_err());
    }
}
