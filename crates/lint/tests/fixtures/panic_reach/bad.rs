//! panic-reachability fixture: every panicking construct outside tests.

/// Panics five different ways; each panicking line is one finding.
pub fn panics(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a == b {
        panic!("equal");
    }
    if a > b {
        todo!()
    }
    unimplemented!()
}
