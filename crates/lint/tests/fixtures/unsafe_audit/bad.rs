//! unsafe-audit fixture: unjustified unsafe.

/// Reads through a raw pointer with no justification comment.
pub fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}

/// An unsafe fn whose docs never state the caller contract.
pub unsafe fn get_raw(p: *const u32) -> u32 {
    *p
}
