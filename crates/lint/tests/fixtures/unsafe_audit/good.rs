//! unsafe-audit fixture: justified unsafe.

/// Reads through a raw pointer, justified at the site.
pub fn read_raw(p: *const u32) -> u32 {
    // SAFETY: fixture contract — `p` is valid for reads by construction.
    unsafe { *p }
}

/// Reads through a raw pointer.
///
/// # Safety
///
/// `p` must be non-null, aligned, and valid for reads.
pub unsafe fn get_raw(p: *const u32) -> u32 {
    *p
}
