//! lock-discipline fixture: blocking calls made while guards are live.

use parking_lot::Mutex;

/// Fsyncs under the lock: every contender stalls for the disk write.
pub fn persist(m: &Mutex<File>) {
    let guard = m.lock();
    guard.sync_all();
}

/// Sends on a channel while the read guard is still live.
pub fn publish(m: &RwLock<u8>, tx: &Sender<u8>) {
    let g = m.read();
    tx.send(*g);
}

/// Blocks transitively: `flush` resolves into `persist` above.
pub fn checkpoint(state: &Mutex<File>, m: &Mutex<File>) {
    let held = state.lock();
    flush(m, &held);
}

/// Helper that reaches `sync_all` through `persist`.
fn flush(m: &Mutex<File>, _witness: &File) {
    persist(m);
}
