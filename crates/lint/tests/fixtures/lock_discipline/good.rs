//! lock-discipline fixture: guards released before anything blocks.

use parking_lot::Mutex;

/// Copies out of the guard, then blocks with no lock held.
pub fn publish(m: &Mutex<u8>, tx: &Sender<u8>) {
    let v = *m.lock();
    tx.send(v);
}

/// Drops the guard explicitly before the channel send.
pub fn drain(m: &Mutex<u8>, tx: &Sender<u8>) {
    let g = m.lock();
    let v = *g;
    drop(g);
    tx.send(v);
}

/// The chain consumes the guard inside the initializer: `take` runs
/// under the lock, the binding holds plain data.
pub fn swap_out(m: &RwLock<Option<u8>>, tx: &Sender<Option<u8>>) {
    let taken = m.write().map(|mut s| s.take()).unwrap_or_else(|e| e.into_inner().take());
    tx.send(taken);
}
