//! End-to-end contract-drift regression: copy the real workspace
//! sources and docs into a scratch root, delete one documented
//! `serve.*` metric row from the DESIGN.md copy, and run the built
//! `ucore-lint` binary against it. The doctored tree must produce
//! exactly that one drift finding and exit 1; the faithful copy must
//! stay clean and exit 0 — which also pins the real tree's
//! "workspace lints clean" guarantee from CI's perspective.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use serde_json::Value;
use ucore_lint::walk;

/// The repository root (two levels above this crate's manifest).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("crates/lint has a root").to_path_buf()
}

/// Copies every first-party source file plus the contract docs into
/// `dst`, mutating the DESIGN.md text through `doctor`.
fn copy_workspace(dst: &Path, doctor: impl Fn(String) -> String) {
    let root = repo_root();
    let files = walk::workspace_files(&root).expect("walk the real workspace");
    assert!(files.len() > 20, "workspace walk looks truncated: {}", files.len());
    for rel in files {
        let to = dst.join(&rel);
        fs::create_dir_all(to.parent().expect("file paths have parents")).expect("mkdir");
        fs::copy(root.join(&rel), to).expect("copy source file");
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).expect("read DESIGN.md");
    fs::write(dst.join("DESIGN.md"), doctor(design)).expect("write DESIGN.md");
    fs::copy(root.join("README.md"), dst.join("README.md")).expect("copy README.md");
}

/// Runs the built binary with `--json --root dir`; returns (exit code,
/// parsed report).
fn lint(dir: &Path) -> (i32, Value) {
    let out = Command::new(env!("CARGO_BIN_EXE_ucore-lint"))
        .args(["--json", "--root"])
        .arg(dir)
        .output()
        .expect("run ucore-lint");
    let code = out.status.code().expect("exit code");
    let report: Value =
        serde_json::from_slice(&out.stdout).expect("--json output parses");
    (code, report)
}

#[test]
fn faithful_copy_is_clean_and_dropping_a_metric_row_is_exactly_one_drift() {
    let scratch = Path::new(env!("CARGO_TARGET_TMPDIR")).join("drift_e2e");
    let _ = fs::remove_dir_all(&scratch);

    // Faithful copy: the workspace contract holds, exit 0.
    let clean = scratch.join("clean");
    copy_workspace(&clean, |design| design);
    let (code, report) = lint(&clean);
    assert_eq!(report["total"], 0, "faithful copy must lint clean: {report}");
    assert_eq!(code, 0);

    // Doctored copy: the documented `serve.accepted` row is gone, so
    // the registration in crates/serve/src/obs.rs is undocumented.
    let doctored = scratch.join("doctored");
    copy_workspace(&doctored, |design| {
        let row = "| `serve.accepted` |";
        assert!(design.contains(row), "DESIGN.md §18 must document serve.accepted");
        design.lines().filter(|l| !l.starts_with(row)).collect::<Vec<_>>().join("\n")
    });
    let (code, report) = lint(&doctored);
    assert_eq!(code, 1, "drift must fail the run: {report}");
    assert_eq!(report["total"], 1, "exactly the one injected drift: {report}");
    let finding = &report["findings"][0];
    assert_eq!(finding["rule"], "contract-drift");
    assert_eq!(finding["file"], "crates/serve/src/obs.rs");
    let message = finding["message"].as_str().expect("message is a string");
    assert!(message.contains("`serve.accepted`"), "{message}");
    assert!(message.contains("missing from the DESIGN.md"), "{message}");
}
