//! Fixture corpus: each rule runs over a `bad.rs` file with known
//! findings at known `(line, rule)` spans, and a `good.rs` file that
//! must lint clean — both under the *full* rule set, so fixtures also
//! prove the rules do not trip over each other.
//!
//! The fixture sources live under `tests/fixtures/<rule>/`; they are
//! data, not compiled code (the production walker only scans `src/`
//! trees, so they never reach `cargo run -p ucore-lint` either).

use ucore_lint::{lint_source, rules};

/// Lints fixture text as if it lived at `pseudo_path`, returning sorted
/// `(line, rule)` pairs.
fn findings(pseudo_path: &str, src: &str) -> Vec<(u32, &'static str)> {
    let mut out: Vec<(u32, &'static str)> = lint_source(pseudo_path, src, &rules::all(), true)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect();
    out.sort_unstable();
    out
}

fn assert_clean(pseudo_path: &str, src: &str) {
    let out = findings(pseudo_path, src);
    assert!(out.is_empty(), "expected a clean fixture, got {out:?}");
}

#[test]
fn float_eq_corpus() {
    assert_eq!(
        findings("crates/core/src/fixture.rs", include_str!("fixtures/float_eq/bad.rs")),
        vec![(5, "float-eq"), (6, "float-eq"), (7, "float-eq")],
    );
    assert_clean("crates/core/src/fixture.rs", include_str!("fixtures/float_eq/good.rs"));
}

#[test]
fn determinism_corpus() {
    // The pseudo-path places the fixture on an output path (results.rs).
    assert_eq!(
        findings(
            "crates/project/src/results.rs",
            include_str!("fixtures/determinism/bad.rs"),
        ),
        vec![
            (3, "determinism"),  // the HashMap import
            (8, "determinism"),  // Instant::now
            (9, "determinism"),  // SystemTime::now
            (10, "determinism"), // HashMap type annotation …
            (10, "determinism"), // … and HashMap::new
        ],
    );
    assert_clean(
        "crates/project/src/results.rs",
        include_str!("fixtures/determinism/good.rs"),
    );
    // Off the output paths, the identical source is not in scope.
    assert_clean(
        "crates/project/src/durability.rs",
        include_str!("fixtures/determinism/bad.rs"),
    );
}

#[test]
fn raw_f64_api_corpus() {
    assert_eq!(
        findings(
            "crates/core/src/fixture.rs",
            include_str!("fixtures/raw_f64_api/bad.rs"),
        ),
        vec![(4, "raw-f64-api"), (4, "raw-f64-api"), (10, "raw-f64-api")],
    );
    assert_clean(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/raw_f64_api/good.rs"),
    );
    // units.rs is the exempt conversion boundary.
    assert_clean("crates/core/src/units.rs", include_str!("fixtures/raw_f64_api/bad.rs"));
    // Crates outside core/devices/itrs are out of scope for this rule.
    assert_clean(
        "crates/report/src/fixture.rs",
        include_str!("fixtures/raw_f64_api/bad.rs"),
    );
}

#[test]
fn unsafe_audit_corpus() {
    assert_eq!(
        findings(
            "crates/core/src/fixture.rs",
            include_str!("fixtures/unsafe_audit/bad.rs"),
        ),
        vec![(5, "unsafe-audit"), (9, "unsafe-audit")],
    );
    assert_clean(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/unsafe_audit/good.rs"),
    );
}

#[test]
fn errors_doc_corpus() {
    assert_eq!(
        findings("crates/core/src/fixture.rs", include_str!("fixtures/errors_doc/bad.rs")),
        vec![(4, "errors-doc")],
    );
    assert_clean("crates/core/src/fixture.rs", include_str!("fixtures/errors_doc/good.rs"));
}

#[test]
fn suppression_corpus() {
    assert_eq!(
        findings(
            "crates/core/src/fixture.rs",
            include_str!("fixtures/suppression/bad.rs"),
        ),
        vec![
            (5, "suppression"),         // allow without a reason
            (6, "float-eq"),            // … so the finding stays live
            (11, "suppression"),        // unknown rule name
            (12, "float-eq"),           // … suppresses nothing
            (16, "unused-suppression"), // stale allow
        ],
    );
    assert_clean(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/suppression/good.rs"),
    );
}
