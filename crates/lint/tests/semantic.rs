//! Workspace-rule fixture corpus: each semantic rule runs over a
//! `bad.rs` fixture with known `(line, rule)` findings and a `good.rs`
//! that must lint clean — under the *full* file + workspace rule sets,
//! so fixtures also prove the rules do not trip over each other.
//!
//! Fixture sources live under `tests/fixtures/<rule>/`; they are data,
//! not compiled code. Contract-drift fixtures additionally carry their
//! own `DESIGN.md`/`README.md`, exercised through [`Docs`].

use ucore_lint::{lint_files, rules, Docs};

/// Lints a pseudo-workspace under every rule, returning sorted
/// `(line, rule)` pairs.
fn findings(files: &[(&str, &str)], docs: &Docs) -> Vec<(u32, &'static str)> {
    let mut out: Vec<(u32, &'static str)> = run(files, docs).into_iter().map(|d| (d.line, d.rule)).collect();
    out.sort_unstable();
    out
}

/// Same, but keeps the full diagnostics for message assertions.
fn run(files: &[(&str, &str)], docs: &Docs) -> Vec<ucore_lint::diag::Diagnostic> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    lint_files(&owned, docs, &rules::all(), &rules::workspace_all(), true)
}

fn assert_clean(files: &[(&str, &str)], docs: &Docs) {
    let out = findings(files, docs);
    assert!(out.is_empty(), "expected a clean fixture, got {out:?}");
}

#[test]
fn panic_reach_corpus() {
    let files = [("crates/core/src/fixture.rs", include_str!("fixtures/panic_reach/bad.rs"))];
    assert_eq!(
        findings(&files, &Docs::default()),
        vec![
            (5, "panic-reachability"),  // unwrap
            (6, "panic-reachability"),  // expect
            (8, "panic-reachability"),  // panic!
            (11, "panic-reachability"), // todo!
            (13, "panic-reachability"), // unimplemented!
        ],
    );
    assert_clean(
        &[("crates/core/src/fixture.rs", include_str!("fixtures/panic_reach/good.rs"))],
        &Docs::default(),
    );
}

#[test]
fn panic_reach_evidence_chain_crosses_files() {
    // The panic lives in a private helper in one file; the chain names
    // the pub entry point from the other.
    let entry = "/// Entry.\npub fn entry() { ucore_core::inner::helper(); }\n";
    let helper = "fn helper() { deep() }\nfn deep() { panic!(\"boom\") }\n";
    let out = run(
        &[
            ("crates/bench/src/lib.rs", entry),
            ("crates/core/src/inner.rs", helper),
        ],
        &Docs::default(),
    );
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(
        out[0].message.contains("reachable from pub fn `ucore_bench::entry`"),
        "{}",
        out[0].message
    );
    assert!(out[0].message.contains("entry → helper → deep"), "{}", out[0].message);
}

#[test]
fn lock_discipline_corpus() {
    let files =
        [("crates/core/src/fixture.rs", include_str!("fixtures/lock_discipline/bad.rs"))];
    assert_eq!(
        findings(&files, &Docs::default()),
        vec![
            (8, "lock-discipline"),  // sync_all under `guard`
            (14, "lock-discipline"), // send under `g`
            (20, "lock-discipline"), // flush → persist → sync_all under `held`
        ],
    );
    let out = run(&files, &Docs::default());
    assert!(
        out.iter().any(|d| d.line == 20 && d.message.contains("transitively")),
        "the indirect finding must say so: {out:?}"
    );
    assert!(
        out.iter().any(|d| d.message.contains("bound at line 7")),
        "findings must name the binding site: {out:?}"
    );
    assert_clean(
        &[("crates/core/src/fixture.rs", include_str!("fixtures/lock_discipline/good.rs"))],
        &Docs::default(),
    );
}

#[test]
fn signal_safety_corpus() {
    let files =
        [("crates/bench/src/bin/repro.rs", include_str!("fixtures/signal_safety/bad.rs"))];
    assert_eq!(
        findings(&files, &Docs::default()),
        vec![
            (9, "signal-safety"),  // eprintln! allocates
            (10, "signal-safety"), // slice index can panic
            (16, "signal-safety"), // remove_file is not async-signal-safe
        ],
    );
    let out = run(&files, &Docs::default());
    assert!(
        out.iter().any(|d| d.line == 16 && d.message.contains("on_signal → helper")),
        "the indirect finding must carry the handler path: {out:?}"
    );
    assert_clean(
        &[("crates/bench/src/bin/repro.rs", include_str!("fixtures/signal_safety/good.rs"))],
        &Docs::default(),
    );
}

#[test]
fn contract_drift_corpus() {
    let docs = Docs {
        design: Some(include_str!("fixtures/contract_drift/DESIGN.md").to_string()),
        readme: Some(include_str!("fixtures/contract_drift/README.md").to_string()),
    };
    let files =
        [("crates/serve/src/bin/served.rs", include_str!("fixtures/contract_drift/code.rs"))];
    let out = run(&files, &docs);
    let spans: Vec<(&str, u32, &'static str)> =
        out.iter().map(|d| (d.file.as_str(), d.line, d.rule)).collect();
    assert_eq!(
        spans,
        vec![
            ("DESIGN.md", 6, "contract-drift"),  // `serve.ghost` is stale
            ("README.md", 7, "contract-drift"),  // `--gone` is stale
            ("crates/serve/src/bin/served.rs", 7, "contract-drift"), // `serve.shed` undocumented
        ],
        "{out:?}"
    );
    assert!(out.iter().any(|d| d.message.contains("`serve.shed`")), "{out:?}");
    assert!(out.iter().any(|d| d.message.contains("`serve.ghost`")), "{out:?}");
    assert!(out.iter().any(|d| d.message.contains("`--gone`")), "{out:?}");
}

#[test]
fn contract_drift_clean_when_docs_match() {
    // Same code, docs without the stale rows, shed/error/flags all
    // documented: zero findings in either direction.
    let design = "| metric |\n|---|\n| `serve.accepted` |\n| `serve.shed` |\n\n\
                  | code |\n|---|\n| `server.overloaded` |\n| `server.draining` |\n";
    let readme = "| flag |\n|---|\n| `--json` |\n| `--workers` |\n";
    let docs = Docs { design: Some(design.into()), readme: Some(readme.into()) };
    assert_clean(
        &[("crates/serve/src/bin/served.rs", include_str!("fixtures/contract_drift/code.rs"))],
        &docs,
    );
}

#[test]
fn suppressed_workspace_findings_need_reasons_and_stay_used() {
    // A reasoned allow drops the finding and is not reported unused; an
    // unreasoned one is itself a finding and suppresses nothing.
    let src = "pub fn a() { x.unwrap() } // ucore-lint: allow(panic-reachability): fixture-vetted\n\
               // ucore-lint: allow(panic-reachability)\n\
               pub fn b() { y.unwrap() }\n";
    assert_eq!(
        findings(&[("crates/core/src/fixture.rs", src)], &Docs::default()),
        vec![(2, "suppression"), (3, "panic-reachability")],
    );
}
