//! Inline suppression comments.
//!
//! A finding is suppressed by a comment of the form:
//!
//! ```text
//! // ucore-lint: allow(rule-name): reason the rule does not apply here
//! ```
//!
//! The reason is **mandatory** — a suppression without one is itself a
//! finding. A suppression on its own line applies to the next line that
//! contains code; a trailing suppression applies to its own line. Unused
//! suppressions are findings too, so stale allows are cleaned up the
//! moment the code they excused changes.

use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// The marker that introduces a suppression inside a comment.
const MARKER: &str = "ucore-lint:";

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule name inside `allow(…)`.
    pub rule: String,
    /// The line the comment sits on.
    pub comment_line: u32,
    /// The line findings must be on to be suppressed.
    pub target_line: u32,
    /// The written justification (non-empty once validated).
    pub reason: String,
}

/// Extracts suppressions from a file's comments. Malformed suppressions
/// (bad syntax, unknown rule, missing reason) are reported into
/// `malformed` as `suppression`-rule findings.
pub fn collect(
    ctx: &FileContext<'_>,
    known_rules: &[&'static str],
    malformed: &mut Vec<Diagnostic>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(pos) = tok.text.find(MARKER) else { continue };
        let body = tok.text[pos + MARKER.len()..].trim();
        // Strip a block comment's closing fence so the block form parses.
        let body = body.strip_suffix("*/").unwrap_or(body).trim_end();
        let bad = |message: String, malformed: &mut Vec<Diagnostic>| {
            malformed.push(Diagnostic {
                rule: "suppression",
                file: ctx.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                message,
            });
        };
        let Some(rest) = body.strip_prefix("allow(") else {
            bad(
                format!(
                    "malformed suppression: expected `{MARKER} allow(rule): reason`, got `{body}`"
                ),
                malformed,
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed suppression: unclosed `allow(`".to_string(), malformed);
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !known_rules.contains(&rule.as_str()) {
            bad(
                format!(
                    "unknown rule `{rule}` in suppression (known: {})",
                    known_rules.join(", ")
                ),
                malformed,
            );
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            bad(
                format!(
                    "suppression of `{rule}` is missing its mandatory reason: \
                     write `{MARKER} allow({rule}): why this is sound`"
                ),
                malformed,
            );
            continue;
        }
        out.push(Suppression {
            rule,
            comment_line: tok.line,
            target_line: target_line(ctx, i),
            reason: reason.to_string(),
        });
    }
    out
}

/// The line a suppression at token `i` governs: its own line when code
/// precedes it there (trailing comment), otherwise the line of the next
/// code token (standalone comment above the offending line).
fn target_line(ctx: &FileContext<'_>, i: usize) -> u32 {
    let line = ctx.tokens[i].line;
    let has_code_before = ctx.tokens[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| !t.is_comment());
    if has_code_before {
        return line;
    }
    ctx.tokens[i + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map_or(line, |t| t.line)
}

/// Applies `suppressions` to `findings`: drops suppressed findings and
/// appends an `unused-suppression` finding for every suppression that
/// matched nothing.
pub fn apply(
    ctx: &FileContext<'_>,
    suppressions: &[Suppression],
    findings: Vec<Diagnostic>,
    check_unused: bool,
) -> Vec<Diagnostic> {
    let mut used = vec![false; suppressions.len()];
    let mut kept: Vec<Diagnostic> = Vec::with_capacity(findings.len());
    for f in findings {
        let hit = suppressions
            .iter()
            .position(|s| s.rule == f.rule && s.target_line == f.line);
        match hit {
            Some(idx) => used[idx] = true,
            None => kept.push(f),
        }
    }
    if check_unused {
        for (s, _) in suppressions.iter().zip(&used).filter(|&(_, &u)| !u) {
            kept.push(Diagnostic {
                rule: "unused-suppression",
                file: ctx.rel_path.clone(),
                line: s.comment_line,
                col: 1,
                message: format!(
                    "suppression of `{}` matched no finding on line {}; remove it",
                    s.rule, s.target_line
                ),
            });
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: [&str; 2] = ["float-eq", "panic-reachability"];

    fn parse(src: &str) -> (Vec<Suppression>, Vec<Diagnostic>) {
        let ctx = FileContext::new("x.rs", src);
        let mut bad = Vec::new();
        let sup = collect(&ctx, &RULES, &mut bad);
        (sup, bad)
    }

    #[test]
    fn standalone_targets_next_code_line() {
        let (sup, bad) = parse(
            "// ucore-lint: allow(float-eq): sentinel compare is exact\nlet x = a == b;\n",
        );
        assert!(bad.is_empty());
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].target_line, 2);
        assert_eq!(sup[0].reason, "sentinel compare is exact");
    }

    #[test]
    fn trailing_targets_own_line() {
        let (sup, bad) =
            parse("let x = a == b; // ucore-lint: allow(float-eq): exact by design\n");
        assert!(bad.is_empty());
        assert_eq!(sup[0].target_line, 1);
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let (sup, bad) = parse("// ucore-lint: allow(float-eq)\nlet x = a == b;\n");
        assert!(sup.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "suppression");
        assert!(bad[0].message.contains("mandatory reason"));
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let (sup, bad) = parse("// ucore-lint: allow(no-such-rule): because\nlet x = 1;\n");
        assert!(sup.is_empty());
        assert!(bad[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_suppression_is_reported() {
        let src = "// ucore-lint: allow(float-eq): stale excuse\nlet x = 1;\n";
        let ctx = FileContext::new("x.rs", src);
        let mut bad = Vec::new();
        let sup = collect(&ctx, &RULES, &mut bad);
        let out = apply(&ctx, &sup, Vec::new(), true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unused-suppression");
    }

    #[test]
    fn matching_suppression_drops_finding_and_is_used() {
        let src = "let x = a == b; // ucore-lint: allow(float-eq): exact\n";
        let ctx = FileContext::new("x.rs", src);
        let mut bad = Vec::new();
        let sup = collect(&ctx, &RULES, &mut bad);
        let finding = Diagnostic {
            rule: "float-eq",
            file: "x.rs".into(),
            line: 1,
            col: 9,
            message: "m".into(),
        };
        let out = apply(&ctx, &sup, vec![finding], true);
        assert!(out.is_empty());
    }

    #[test]
    fn block_comment_form_works() {
        let (sup, bad) =
            parse("/* ucore-lint: allow(panic-reachability): proven reachable-only-in-tests */\nfoo.unwrap();\n");
        assert!(bad.is_empty());
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].rule, "panic-reachability");
    }
}
