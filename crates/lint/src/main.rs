//! The `ucore-lint` command-line interface.
//!
//! ```text
//! cargo run -p ucore-lint             # human report, exit 1 on findings
//! cargo run -p ucore-lint -- --json   # machine-readable report
//! cargo run -p ucore-lint -- --sarif  # SARIF 2.1.0 (CI artifact format)
//! cargo run -p ucore-lint -- --rules float-eq,contract-drift
//! cargo run -p ucore-lint -- --list-rules
//! cargo run -p ucore-lint -- --root /path/to/workspace
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ucore_lint::rules::{self, Rule, WorkspaceRule};
use ucore_lint::{diag, sarif, walk};

struct Options {
    json: bool,
    sarif: bool,
    root: Option<PathBuf>,
    rules: Option<Vec<String>>,
    list_rules: bool,
}

const USAGE: &str =
    "usage: ucore-lint [--json | --sarif] [--root DIR] [--rules NAME[,NAME…]] [--list-rules]";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts =
        Options { json: false, sarif: false, root: None, rules: None, list_rules: false };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--rules" => {
                let v = it.next().ok_or("--rules requires a comma-separated list")?;
                opts.rules =
                    Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.json && opts.sarif {
        return Err("--json and --sarif are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("ucore-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let file_all = rules::all();
    let ws_all = rules::workspace_all();
    if opts.list_rules {
        for rule in &file_all {
            println!("{:<20} {}", rule.name(), rule.description());
        }
        for rule in &ws_all {
            println!("{:<20} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    type RuleSets = (Vec<Box<dyn Rule>>, Vec<Box<dyn WorkspaceRule>>);
    let (file_rules, ws_rules): RuleSets =
        match &opts.rules {
            None => (file_all, ws_all),
            Some(names) => {
                let known = rules::known_names();
                if let Some(bad) = names.iter().find(|n| !known.contains(&n.as_str())) {
                    eprintln!(
                        "ucore-lint: unknown rule `{bad}` (known: {})",
                        known.join(", ")
                    );
                    return ExitCode::from(2);
                }
                (
                    file_all
                        .into_iter()
                        .filter(|r| names.iter().any(|n| n == r.name()))
                        .collect(),
                    ws_all
                        .into_iter()
                        .filter(|r| names.iter().any(|n| n == r.name()))
                        .collect(),
                )
            }
        };
    // Only a full-rule run can tell a stale allow from a disabled rule.
    let check_unused = opts.rules.is_none();

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "ucore-lint: could not locate the workspace root; pass --root DIR"
            );
            return ExitCode::from(2);
        }
    };

    let findings =
        match ucore_lint::lint_workspace(&root, &file_rules, &ws_rules, check_unused) {
            Ok(f) => f,
            Err(e) => {
                eprintln!(
                    "ucore-lint: failed to read workspace under {}: {e}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        };

    if opts.sarif {
        print!("{}", sarif::render_sarif(&findings, &rules::all_rule_metadata()));
    } else if opts.json {
        print!("{}", diag::render_json(&findings));
    } else {
        print!("{}", diag::render_human(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
