//! Per-file analysis context shared by all rules.
//!
//! Wraps the token stream with the two pieces of derived structure every
//! rule needs: navigation between *code* tokens (skipping comments) and
//! the set of tokens inside `#[cfg(test)]`-gated items, which all rules
//! exempt (test code may unwrap, compare floats exactly, and so on).

use crate::lexer::{lex, Token, TokenKind};

/// A lexed file plus derived structure, handed to each rule.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/core/src/cache.rs`).
    pub rel_path: String,
    /// The full source text.
    pub src: &'a str,
    /// All tokens, comments included.
    pub tokens: Vec<Token<'a>>,
    /// Parallel to `tokens`: true when the token is inside a
    /// `#[cfg(test)]`-gated item (including the attribute itself).
    pub in_test: Vec<bool>,
}

impl<'a> FileContext<'a> {
    /// Lexes `src` and computes the derived structure.
    pub fn new(rel_path: impl Into<String>, src: &'a str) -> Self {
        let tokens = lex(src);
        let in_test = test_region_flags(&tokens);
        FileContext { rel_path: rel_path.into(), src, tokens, in_test }
    }

    /// The index of the nearest non-comment token before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        self.tokens[..i].iter().rposition(|t| !t.is_comment())
    }

    /// The index of the nearest non-comment token after `i`.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        self.tokens[i + 1..]
            .iter()
            .position(|t| !t.is_comment())
            .map(|off| i + 1 + off)
    }

    /// True when the code token at `i` is the ident `text`.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        let t = &self.tokens[i];
        t.kind == TokenKind::Ident && t.text == text
    }

    /// True when the code token at `i` is the punctuation `text`.
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        let t = &self.tokens[i];
        t.kind == TokenKind::Punct && t.text == text
    }
}

/// Computes which tokens sit inside `#[cfg(test)]`-gated items.
///
/// Recognizes the exact attribute form `#[cfg(test)]` (the workspace
/// convention) and marks from the attribute through the end of the item
/// it gates: the matching `}` of the item's body, or the terminating `;`
/// for body-less items. Unterminated input marks to end-of-file rather
/// than failing.
fn test_region_flags(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = match_cfg_test_attr(tokens, i) {
            let item_end = item_end_after(tokens, attr_end + 1);
            for flag in flags.iter_mut().take(item_end + 1).skip(i) {
                *flag = true;
            }
            i = item_end + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// When the code tokens starting at `i` spell `#[cfg(test)]`, returns
/// the index of the closing `]`.
fn match_cfg_test_attr(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    const PATTERN: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    let mut at = i;
    for (step, expected) in PATTERN.iter().enumerate() {
        // The first token must be at `i` exactly; later ones skip comments.
        if step > 0 {
            at = next_code_index(tokens, at)?;
        }
        let t = tokens.get(at)?;
        if t.is_comment() || t.text != *expected {
            return None;
        }
        if step + 1 == PATTERN.len() {
            return Some(at);
        }
    }
    None
}

fn next_code_index(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    tokens[i + 1..]
        .iter()
        .position(|t| !t.is_comment())
        .map(|off| i + 1 + off)
}

/// Finds the last token of the item starting at/after `start`: the `}`
/// matching the first `{` met outside any paren/bracket nesting, or the
/// first `;` at zero nesting. Runs to the last token on malformed input.
fn item_end_after(tokens: &[Token<'_>], start: usize) -> usize {
    let mut depth_paren = 0i64;
    let mut depth_bracket = 0i64;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if !t.is_comment() && t.kind == TokenKind::Punct {
            match t.text {
                "(" => depth_paren += 1,
                ")" => depth_paren -= 1,
                "[" => depth_bracket += 1,
                "]" => depth_bracket -= 1,
                ";" if depth_paren == 0 && depth_bracket == 0 => return i,
                "{" if depth_paren == 0 && depth_bracket == 0 => {
                    return matching_brace(tokens, i);
                }
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// The index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(tokens: &[Token<'_>], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if !t.is_comment() && t.kind == TokenKind::Punct {
            match t.text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_for(src: &str) -> (FileContext<'_>, Vec<(String, bool)>) {
        let ctx = FileContext::new("x.rs", src);
        let pairs = ctx
            .tokens
            .iter()
            .zip(&ctx.in_test)
            .map(|(t, &f)| (t.text.to_string(), f))
            .collect();
        (ctx, pairs)
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }\nfn c() {}";
        let (_, pairs) = flags_for(src);
        let unwraps: Vec<bool> = pairs
            .iter()
            .filter(|(t, _)| t == "unwrap")
            .map(|&(_, f)| f)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // Code after the gated mod is not marked.
        assert!(pairs.iter().any(|(t, f)| t == "c" && !f));
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let (_, pairs) = flags_for("#[cfg(not(test))]\nfn a() { x.unwrap(); }");
        assert!(pairs.iter().all(|&(_, f)| !f));
    }

    #[test]
    fn cfg_test_fn_and_use_forms() {
        let src = "#[cfg(test)] use foo::bar;\n#[cfg(test)] fn helper() -> u8 { 1 }\nfn live() {}";
        let (_, pairs) = flags_for(src);
        assert!(pairs.iter().any(|(t, f)| t == "bar" && *f));
        assert!(pairs.iter().any(|(t, f)| t == "helper" && *f));
        assert!(pairs.iter().any(|(t, f)| t == "live" && !f));
    }

    #[test]
    fn nested_braces_inside_test_mod() {
        let src = "#[cfg(test)]\nmod t { fn a() { if x { y(); } } }\nfn after() {}";
        let (_, pairs) = flags_for(src);
        assert!(pairs.iter().any(|(t, f)| t == "after" && !f));
        assert!(pairs.iter().any(|(t, f)| t == "y" && *f));
    }

    #[test]
    fn code_navigation_skips_comments() {
        let ctx = FileContext::new("x.rs", "a /* c */ == b");
        let eq = ctx
            .tokens
            .iter()
            .position(|t| t.text == "==")
            .expect("token present");
        let prev = ctx.prev_code(eq).expect("has prev");
        let next = ctx.next_code(eq).expect("has next");
        assert_eq!(ctx.tokens[prev].text, "a");
        assert_eq!(ctx.tokens[next].text, "b");
    }

    #[test]
    fn unterminated_test_mod_marks_to_eof() {
        let (_, pairs) = flags_for("#[cfg(test)]\nmod t { fn a() { x.unwrap();");
        assert!(pairs.iter().all(|&(_, f)| f));
    }
}
