//! Markdown contract-table parsing for the `contract-drift` rule.
//!
//! The *contract* format is deliberately narrow: a Markdown table row
//! whose first cell is a backticked identifier —
//!
//! ```text
//! | `serve.accepted` | counter | connections accepted |
//! ```
//!
//! Only table rows count (prose mentions and fenced code blocks do
//! not), so the docs can discuss names freely without every mention
//! becoming load-bearing. DESIGN.md §18 holds the authoritative metric
//! and error-code tables; README's CLI reference holds the flag tables.

/// One documented identifier and the 1-based line of its table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocEntry {
    /// The backticked identifier (first whitespace-delimited word).
    pub name: String,
    /// 1-based line in the Markdown file.
    pub line: u32,
}

/// Extracts the first-cell backticked identifier of every table row,
/// skipping fenced code blocks and separator rows.
pub fn table_entries(md: &str) -> Vec<DocEntry> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (idx, line) in md.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !trimmed.starts_with('|') {
            continue;
        }
        // First cell: between the leading `|` and the next `|`.
        let rest = &trimmed[1..];
        let cell = rest.split('|').next().unwrap_or("").trim();
        let Some(span) = backticked(cell) else { continue };
        // Error prefixes may contain spaces (`fault spec:`); everything
        // else is the first whitespace-delimited word.
        let span = span.trim();
        let name =
            if is_error_prefix(span) { span } else { span.split_whitespace().next().unwrap_or("") };
        if name.is_empty() {
            continue;
        }
        out.push(DocEntry { name: name.to_string(), line: (idx + 1) as u32 });
    }
    out
}

/// The content of the first `` `…` `` span in `cell`, if any.
fn backticked(cell: &str) -> Option<&str> {
    let open = cell.find('`')?;
    let rest = &cell[open + 1..];
    let close = rest.find('`')?;
    Some(&rest[..close])
}

/// True for dotted metric names in a known family, e.g. `serve.shed`.
pub fn is_metric_name(name: &str) -> bool {
    const FAMILIES: [&str; 8] =
        ["points", "sweep", "journal", "cache", "failures", "shard", "serve", "obs"];
    let Some((family, rest)) = name.split_once('.') else { return false };
    FAMILIES.contains(&family)
        && !rest.is_empty()
        && rest.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c == '.')
}

/// True for dotted `ServeError` codes, e.g. `request.deadline`.
pub fn is_error_code(name: &str) -> bool {
    const FAMILIES: [&str; 3] = ["http", "request", "server"];
    let Some((family, rest)) = name.split_once('.') else { return false };
    FAMILIES.contains(&family)
        && !rest.is_empty()
        && rest.chars().all(|c| c.is_ascii_lowercase() || c == '_')
}

/// True for `UcoreError` subsystem prefixes as documented, e.g.
/// `model:` or `fault spec:`.
pub fn is_error_prefix(name: &str) -> bool {
    let Some(stem) = name.strip_suffix(':') else { return false };
    !stem.is_empty()
        && stem.chars().all(|c| c.is_ascii_lowercase() || c == ' ')
        && !stem.starts_with(' ')
        && !stem.ends_with(' ')
}

/// True for long-form CLI flags, e.g. `--shard-stall-ms`.
pub fn is_flag_name(name: &str) -> bool {
    let Some(stem) = name.strip_prefix("--") else { return false };
    let mut chars = stem.chars();
    chars.next().is_some_and(|c| c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_parse_and_fences_are_skipped() {
        let md = "intro `serve.fake` in prose\n\
                  | `serve.accepted` | counter |\n\
                  |---|---|\n\
                  | `--json` machine output | flag |\n\
                  | `fault spec:` | prefix |\n\
                  ```\n| `serve.fenced` | nope |\n```\n\
                  | plain cell | no backtick |\n";
        let entries = table_entries(md);
        assert_eq!(
            entries,
            vec![
                DocEntry { name: "serve.accepted".into(), line: 2 },
                DocEntry { name: "--json".into(), line: 4 },
                DocEntry { name: "fault spec:".into(), line: 5 },
            ]
        );
    }

    #[test]
    fn grammars_accept_and_reject() {
        assert!(is_metric_name("serve.request_us"));
        assert!(is_metric_name("journal.write_errors"));
        assert!(!is_metric_name("serve."));
        assert!(!is_metric_name("unknown.thing"));
        assert!(!is_metric_name("serve"));

        assert!(is_error_code("http.too_large"));
        assert!(!is_error_code("serve.accepted"));

        assert!(is_error_prefix("model:"));
        assert!(is_error_prefix("fault spec:"));
        assert!(!is_error_prefix("model"));
        assert!(!is_error_prefix(":"));

        assert!(is_flag_name("--shard-stall-ms"));
        assert!(!is_flag_name("--"));
        assert!(!is_flag_name("-h"));
        assert!(!is_flag_name("--Flag"));
    }
}
