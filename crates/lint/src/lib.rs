//! # ucore-lint — project-specific static analysis for the ucore workspace
//!
//! The analytical model's correctness rests on invariants `rustc` and
//! `clippy` cannot see: BCE-relative quantities must not be mixed as
//! raw `f64`s, sweep/figure output must be byte-deterministic, and
//! model crates must be panic-free. This crate enforces them with a
//! dependency-free pass — a small hand-rolled lexer ([`lexer`]) feeding
//! token-level rules ([`rules`]) — runnable locally and in CI as
//! `cargo run -p ucore-lint`.
//!
//! ## Rules
//!
//! | rule | enforces |
//! |---|---|
//! | `float-eq` | no `==`/`!=` on float-typed expressions |
//! | `raw-f64-api` | no bare-`f64` dimensioned params on `pub fn` in core/devices/itrs |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` outside tests |
//! | `determinism` | no wall-clock or `HashMap`/`HashSet` in output-producing paths |
//! | `unsafe-audit` | every `unsafe` carries a `// SAFETY:` / `# Safety` justification |
//! | `errors-doc` | `pub fn … -> Result` documents an `# Errors` section |
//!
//! Plus two synthetic rules the engine itself emits: `suppression`
//! (malformed/unreasoned allows) and `unused-suppression` (stale
//! allows). See DESIGN.md §13 for the full contract.
//!
//! ## Suppression
//!
//! ```text
//! // ucore-lint: allow(float-eq): exact-zero sentinel; == on 0.0 is IEEE-exact
//! ```
//!
//! The reason after the second `:` is mandatory, and unused
//! suppressions are findings, so allows cannot go stale silently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod walk;

use context::FileContext;
use diag::Diagnostic;
use rules::Rule;
use std::path::Path;

/// Lints one file's source text with `rules`, applying suppressions.
///
/// `check_unused` should be true when running the full rule set (a
/// suppression for a disabled rule would otherwise be falsely reported
/// as unused).
pub fn lint_source(
    rel_path: &str,
    src: &str,
    rules: &[Box<dyn Rule>],
    check_unused: bool,
) -> Vec<Diagnostic> {
    let ctx = FileContext::new(rel_path, src);
    let mut findings = Vec::new();
    for rule in rules {
        if rule.applies(rel_path) {
            rule.check(&ctx, &mut findings);
        }
    }
    let mut malformed = Vec::new();
    let known = rules::known_names();
    let suppressions = suppress::collect(&ctx, &known, &mut malformed);
    let mut out = suppress::apply(&ctx, suppressions, findings, check_unused);
    out.append(&mut malformed);
    out
}

/// Lints every first-party source file under the workspace `root`.
///
/// # Errors
///
/// Returns the underlying `io::Error` when the workspace tree cannot be
/// read (missing root, unreadable file).
pub fn lint_workspace(
    root: &Path,
    rules: &[Box<dyn Rule>],
    check_unused: bool,
) -> std::io::Result<Vec<Diagnostic>> {
    let mut findings = Vec::new();
    for rel in walk::workspace_files(root)? {
        let src = std::fs::read(root.join(&rel))?;
        let src = String::from_utf8_lossy(&src);
        findings.extend(lint_source(&rel, &src, rules, check_unused));
    }
    findings.sort_by_key(Diagnostic::sort_key);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_all_rules_and_suppressions() {
        let src = "pub fn f() { x.unwrap(); }\n\
                   let y = a == 1.0; // ucore-lint: allow(float-eq): test of the engine\n";
        let out = lint_source("crates/core/src/x.rs", src, &rules::all(), true);
        assert_eq!(out.len(), 1, "unsuppressed unwrap remains: {out:?}");
        assert_eq!(out[0].rule, "panic-freedom");
    }

    #[test]
    fn clean_source_yields_nothing() {
        let src = "/// Adds.\npub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(lint_source("crates/core/src/x.rs", src, &rules::all(), true).is_empty());
    }
}
