//! # ucore-lint — project-specific static analysis for the ucore workspace
//!
//! The analytical model's correctness rests on invariants `rustc` and
//! `clippy` cannot see: BCE-relative quantities must not be mixed as
//! raw `f64`s, sweep/figure output must be byte-deterministic, signal
//! handlers must stay async-signal-safe, and the metric/error/flag
//! names the docs promise must match what the code registers. This
//! crate enforces them with a dependency-free pass — a hand-rolled
//! total lexer ([`lexer`]) feeding token-level rules ([`rules`]) and a
//! workspace symbol graph ([`graph`]) feeding interprocedural rules —
//! runnable locally and in CI as `cargo run -p ucore-lint`.
//!
//! ## File rules (one file at a time)
//!
//! | rule | enforces |
//! |---|---|
//! | `float-eq` | no `==`/`!=` on float-typed expressions |
//! | `raw-f64-api` | no bare-`f64` dimensioned params on `pub fn` in core/devices/itrs |
//! | `determinism` | no wall-clock or `HashMap`/`HashSet` in output-producing paths |
//! | `unsafe-audit` | every `unsafe` carries a `// SAFETY:` / `# Safety` justification |
//! | `errors-doc` | `pub fn … -> Result` documents an `# Errors` section |
//!
//! ## Workspace rules (whole-workspace symbol graph)
//!
//! | rule | enforces |
//! |---|---|
//! | `panic-reachability` | no `unwrap`/`expect`/`panic!` (+ slice indexing in `serve`) outside tests, with caller evidence chains |
//! | `signal-safety` | only allowlisted async-signal-safe calls reachable from `signal(2)` handlers |
//! | `lock-discipline` | no blocking call (fsync, channel send/recv, spawn, socket I/O) under a live lock guard |
//! | `contract-drift` | DESIGN.md/README contract tables match the code's metrics, error codes, and CLI flags |
//!
//! Plus two synthetic rules the engine itself emits: `suppression`
//! (malformed/unreasoned allows) and `unused-suppression` (stale
//! allows). See DESIGN.md §13 and §18 for the full contract.
//!
//! ## Suppression
//!
//! ```text
//! // ucore-lint: allow(float-eq): exact-zero sentinel; == on 0.0 is IEEE-exact
//! ```
//!
//! The reason after the second `:` is mandatory, and unused
//! suppressions are findings, so allows cannot go stale silently.
//! Findings anchored to Markdown files (contract-drift's stale doc
//! entries) cannot be suppressed — fix the doc instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod contracts;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod suppress;
pub mod walk;

use context::FileContext;
use diag::Diagnostic;
use graph::SymbolGraph;
use rules::{Rule, WorkspaceRule};
use std::collections::BTreeMap;
use std::path::Path;
use suppress::Suppression;

/// The Markdown documents the contract-drift rule diffs code against.
#[derive(Debug, Default)]
pub struct Docs {
    /// DESIGN.md text (metric and error-code contract tables).
    pub design: Option<String>,
    /// README.md text (CLI flag reference tables).
    pub readme: Option<String>,
}

/// Everything a workspace rule can see.
pub struct WorkspaceContext<'a> {
    /// All lexed first-party files, in walk order.
    pub files: &'a [FileContext<'a>],
    /// The call graph over those files.
    pub graph: &'a SymbolGraph,
    /// Contract documents (may be absent in fixture runs).
    pub docs: &'a Docs,
    /// Parallel to `files`: each file's parsed suppressions.
    pub suppressions: &'a [Vec<Suppression>],
}

impl WorkspaceContext<'_> {
    /// True when a suppression of `rule` targets `line` of `files[file]`.
    ///
    /// Rules that *propagate* facts (panic reachability) consult this so
    /// a vetted source does not taint its callers; they still emit the
    /// site finding so the engine can mark the suppression used.
    pub fn is_suppressed(&self, rule: &str, file: usize, line: u32) -> bool {
        self.suppressions
            .get(file)
            .is_some_and(|sups| sups.iter().any(|s| s.rule == rule && s.target_line == line))
    }
}

/// Lints one file's source text with file-scope `rules`, applying
/// suppressions. Workspace rules need [`lint_files`].
///
/// `check_unused` should be true when running the full rule set (a
/// suppression for a disabled rule would otherwise be falsely reported
/// as unused).
pub fn lint_source(
    rel_path: &str,
    src: &str,
    rules: &[Box<dyn Rule>],
    check_unused: bool,
) -> Vec<Diagnostic> {
    let ctx = FileContext::new(rel_path, src);
    let mut findings = Vec::new();
    for rule in rules {
        if rule.applies(rel_path) {
            rule.check(&ctx, &mut findings);
        }
    }
    let mut malformed = Vec::new();
    let known = rules::known_names();
    let suppressions = suppress::collect(&ctx, &known, &mut malformed);
    let mut out = suppress::apply(&ctx, &suppressions, findings, check_unused);
    out.append(&mut malformed);
    out
}

/// Lints a set of files as one workspace: file rules per file, then
/// workspace rules over the symbol graph, then suppressions per file.
///
/// `files` are `(rel_path, source)` pairs; findings anchored to paths
/// outside the set (e.g. `DESIGN.md`) bypass suppression.
pub fn lint_files(
    files: &[(String, String)],
    docs: &Docs,
    file_rules: &[Box<dyn Rule>],
    ws_rules: &[Box<dyn WorkspaceRule>],
    check_unused: bool,
) -> Vec<Diagnostic> {
    let ctxs: Vec<FileContext<'_>> =
        files.iter().map(|(p, s)| FileContext::new(p.as_str(), s.as_str())).collect();
    let known = rules::known_names();
    let mut malformed = Vec::new();
    let sups: Vec<Vec<Suppression>> =
        ctxs.iter().map(|c| suppress::collect(c, &known, &mut malformed)).collect();

    let mut raw = Vec::new();
    for ctx in &ctxs {
        for rule in file_rules {
            if rule.applies(&ctx.rel_path) {
                rule.check(ctx, &mut raw);
            }
        }
    }
    if !ws_rules.is_empty() {
        let graph = SymbolGraph::build(&ctxs);
        let ws = WorkspaceContext { files: &ctxs, graph: &graph, docs, suppressions: &sups };
        for rule in ws_rules {
            rule.check(&ws, &mut raw);
        }
    }

    let index: BTreeMap<&str, usize> =
        ctxs.iter().enumerate().map(|(i, c)| (c.rel_path.as_str(), i)).collect();
    let mut per_file: Vec<Vec<Diagnostic>> = (0..ctxs.len()).map(|_| Vec::new()).collect();
    let mut out = Vec::new();
    for d in raw {
        match index.get(d.file.as_str()) {
            Some(&i) => per_file[i].push(d),
            None => out.push(d), // doc-anchored findings: no suppression
        }
    }
    for (i, ctx) in ctxs.iter().enumerate() {
        out.extend(suppress::apply(ctx, &sups[i], std::mem::take(&mut per_file[i]), check_unused));
    }
    out.append(&mut malformed);
    out.sort_by_key(Diagnostic::sort_key);
    out
}

/// Lints every first-party source file under the workspace `root` with
/// both rule sets, reading DESIGN.md/README.md for the contract rules.
///
/// # Errors
///
/// Returns the underlying `io::Error` when the workspace tree cannot be
/// read (missing root, unreadable file).
pub fn lint_workspace(
    root: &Path,
    file_rules: &[Box<dyn Rule>],
    ws_rules: &[Box<dyn WorkspaceRule>],
    check_unused: bool,
) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for rel in walk::workspace_files(root)? {
        let src = std::fs::read(root.join(&rel))?;
        files.push((rel, String::from_utf8_lossy(&src).into_owned()));
    }
    let docs = Docs {
        design: std::fs::read_to_string(root.join("DESIGN.md")).ok(),
        readme: std::fs::read_to_string(root.join("README.md")).ok(),
    };
    Ok(lint_files(&files, &docs, file_rules, ws_rules, check_unused))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_runs_all_rules_and_suppressions() {
        let src = "pub fn f() { let y = a == 1.0; }\n\
                   let z = b == 2.0; // ucore-lint: allow(float-eq): test of the engine\n";
        let out = lint_source("crates/core/src/x.rs", src, &rules::all(), true);
        assert_eq!(out.len(), 1, "unsuppressed float-eq remains: {out:?}");
        assert_eq!(out[0].rule, "float-eq");
    }

    #[test]
    fn clean_source_yields_nothing() {
        let src = "/// Adds.\npub fn add(a: u32, b: u32) -> u32 { a + b }\n";
        assert!(lint_source("crates/core/src/x.rs", src, &rules::all(), true).is_empty());
    }

    #[test]
    fn lint_files_runs_workspace_rules_with_suppressions() {
        let files = vec![(
            "crates/core/src/x.rs".to_string(),
            "pub fn f() { g.unwrap(); }\n\
             pub fn ok() { h.unwrap(); } // ucore-lint: allow(panic-reachability): engine test\n"
                .to_string(),
        )];
        let out =
            lint_files(&files, &Docs::default(), &rules::all(), &rules::workspace_all(), true);
        assert_eq!(out.len(), 1, "only the unsuppressed unwrap remains: {out:?}");
        assert_eq!(out[0].rule, "panic-reachability");
        assert_eq!(out[0].line, 1);
    }
}
