//! SARIF 2.1.0 output.
//!
//! Hand-rolled like the rest of the crate (no serde in the production
//! path): one run, one driver (`ucore-lint`), every registered rule in
//! the driver's rule table, one `result` per finding with a physical
//! location. The emitted subset is pinned by `tests/sarif_schema.rs`,
//! which validates structure and required fields against the vendored
//! `serde_json` parser, so CI artifact consumers (and the
//! `lint-semantic` job) can rely on the shape.

use crate::diag::{json_string, Diagnostic};
use std::fmt::Write as _;

/// The SARIF schema the output declares.
pub const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders findings as a SARIF 2.1.0 document. `rules` is the full
/// `(name, description)` metadata table (see
/// [`crate::rules::all_rule_metadata`]); findings should be sorted.
pub fn render_sarif(findings: &[Diagnostic], rules: &[(&str, &str)]) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"$schema\":{},", json_string(SCHEMA_URI));
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    let _ = write!(
        out,
        "\"name\":\"ucore-lint\",\"version\":{},\"rules\":[",
        json_string(env!("CARGO_PKG_VERSION"))
    );
    for (i, (name, desc)) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_string(name),
            json_string(desc)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            json_string(d.rule),
            json_string(&d.message),
            json_string(&d.file),
            d.line,
            d.col
        );
    }
    out.push_str("]}]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Diagnostic {
        Diagnostic {
            rule: "contract-drift",
            file: "crates/serve/src/obs.rs".into(),
            line: 12,
            col: 9,
            message: "metric `serve.shed` undocumented \"quoted\"".into(),
        }
    }

    #[test]
    fn emits_schema_version_and_rule_table() {
        let out = render_sarif(&[finding()], &[("contract-drift", "docs match code")]);
        assert!(out.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(out.contains("\"version\":\"2.1.0\""));
        assert!(out.contains("\"id\":\"contract-drift\""));
        assert!(out.contains("\"startLine\":12"));
        assert!(out.contains("\\\"quoted\\\""));
    }

    #[test]
    fn empty_findings_still_emit_a_run() {
        let out = render_sarif(&[], &[("float-eq", "no float ==")]);
        assert!(out.contains("\"results\":[]"));
        assert!(out.contains("\"name\":\"ucore-lint\""));
    }
}
