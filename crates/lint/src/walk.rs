//! Workspace source discovery.
//!
//! The lint pass covers first-party code only: the facade crate's
//! `src/` and every `crates/*/src/` tree. `vendor/` (API shims for the
//! offline build), `target/`, test/bench directories, and the lint
//! fixture corpus are out of scope — fixtures are linted explicitly by
//! the test suite, not by the workspace walk.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// All first-party `.rs` files under `root`, workspace-relative,
/// `/`-separated, sorted for deterministic reports.
///
/// # Errors
///
/// Returns the underlying I/O error when a source directory cannot be
/// read.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    let mut rel: Vec<String> = out
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace(std::path::MAIN_SEPARATOR, "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

/// Recursively collects `.rs` files under `dir`, sorted per directory.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_this_crate_and_skips_vendor() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root exists");
        let files = workspace_files(&root).expect("walk succeeds");
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(files.iter().any(|f| f == "crates/core/src/units.rs"));
        assert!(files.iter().any(|f| f == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.contains("/tests/")));
        assert!(!files.iter().any(|f| f.contains("/fixtures/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be sorted");
    }
}
