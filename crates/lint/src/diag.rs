//! Diagnostics: the finding type and its human/JSON renderings.

use std::fmt::Write as _;

/// One lint finding, anchored to a file/line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that produced the finding (kebab-case, e.g. `float-eq`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// Sort key giving a deterministic report order: by file, then
    /// position, then rule name.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.file.clone(), self.line, self.col, self.rule)
    }

    /// The `file:line:col` prefix used in human output.
    pub fn span(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

/// Renders findings in the human (rustc-like) format.
pub fn render_human(findings: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in findings {
        let _ = writeln!(out, "error[{}]: {}", d.rule, d.message);
        let _ = writeln!(out, "  --> {}", d.span());
    }
    if findings.is_empty() {
        out.push_str("ucore-lint: no findings\n");
    } else {
        let _ = writeln!(
            out,
            "ucore-lint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
    }
    out
}

/// Renders findings as a stable JSON document (sorted input expected).
///
/// The schema is intentionally small and append-only:
/// `{"version":1,"findings":[{rule,file,line,col,message}…],"total":N}`.
pub fn render_json(findings: &[Diagnostic]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, d) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_string(d.rule),
            json_string(&d.file),
            d.line,
            d.col,
            json_string(&d.message)
        );
    }
    let _ = write!(out, "],\"total\":{}}}", findings.len());
    out.push('\n');
    out
}

/// Escapes `s` as a JSON string literal (RFC 8259).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic { rule, file: file.into(), line, col: 1, message: "m \"q\"\n".into() }
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        let out = render_json(&[d("float-eq", "a.rs", 3)]);
        assert!(out.contains("\"message\":\"m \\\"q\\\"\\n\""));
        assert!(out.contains("\"total\":1"));
    }

    #[test]
    fn json_empty_is_valid() {
        assert_eq!(render_json(&[]), "{\"version\":1,\"findings\":[],\"total\":0}\n");
    }

    #[test]
    fn human_counts_findings() {
        let out = render_human(&[d("r", "a.rs", 1), d("r", "b.rs", 2)]);
        assert!(out.contains("2 findings"));
        assert!(out.contains("a.rs:1:1"));
    }
}
