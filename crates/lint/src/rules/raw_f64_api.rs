//! `raw-f64-api`: public model APIs must not take dimensioned
//! quantities as bare `f64`.
//!
//! `ucore-core` defines validated newtypes (`ParallelFraction`,
//! `Speedup`, `Budgets`, …) precisely so BCE-relative performance,
//! power, bandwidth, and area values cannot be mixed as anonymous
//! floats (paper §3, Table 1). A `pub fn` in the model's foundational
//! crates (`ucore-core`, `ucore-devices`, `ucore-itrs`) that takes a
//! bare `f64` named like a dimensioned quantity reopens that hole.
//!
//! Conversion boundaries genuinely need raw floats — the newtype
//! constructors themselves (`units.rs` is exempt wholesale) and
//! validated ingress points carry explicit suppressions with reasons.

use super::Rule;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// The `raw-f64-api` rule.
pub struct RawF64Api;

/// Parameter names that denote a dimensioned, BCE-relative quantity for
/// which a newtype exists (or should).
const DIMENSIONED_NAMES: [&str; 13] = [
    "f",
    "fraction",
    "frac",
    "perf",
    "performance",
    "speedup",
    "power",
    "bandwidth",
    "bw",
    "area",
    "mu",
    "phi",
    "watts",
];

impl Rule for RawF64Api {
    fn name(&self) -> &'static str {
        "raw-f64-api"
    }

    fn description(&self) -> &'static str {
        "pub fn in core/devices/itrs taking a dimensioned quantity as bare f64"
    }

    fn applies(&self, rel_path: &str) -> bool {
        let in_scope = ["crates/core/src/", "crates/devices/src/", "crates/itrs/src/"]
            .iter()
            .any(|d| rel_path.starts_with(d));
        // units.rs IS the conversion boundary: its constructors must
        // accept raw floats to validate them.
        in_scope && !rel_path.ends_with("/units.rs")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        let mut i = 0usize;
        while i < ctx.tokens.len() {
            if !ctx.in_test[i]
                && ctx.tokens[i].kind == TokenKind::Ident
                && ctx.tokens[i].text == "pub"
            {
                if let Some(end) = self.check_pub_fn(ctx, i, out) {
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
    }
}

impl RawF64Api {
    /// Examines a possible `pub fn` starting at the `pub` token `i`;
    /// returns the index after the parameter list when one was scanned.
    fn check_pub_fn(
        &self,
        ctx: &FileContext<'_>,
        i: usize,
        out: &mut Vec<Diagnostic>,
    ) -> Option<usize> {
        let mut at = ctx.next_code(i)?;
        // `pub(crate)` / `pub(super)` items are not public API.
        if ctx.is_punct(at, "(") {
            return None;
        }
        // Skip fn qualifiers: `pub const fn`, `pub async fn`, `pub unsafe fn`.
        while ["const", "async", "unsafe"].iter().any(|q| ctx.is_ident(at, q)) {
            at = ctx.next_code(at)?;
        }
        if !ctx.is_ident(at, "fn") {
            return None;
        }
        let name_idx = ctx.next_code(at)?;
        let fn_name = ctx.tokens[name_idx].text;
        // Find the parameter list `(`, skipping generic params `<…>`.
        let mut angle = 0i64;
        let mut at = ctx.next_code(name_idx)?;
        loop {
            let t = &ctx.tokens[at];
            if t.kind == TokenKind::Punct {
                match t.text {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" if angle == 0 => break,
                    "{" | ";" => return None, // malformed / not a normal fn
                    _ => {}
                }
            }
            at = ctx.next_code(at)?;
        }
        let params_open = at;
        let params_close = self.scan_params(ctx, fn_name, params_open, out)?;
        Some(params_close + 1)
    }

    /// Walks the parameter list, flagging `name: f64` params with
    /// dimensioned names; returns the index of the closing `)`.
    fn scan_params(
        &self,
        ctx: &FileContext<'_>,
        fn_name: &str,
        open: usize,
        out: &mut Vec<Diagnostic>,
    ) -> Option<usize> {
        let mut depth = 0i64;
        let mut at = open;
        // Token indices of the current parameter (between top-level commas).
        let mut param: Vec<usize> = Vec::new();
        loop {
            let t = &ctx.tokens[at];
            if t.kind == TokenKind::Punct {
                match t.text {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => {
                        depth -= 1;
                        if depth == 0 && t.text == ")" {
                            self.flag_param(ctx, fn_name, &param, out);
                            return Some(at);
                        }
                    }
                    "," if depth == 1 => {
                        self.flag_param(ctx, fn_name, &param, out);
                        param.clear();
                        at = ctx.next_code(at)?;
                        continue;
                    }
                    _ => {}
                }
            }
            if at != open {
                param.push(at);
            }
            at = ctx.next_code(at)?;
        }
    }

    /// Flags one parameter when it is `ident: f64` (optionally `mut
    /// ident: f64`) with a dimensioned name.
    fn flag_param(
        &self,
        ctx: &FileContext<'_>,
        fn_name: &str,
        param: &[usize],
        out: &mut Vec<Diagnostic>,
    ) {
        // Shape: [mut] name : type… — take the ident before the first `:`.
        let Some(colon_pos) = param.iter().position(|&i| ctx.is_punct(i, ":")) else {
            return;
        };
        let name_idx = match param[..colon_pos] {
            [n] => n,
            [m, n] if ctx.is_ident(m, "mut") => n,
            _ => return, // pattern params (tuples, refs) — out of scope
        };
        let name = ctx.tokens[name_idx].text;
        if !DIMENSIONED_NAMES.contains(&name) {
            return;
        }
        // The type must be exactly `f64`.
        let ty = &param[colon_pos + 1..];
        if ty.len() != 1 || !ctx.is_ident(ty[0], "f64") {
            return;
        }
        let t = &ctx.tokens[name_idx];
        out.push(Diagnostic {
            rule: self.name(),
            file: ctx.rel_path.clone(),
            line: t.line,
            col: t.col,
            message: format!(
                "`pub fn {fn_name}` takes dimensioned quantity `{name}` as bare `f64`; \
                 use the `units.rs` newtype (ParallelFraction, Speedup, …) or \
                 suppress at a validated conversion boundary"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<String> {
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        RawF64Api.check(&ctx, &mut out);
        out.iter().map(|d| d.message.clone()).collect()
    }

    #[test]
    fn flags_dimensioned_f64_params() {
        assert_eq!(findings("pub fn speedup_at(f: f64) -> f64 { f }").len(), 1);
        assert_eq!(findings("pub fn set(power: f64, bandwidth: f64) {}").len(), 2);
        assert_eq!(findings("pub const fn area_of(area: f64) -> f64 { area }").len(), 1);
    }

    #[test]
    fn ignores_newtypes_and_undimensioned_names() {
        assert!(findings("pub fn speedup_at(f: ParallelFraction) {}").is_empty());
        assert!(findings("pub fn lerp(t: f64) -> f64 { t }").is_empty());
        assert!(findings("pub fn nth(n: usize) {}").is_empty());
    }

    #[test]
    fn ignores_non_public_and_test_fns() {
        assert!(findings("fn speedup_at(f: f64) {}").is_empty());
        assert!(findings("pub(crate) fn ingest(power: f64) {}").is_empty());
        assert!(findings("#[cfg(test)]\nmod t { pub fn mk(f: f64) {} }").is_empty());
    }

    #[test]
    fn handles_generics_and_defaults() {
        assert_eq!(
            findings("pub fn map<T: Into<f64>>(x: T, power: f64) {}").len(),
            1
        );
        assert!(findings("pub fn map<T: Into<f64>>(x: T) {}").is_empty());
    }

    #[test]
    fn units_rs_is_exempt() {
        assert!(!RawF64Api.applies("crates/core/src/units.rs"));
        assert!(RawF64Api.applies("crates/core/src/speedup.rs"));
        assert!(!RawF64Api.applies("crates/project/src/engine.rs"));
    }
}
