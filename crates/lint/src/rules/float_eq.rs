//! `float-eq`: no `==`/`!=` on float-typed expressions.
//!
//! The model computes in BCE-relative `f64` throughout; exact float
//! equality is almost always a latent NaN or rounding bug. Intentional
//! exact comparisons must go through `total_cmp`, an epsilon compare, or
//! `to_bits()` (which also makes the exact-bits intent explicit).
//!
//! Detection is lexical: an `==`/`!=` whose adjacent operand edge is a
//! float literal (`1.0`, `2.5e-3`, `3f64`) or an `f64::`/`f32::`
//! associated constant (`f64::NAN`, `f32::EPSILON`). Type inference is
//! out of scope for a lexer-level tool; the adjacent-edge heuristic
//! catches the comparisons that matter in practice (sentinel and
//! constant compares) with no false positives on integer code.

use super::Rule;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// The `float-eq` rule.
pub struct FloatEq;

/// `f64::`/`f32::` associated constants that mark an operand as float.
const FLOAT_CONSTS: [&str; 6] =
    ["NAN", "INFINITY", "NEG_INFINITY", "EPSILON", "MAX", "MIN_POSITIVE"];

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn description(&self) -> &'static str {
        "no ==/!= on float-typed expressions; use total_cmp, an epsilon compare, or to_bits()"
    }

    fn applies(&self, rel_path: &str) -> bool {
        super::in_model_src(rel_path) || rel_path.starts_with("src/")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if ctx.in_test[i]
                || tok.kind != TokenKind::Punct
                || (tok.text != "==" && tok.text != "!=")
            {
                continue;
            }
            let lhs_float = ctx.prev_code(i).is_some_and(|p| edge_is_float(ctx, p, true));
            let rhs_float = ctx.next_code(i).is_some_and(|n| edge_is_float(ctx, n, false));
            if lhs_float || rhs_float {
                out.push(Diagnostic {
                    rule: self.name(),
                    file: ctx.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "float `{}` comparison; use `total_cmp`, an epsilon compare, \
                         or `to_bits()` for exact-bits intent",
                        tok.text
                    ),
                });
            }
        }
    }
}

/// Whether the operand edge at token `i` is float-typed: a float
/// literal, or part of an `f64::CONST` / `f32::CONST` path. For the LHS
/// edge (`lhs == …`), `i` is the last token of the operand; for the RHS
/// edge (`… == rhs`), the first.
fn edge_is_float(ctx: &FileContext<'_>, i: usize, lhs: bool) -> bool {
    let tok = &ctx.tokens[i];
    if tok.kind == TokenKind::Float {
        return true;
    }
    if tok.kind != TokenKind::Ident {
        return false;
    }
    if lhs {
        // `… f64 :: NAN ==` — the edge token is the constant name.
        if !FLOAT_CONSTS.contains(&tok.text) {
            return false;
        }
        let Some(sep) = ctx.prev_code(i) else { return false };
        if !ctx.is_punct(sep, "::") {
            return false;
        }
        ctx.prev_code(sep)
            .is_some_and(|ty| ctx.is_ident(ty, "f64") || ctx.is_ident(ty, "f32"))
    } else {
        // `== f64 :: NAN …` — the edge token is the type name.
        if tok.text != "f64" && tok.text != "f32" {
            return false;
        }
        let Some(sep) = ctx.next_code(i) else { return false };
        if !ctx.is_punct(sep, "::") {
            return false;
        }
        ctx.next_code(sep)
            .is_some_and(|c| FLOAT_CONSTS.iter().any(|name| ctx.is_ident(c, name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<(u32, u32)> {
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        FloatEq.check(&ctx, &mut out);
        out.iter().map(|d| (d.line, d.col)).collect()
    }

    #[test]
    fn flags_literal_comparisons_both_sides() {
        assert_eq!(findings("if x == 0.0 {}"), vec![(1, 6)]);
        assert_eq!(findings("if 1.0 != y {}"), vec![(1, 8)]);
        assert_eq!(findings("let b = rel == 2.5e-3;"), vec![(1, 13)]);
    }

    #[test]
    fn flags_float_associated_consts() {
        assert_eq!(findings("if x == f64::NAN {}"), vec![(1, 6)]);
        assert_eq!(findings("if f32::EPSILON == y {}"), vec![(1, 17)]);
    }

    #[test]
    fn ignores_integers_and_non_float_idents() {
        assert!(findings("if n == 0 {}").is_empty());
        assert!(findings("if a == b {}").is_empty());
        assert!(findings("if kind == ChipKind::Symmetric {}").is_empty());
        assert!(findings("if n == usize::MAX {}").is_empty());
    }

    #[test]
    fn ignores_strings_comments_and_tests() {
        assert!(findings("let s = \"x == 0.0\";").is_empty());
        assert!(findings("// x == 0.0\nlet y = 1;").is_empty());
        assert!(findings("#[cfg(test)]\nmod t { fn f() { assert!(x == 0.0); } }").is_empty());
    }

    #[test]
    fn scope_is_model_src_plus_facade() {
        assert!(FloatEq.applies("crates/core/src/cache.rs"));
        assert!(FloatEq.applies("crates/workloads/src/mmm/blocked.rs"));
        assert!(FloatEq.applies("src/lib.rs"));
        assert!(!FloatEq.applies("crates/core/tests/props.rs"));
        assert!(!FloatEq.applies("crates/lint/src/lexer.rs"));
    }
}
