//! `errors-doc`: public fallible APIs document their failure modes.
//!
//! Every `pub fn … -> Result<…>` must carry an `# Errors` section in its
//! doc comment naming the error conditions — the workspace error
//! taxonomy (DESIGN.md §11) is only usable if callers can discover what
//! each function returns without reading its body.

use super::Rule;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// The `errors-doc` rule.
pub struct ErrorsDoc;

impl Rule for ErrorsDoc {
    fn name(&self) -> &'static str {
        "errors-doc"
    }

    fn description(&self) -> &'static str {
        "pub fn returning Result must have an `# Errors` doc section"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.contains("src/")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        let mut i = 0usize;
        while i < ctx.tokens.len() {
            if !ctx.in_test[i]
                && ctx.tokens[i].kind == TokenKind::Ident
                && ctx.tokens[i].text == "pub"
            {
                if let Some(end) = check_one(ctx, i, out) {
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// Examines a possible `pub fn` at the `pub` token `i`; returns the
/// index after the signature when one was scanned.
fn check_one(ctx: &FileContext<'_>, i: usize, out: &mut Vec<Diagnostic>) -> Option<usize> {
    let mut at = ctx.next_code(i)?;
    if ctx.is_punct(at, "(") {
        return None; // pub(crate)/pub(super): not public API
    }
    while ["const", "async", "unsafe"].iter().any(|q| ctx.is_ident(at, q)) {
        at = ctx.next_code(at)?;
    }
    if !ctx.is_ident(at, "fn") {
        return None;
    }
    let name_idx = ctx.next_code(at)?;
    let fn_name = ctx.tokens[name_idx].text;
    // Scan the signature up to the body `{` or `;`, tracking nesting so
    // braces in generic bounds or default exprs don't terminate early.
    let mut depth = 0i64;
    let mut arrow: Option<usize> = None;
    let mut at = ctx.next_code(name_idx)?;
    let sig_end = loop {
        let t = &ctx.tokens[at];
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "->" if depth == 0 => arrow = Some(at),
                "{" | ";" if depth <= 0 => break at,
                _ => {}
            }
        }
        at = ctx.next_code(at)?;
    };
    let arrow = match arrow {
        Some(a) => a,
        None => return Some(sig_end), // no return type: infallible
    };
    // Does the return type mention `Result` before any `where` clause?
    let mut returns_result = false;
    let mut j = arrow;
    while let Some(next) = ctx.next_code(j) {
        if next >= sig_end || ctx.is_ident(next, "where") {
            break;
        }
        if ctx.is_ident(next, "Result") {
            returns_result = true;
            break;
        }
        j = next;
    }
    if returns_result && !has_errors_doc(ctx, i) {
        let t = &ctx.tokens[name_idx];
        out.push(Diagnostic {
            rule: "errors-doc",
            file: ctx.rel_path.clone(),
            line: t.line,
            col: t.col,
            message: format!(
                "`pub fn {fn_name}` returns `Result` but its doc comment has no \
                 `# Errors` section naming the failure modes"
            ),
        });
    }
    Some(sig_end)
}

/// True when the doc comments attached to the item whose first
/// qualifier token is at `i` contain `# Errors`. Walks back over
/// attributes and comments.
fn has_errors_doc(ctx: &FileContext<'_>, i: usize) -> bool {
    let mut at = i;
    loop {
        let Some(prev) = at.checked_sub(1) else { return false };
        let t = &ctx.tokens[prev];
        match t.kind {
            TokenKind::DocComment => {
                if t.text.contains("# Errors") {
                    return true;
                }
                at = prev;
            }
            TokenKind::LineComment | TokenKind::BlockComment => at = prev,
            // Attribute tail `]` — walk to its opening `#` and continue.
            TokenKind::Punct if t.text == "]" => {
                let mut depth = 0i64;
                let mut j = prev;
                loop {
                    match ctx.tokens[j].text {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    let Some(next_j) = j.checked_sub(1) else { return false };
                    j = next_j;
                }
                match j.checked_sub(1) {
                    Some(h) if ctx.tokens[h].text == "#" => at = h,
                    _ => return false,
                }
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<String> {
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        ErrorsDoc.check(&ctx, &mut out);
        out.iter().map(|d| d.message.clone()).collect()
    }

    #[test]
    fn flags_undocumented_result_fn() {
        assert_eq!(findings("/// Does things.\npub fn go() -> Result<u8, E> { Ok(1) }").len(), 1);
        assert_eq!(findings("pub fn go() -> Result<u8, E>;").len(), 1);
    }

    #[test]
    fn accepts_documented_result_fn() {
        let src = "/// Does things.\n///\n/// # Errors\n///\n/// Fails when X.\npub fn go() -> Result<u8, E> { Ok(1) }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn docs_survive_interleaved_attributes() {
        let src = "/// # Errors\n/// Fails when X.\n#[inline]\n#[must_use]\npub fn go() -> Result<u8, E> { Ok(1) }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn ignores_infallible_and_private_fns() {
        assert!(findings("pub fn go() -> u8 { 1 }").is_empty());
        assert!(findings("fn go() -> Result<u8, E> { Ok(1) }").is_empty());
        assert!(findings("pub(crate) fn go() -> Result<u8, E> { Ok(1) }").is_empty());
        assert!(findings("pub fn go() {}").is_empty());
    }

    #[test]
    fn result_in_where_clause_is_not_a_return_type() {
        let src = "pub fn go<T>() -> T where T: From<Result<u8, E>> { todo() }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn test_gated_fns_are_exempt() {
        let src = "#[cfg(test)]\nmod t { pub fn go() -> Result<u8, E> { Ok(1) } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn generic_return_with_nested_result_is_flagged() {
        let src = "pub fn go() -> io::Result<()> { Ok(()) }";
        assert_eq!(findings(src).len(), 1);
    }
}
