//! The rule registry.
//!
//! Each rule is a token-stream pass over one file. To add a rule:
//!
//! 1. create `src/rules/<name>.rs` implementing [`Rule`];
//! 2. register it in [`all`] below (keep the list alphabetical);
//! 3. add known-good and known-bad fixtures under `fixtures/<name>/`
//!    and expectations in `tests/fixtures.rs`;
//! 4. document it in the DESIGN.md §13 rule table.
//!
//! Rules must be *total*: they run on hostile input (the lexer already
//! guarantees tokens for arbitrary bytes) and must never panic — the
//! lint binary itself is linted by its own `panic-freedom` rule.

mod determinism;
mod errors_doc;
mod float_eq;
mod panic_freedom;
mod raw_f64_api;
mod unsafe_audit;

use crate::context::FileContext;
use crate::diag::Diagnostic;

/// One static-analysis rule.
pub trait Rule {
    /// The kebab-case rule name used in reports and suppressions.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path.
    fn applies(&self, rel_path: &str) -> bool;
    /// Scans one file, appending findings.
    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>);
}

/// All rules, in registry order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::Determinism),
        Box::new(errors_doc::ErrorsDoc),
        Box::new(float_eq::FloatEq),
        Box::new(panic_freedom::PanicFreedom),
        Box::new(raw_f64_api::RawF64Api),
        Box::new(unsafe_audit::UnsafeAudit),
    ]
}

/// The names of all registered rules plus the synthetic `suppression`
/// and `unused-suppression` rules (valid in reports, not in `allow(…)`).
pub fn known_names() -> Vec<&'static str> {
    all().iter().map(|r| r.name()).collect()
}

/// The crates holding *model* code: arithmetic on BCE-relative
/// quantities whose invariants the rules police most strictly.
pub(crate) const MODEL_CRATE_DIRS: [&str; 9] = [
    "crates/core/",
    "crates/devices/",
    "crates/itrs/",
    "crates/calibrate/",
    "crates/workloads/",
    "crates/simdev/",
    "crates/project/",
    "crates/report/",
    "crates/bench/",
];

/// True when `rel_path` is inside a model crate's `src/` tree.
pub(crate) fn in_model_src(rel_path: &str) -> bool {
    MODEL_CRATE_DIRS
        .iter()
        .any(|d| rel_path.starts_with(d) && rel_path[d.len()..].starts_with("src/"))
}
