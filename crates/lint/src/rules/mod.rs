//! The rule registries: file-scope rules and workspace-scope rules.
//!
//! A *file rule* is a token-stream pass over one file. A *workspace
//! rule* sees every file at once plus the symbol graph and the contract
//! documents ([`crate::WorkspaceContext`]) — that is where the
//! interprocedural and doc-diffing analyses live. To add a rule:
//!
//! 1. create `src/rules/<name>.rs` implementing [`Rule`] or
//!    [`WorkspaceRule`];
//! 2. register it in [`all`] / [`workspace_all`] below (keep the lists
//!    alphabetical);
//! 3. add known-good and known-bad fixtures under `fixtures/<name>/`
//!    and expectations in `tests/fixtures.rs` or `tests/semantic.rs`;
//! 4. document it in the DESIGN.md §13/§18 rule tables.
//!
//! Rules must be *total*: they run on hostile input (the lexer already
//! guarantees tokens for arbitrary bytes, the graph degrades to
//! unresolved calls) and must never panic — the lint binary itself is
//! linted by its own `panic-reachability` rule.

mod contract_drift;
mod determinism;
mod errors_doc;
mod float_eq;
mod lock_discipline;
mod panic_reach;
mod raw_f64_api;
mod signal_safety;
mod unsafe_audit;

use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::WorkspaceContext;

/// One file-scope static-analysis rule.
pub trait Rule {
    /// The kebab-case rule name used in reports and suppressions.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Whether the rule runs on this workspace-relative path.
    fn applies(&self, rel_path: &str) -> bool;
    /// Scans one file, appending findings.
    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>);
}

/// One workspace-scope rule over the symbol graph and contract docs.
pub trait WorkspaceRule {
    /// The kebab-case rule name used in reports and suppressions.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Scans the whole workspace, appending findings.
    fn check(&self, ws: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>);
}

/// All file rules, in registry order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(determinism::Determinism),
        Box::new(errors_doc::ErrorsDoc),
        Box::new(float_eq::FloatEq),
        Box::new(raw_f64_api::RawF64Api),
        Box::new(unsafe_audit::UnsafeAudit),
    ]
}

/// All workspace rules, in registry order.
pub fn workspace_all() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(contract_drift::ContractDrift),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(panic_reach::PanicReachability),
        Box::new(signal_safety::SignalSafety),
    ]
}

/// The names of all registered rules (file and workspace). The synthetic
/// `suppression` and `unused-suppression` rules are valid in reports,
/// not in `allow(…)`.
pub fn known_names() -> Vec<&'static str> {
    all()
        .iter()
        .map(|r| r.name())
        .chain(workspace_all().iter().map(|r| r.name()))
        .collect()
}

/// `(name, description)` pairs for every rule plus the synthetic engine
/// rules — the SARIF driver metadata.
pub fn all_rule_metadata() -> Vec<(&'static str, &'static str)> {
    let mut out: Vec<(&'static str, &'static str)> =
        all().iter().map(|r| (r.name(), r.description())).collect();
    out.extend(workspace_all().iter().map(|r| (r.name(), r.description())));
    out.push(("suppression", "malformed or unreasoned ucore-lint allow comment"));
    out.push(("unused-suppression", "allow comment that matched no finding"));
    out
}

/// The crates holding *model* code: arithmetic on BCE-relative
/// quantities whose invariants the rules police most strictly.
pub(crate) const MODEL_CRATE_DIRS: [&str; 9] = [
    "crates/core/",
    "crates/devices/",
    "crates/itrs/",
    "crates/calibrate/",
    "crates/workloads/",
    "crates/simdev/",
    "crates/project/",
    "crates/report/",
    "crates/bench/",
];

/// True when `rel_path` is inside a model crate's `src/` tree.
pub(crate) fn in_model_src(rel_path: &str) -> bool {
    MODEL_CRATE_DIRS
        .iter()
        .any(|d| rel_path.starts_with(d) && rel_path[d.len()..].starts_with("src/"))
}
