//! `unsafe-audit`: every `unsafe` must carry its justification.
//!
//! Most workspace crates `forbid(unsafe_code)` outright; where unsafe
//! ever becomes necessary (SIMD kernels, memory-mapped journals), the
//! obligation is a written proof: `unsafe` blocks and `unsafe impl`s
//! need a `// SAFETY:` comment within the three preceding lines (or on
//! the same line), and `unsafe fn` declarations need a `# Safety`
//! section in their doc comment.

use super::Rule;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// The `unsafe-audit` rule.
pub struct UnsafeAudit;

/// How many lines above the `unsafe` keyword a `// SAFETY:` comment may
/// sit and still count as adjacent.
const SAFETY_WINDOW_LINES: u32 = 3;

impl Rule for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe-audit"
    }

    fn description(&self) -> &'static str {
        "unsafe blocks/impls need an adjacent // SAFETY: comment; unsafe fn needs # Safety docs"
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.contains("src/")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if ctx.in_test[i] || tok.kind != TokenKind::Ident || tok.text != "unsafe" {
                continue;
            }
            let is_fn_decl = ctx.next_code(i).is_some_and(|n| ctx.is_ident(n, "fn"));
            let (ok, want) = if is_fn_decl {
                (has_safety_doc(ctx, i), "a `# Safety` section in its doc comment")
            } else {
                (has_safety_comment(ctx, i), "an adjacent `// SAFETY:` comment")
            };
            if !ok {
                out.push(Diagnostic {
                    rule: self.name(),
                    file: ctx.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!("`unsafe` without {want} justifying why it is sound"),
                });
            }
        }
    }
}

/// True when a comment containing `SAFETY:` sits on the same line as
/// token `i` or within [`SAFETY_WINDOW_LINES`] lines above it.
fn has_safety_comment(ctx: &FileContext<'_>, i: usize) -> bool {
    let line = ctx.tokens[i].line;
    let lo = line.saturating_sub(SAFETY_WINDOW_LINES);
    // Look backward (comments above) and forward on the same line
    // (trailing `// SAFETY: …` after `unsafe {`).
    let behind = ctx.tokens[..i]
        .iter()
        .rev()
        .take_while(|t| t.line >= lo)
        .any(|t| t.is_comment() && t.text.contains("SAFETY:"));
    let trailing = ctx.tokens[i..]
        .iter()
        .take_while(|t| t.line == line)
        .any(|t| t.is_comment() && t.text.contains("SAFETY:"));
    behind || trailing
}

/// True when the doc comments immediately above the item containing
/// token `i` include a `# Safety` section. Walks back over attributes
/// and qualifiers (`pub`, `const`, `extern`) to find the docs.
fn has_safety_doc(ctx: &FileContext<'_>, i: usize) -> bool {
    let mut at = i;
    loop {
        let Some(prev) = at.checked_sub(1) else { return false };
        let t = &ctx.tokens[prev];
        match t.kind {
            TokenKind::DocComment => {
                if t.text.contains("# Safety") {
                    return true;
                }
                at = prev;
            }
            TokenKind::LineComment | TokenKind::BlockComment => at = prev,
            TokenKind::Ident if matches!(t.text, "pub" | "const" | "extern") => at = prev,
            // Attribute tail `]` — walk to its opening `#`.
            TokenKind::Punct if t.text == "]" => {
                let mut depth = 0i64;
                let mut j = prev;
                loop {
                    match ctx.tokens[j].text {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    let Some(next_j) = j.checked_sub(1) else { return false };
                    j = next_j;
                }
                // Expect the `#` before the `[`.
                match j.checked_sub(1) {
                    Some(h) if ctx.tokens[h].text == "#" => at = h,
                    _ => return false,
                }
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> usize {
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        UnsafeAudit.check(&ctx, &mut out);
        out.len()
    }

    #[test]
    fn unsafe_block_needs_safety_comment() {
        assert_eq!(findings("fn f() { unsafe { do_it() } }"), 1);
        assert_eq!(findings("fn f() {\n    // SAFETY: ptr is valid for reads\n    unsafe { do_it() }\n}"), 0);
        assert_eq!(findings("fn f() { unsafe { do_it() } // SAFETY: valid\n}"), 0);
    }

    #[test]
    fn safety_comment_window_is_bounded() {
        let far = "fn f() {\n    // SAFETY: too far away\n\n\n\n\n    unsafe { do_it() }\n}";
        assert_eq!(findings(far), 1);
    }

    #[test]
    fn unsafe_fn_needs_safety_docs() {
        assert_eq!(findings("pub unsafe fn raw() {}"), 1);
        assert_eq!(
            findings("/// Does raw things.\n///\n/// # Safety\n///\n/// Caller upholds X.\npub unsafe fn raw() {}"),
            0
        );
        assert_eq!(
            findings("/// # Safety\n/// Caller upholds X.\n#[inline]\npub unsafe fn raw() {}"),
            0
        );
    }

    #[test]
    fn unsafe_impl_needs_safety_comment() {
        assert_eq!(findings("unsafe impl Send for X {}"), 1);
        assert_eq!(findings("// SAFETY: X owns no thread-bound state\nunsafe impl Send for X {}"), 0);
    }

    #[test]
    fn test_code_and_strings_are_exempt() {
        assert_eq!(findings("#[cfg(test)]\nmod t { fn f() { unsafe { x() } } }"), 0);
        assert_eq!(findings("let s = \"unsafe\";"), 0);
    }
}
