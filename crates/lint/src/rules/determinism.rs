//! `determinism`: no wall-clock reads or hash-ordered containers in
//! output-producing paths.
//!
//! The sweep/figure pipeline guarantees byte-identical output at any
//! thread count (DESIGN.md §10) and across crash/resume (§12). Two
//! things silently break that guarantee: reading the wall clock
//! (`Instant::now` / `SystemTime::now`) into anything that reaches the
//! output, and iterating a `HashMap`/`HashSet` (random per-process seed
//! order) while serializing. This rule polices the files that produce
//! output bytes: the sweep engine, the journal, figure/result assembly,
//! every renderer in `ucore-report`, and all of `ucore-obs` (whose
//! snapshots and traces are diffed byte-for-byte in golden tests; its
//! single sanctioned wall-clock channel carries a reasoned
//! suppression).

use super::Rule;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// The `determinism` rule.
pub struct Determinism;

/// File names (within model-crate `src/` trees) that assemble or
/// serialize output bytes.
const OUTPUT_FILES: [&str; 5] =
    ["sweep.rs", "journal.rs", "figures.rs", "results.rs", "shard.rs"];

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "no Instant/SystemTime::now or HashMap/HashSet in output-producing paths"
    }

    fn applies(&self, rel_path: &str) -> bool {
        if rel_path.starts_with("crates/report/src/")
            || rel_path.starts_with("crates/obs/src/")
        {
            return true;
        }
        super::in_model_src(rel_path)
            && OUTPUT_FILES
                .iter()
                .any(|f| rel_path.ends_with(&format!("/{f}")))
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if ctx.in_test[i] || tok.kind != TokenKind::Ident {
                continue;
            }
            let message = match tok.text {
                "Instant" | "SystemTime" if is_now_call(ctx, i) => format!(
                    "`{}::now` in an output-producing path; wall-clock values must \
                     not influence output bytes (keep timing observability-only)",
                    tok.text
                ),
                "HashMap" | "HashSet" => format!(
                    "`{}` in an output-producing path; iteration order is \
                     nondeterministic — use `BTreeMap`/`BTreeSet`",
                    tok.text
                ),
                _ => continue,
            };
            out.push(Diagnostic {
                rule: self.name(),
                file: ctx.rel_path.clone(),
                line: tok.line,
                col: tok.col,
                message,
            });
        }
    }
}

/// True when the ident at `i` is followed by `::now`.
fn is_now_call(ctx: &FileContext<'_>, i: usize) -> bool {
    let Some(sep) = ctx.next_code(i) else { return false };
    if !ctx.is_punct(sep, "::") {
        return false;
    }
    ctx.next_code(sep).is_some_and(|n| ctx.is_ident(n, "now"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<String> {
        let ctx = FileContext::new("crates/project/src/sweep.rs", src);
        let mut out = Vec::new();
        Determinism.check(&ctx, &mut out);
        out.iter().map(|d| d.message.clone()).collect()
    }

    #[test]
    fn flags_wall_clock_reads() {
        assert_eq!(findings("let t = Instant::now();").len(), 1);
        assert_eq!(findings("let t = std::time::SystemTime::now();").len(), 1);
    }

    #[test]
    fn flags_hash_containers() {
        assert_eq!(findings("use std::collections::HashMap;").len(), 1);
        assert_eq!(findings("let s: HashSet<u32> = HashSet::new();").len(), 2);
    }

    #[test]
    fn ignores_instant_without_now_and_btree() {
        assert!(findings("fn take(t: Instant) {}").is_empty());
        assert!(findings("use std::collections::BTreeMap;").is_empty());
        assert!(findings("let d: Duration = Instant::elapsed(&t);").is_empty());
    }

    #[test]
    fn scope_covers_output_paths_only() {
        for path in [
            "crates/project/src/sweep.rs",
            "crates/project/src/journal.rs",
            "crates/project/src/figures.rs",
            "crates/project/src/results.rs",
            "crates/project/src/shard.rs",
            "crates/bench/src/figures.rs",
            "crates/report/src/csv.rs",
            "crates/obs/src/clock.rs",
            "crates/obs/src/metrics.rs",
        ] {
            assert!(Determinism.applies(path), "{path} should be in scope");
        }
        for path in [
            "crates/core/src/cache.rs",
            "crates/project/src/durability.rs",
            "crates/workloads/src/throughput.rs",
        ] {
            assert!(!Determinism.applies(path), "{path} should be out of scope");
        }
    }
}
