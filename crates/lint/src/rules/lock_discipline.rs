//! `lock-discipline`: no blocking call while a lock guard is live.
//!
//! The cache, durability journal, and serve dispatcher all hold
//! `parking_lot`/`std::sync` guards; a blocking call — `fsync`, a
//! `sync_channel` send/recv, `Command::spawn`, socket reads/writes —
//! made while a guard is live stalls every other contender of that lock
//! for the duration of the syscall. The rule finds `let` bindings whose
//! initializer produces a guard (a no-argument `.lock()` / `.read()` /
//! `.write()`), computes the guard's live range (to the end of the
//! enclosing block, truncated by `drop(guard)`), and flags any call in
//! that range that blocks either directly (by name) or transitively
//! (resolving through the symbol graph to a function that does).
//!
//! Limits (DESIGN.md §18): name-based method resolution means the
//! transitive check is an over-approximation; deref-copy bindings
//! (`let v = *m.lock()…`) and chains that consume the guard inside the
//! initializer (`.lock().map(…)`) are recognized as non-guards; guards
//! moved into other scopes are not tracked.

use super::WorkspaceRule;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::graph::{CallKind, CallSite, Resolution};
use crate::lexer::TokenKind;
use crate::WorkspaceContext;

/// The `lock-discipline` rule.
pub struct LockDiscipline;

/// Calls that block by name, regardless of resolution.
const BLOCKING_NAMES: [&str; 13] = [
    "fsync",
    "sync_all",
    "sync_data",
    "send",
    "recv",
    "recv_timeout",
    "spawn",
    "accept",
    "connect",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
];

/// Guard-producing method names (no-argument form).
const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Idents whose presence marks a file as using locks at all.
const LOCK_MARKERS: [&str; 3] = ["Mutex", "RwLock", "parking_lot"];

impl WorkspaceRule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "no blocking call (fsync/channel/spawn/socket I/O) while a lock guard is live"
    }

    fn check(&self, ws: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        let blocking = blocking_fns(ws);
        for (file_idx, ctx) in ws.files.iter().enumerate() {
            let uses_locks = ctx.tokens.iter().any(|t| {
                t.kind == TokenKind::Ident && LOCK_MARKERS.contains(&t.text)
            });
            if !uses_locks {
                continue;
            }
            for guard in guard_bindings(ctx) {
                flag_blocking_in_range(ws, &blocking, file_idx, &guard, self.name(), out);
            }
        }
    }
}

/// One guard binding and its live token range.
struct GuardBinding {
    name: String,
    line: u32,
    /// First token inside the live range.
    start: usize,
    /// One past the last token of the live range.
    end: usize,
}

/// Fixpoint: which fns block, directly or through workspace calls.
fn blocking_fns(ws: &WorkspaceContext<'_>) -> Vec<bool> {
    let n = ws.graph.fns.len();
    let mut blocking = vec![false; n];
    for (id, f) in ws.graph.fns.iter().enumerate() {
        if f.calls.iter().any(is_directly_blocking) {
            blocking[id] = true;
        }
    }
    loop {
        let mut changed = false;
        for (id, f) in ws.graph.fns.iter().enumerate() {
            if blocking[id] {
                continue;
            }
            let reaches = f.calls.iter().any(|c| match &c.resolved {
                Resolution::Internal(ids) => ids.iter().any(|&t| blocking[t]),
                Resolution::External(_) => false,
            });
            if reaches {
                blocking[id] = true;
                changed = true;
            }
        }
        if !changed {
            return blocking;
        }
    }
}

/// True for calls that block by name: the fixed list, plus `read`/
/// `write` *with* arguments (the no-arg forms are guard producers).
fn is_directly_blocking(call: &CallSite) -> bool {
    if matches!(call.kind, CallKind::Macro(_)) {
        return false;
    }
    let name = call.callee_name();
    BLOCKING_NAMES.contains(&name)
        || (call.has_args && matches!(name, "read" | "write"))
}

/// Finds `let`-bound guards: a binding whose initializer contains a
/// no-argument `.lock()`/`.read()`/`.write()` and is not a deref copy.
fn guard_bindings(ctx: &FileContext<'_>) -> Vec<GuardBinding> {
    let mut out = Vec::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tok.text != "let" || ctx.in_test[i] {
            continue;
        }
        let Some(binding) = parse_let_guard(ctx, i) else { continue };
        out.push(binding);
    }
    out
}

/// Parses one `let … = …` starting at the `let` token `i`; returns the
/// binding when its initializer produces a guard.
fn parse_let_guard(ctx: &FileContext<'_>, i: usize) -> Option<GuardBinding> {
    // Locate the `=` introducing the initializer (`==` is one token, so
    // a bare `=` is unambiguous); give up at statement boundaries.
    let mut eq = None;
    let mut at = i;
    while let Some(n) = ctx.next_code(at) {
        let t = &ctx.tokens[n];
        if t.kind == TokenKind::Punct {
            match t.text {
                "=" => {
                    eq = Some(n);
                    break;
                }
                ";" | "{" | "}" => return None,
                _ => {}
            }
        }
        at = n;
    }
    let eq = eq?;
    // Binding name: last pattern ident before `=`, stopping at a type
    // annotation `:` (`::` is a distinct token), skipping `mut`/`ref`.
    let mut name = None;
    let mut at = i;
    while let Some(n) = ctx.next_code(at) {
        if n >= eq {
            break;
        }
        let t = &ctx.tokens[n];
        if t.kind == TokenKind::Punct && t.text == ":" {
            break;
        }
        if t.kind == TokenKind::Ident && !matches!(t.text, "mut" | "ref") {
            name = Some(t.text.to_string());
        }
        at = n;
    }
    let name = name?;
    // A deref initializer copies out of the guard; the temporary dies
    // at the end of the statement.
    let first = ctx.next_code(eq)?;
    if ctx.is_punct(first, "*") {
        return None;
    }
    // Scan the initializer for `.lock()` / `.read()` / `.write()` and
    // find the statement terminator: `;` (plain let) or `{` (if/while
    // let body) at relative bracket depth 0.
    let mut has_guard_call = false;
    let mut depth = 0i64;
    let mut term = None;
    let mut at = eq;
    while let Some(n) = ctx.next_code(at) {
        let t = &ctx.tokens[n];
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth <= 0 => {
                    term = Some((n, false));
                    break;
                }
                "{" if depth <= 0 => {
                    term = Some((n, true));
                    break;
                }
                _ => {}
            }
        } else if t.kind == TokenKind::Ident
            && GUARD_METHODS.contains(&t.text)
            && ctx.prev_code(n).is_some_and(|p| ctx.is_punct(p, "."))
        {
            // No-argument form only: `(` directly followed by `)`, and
            // the rest of the chain must not consume the guard.
            if let Some(open) = ctx.next_code(n) {
                if ctx.is_punct(open, "(") {
                    if let Some(close) = ctx.next_code(open) {
                        if ctx.is_punct(close, ")") {
                            has_guard_call |= chain_keeps_guard(ctx, close);
                        }
                    }
                }
            }
        }
        at = n;
    }
    if !has_guard_call {
        return None;
    }
    let (term_idx, is_block) = term?;
    // Live range: from the terminator to the close of the enclosing
    // block (`;` form) or of the introduced block (`{` form), truncated
    // by an explicit `drop(name)`.
    let mut depth: i64 = i64::from(is_block);
    let floor: i64 = i64::from(is_block) - 1; // end when depth hits this
    let mut end = ctx.tokens.len();
    let mut at = term_idx;
    while let Some(n) = ctx.next_code(at) {
        let t = &ctx.tokens[n];
        if t.kind == TokenKind::Punct {
            match t.text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth <= floor {
                        end = n;
                        break;
                    }
                }
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && t.text == "drop" {
            // `drop(name)` ends the guard's life early.
            let arg_is_guard = ctx.next_code(n).is_some_and(|open| {
                ctx.is_punct(open, "(")
                    && ctx.next_code(open).is_some_and(|a| {
                        ctx.is_ident(a, &name)
                            && ctx.next_code(a).is_some_and(|c| ctx.is_punct(c, ")"))
                    })
            });
            if arg_is_guard {
                end = n;
                break;
            }
        }
        at = n;
    }
    Some(GuardBinding {
        name,
        line: ctx.tokens[i].line,
        start: term_idx + 1,
        end,
    })
}

/// True when the method chain after a guard call's closing paren
/// (token `close`) still yields the guard at the end of the
/// initializer. Poison recovery (`.unwrap()`, `.expect(…)`,
/// `.unwrap_or_else(…)`) and `?` pass the guard through; any other
/// chained method (`.map(…)`, `.ok()`, …) consumes it inside the
/// initializer, so the binding is not a guard.
fn chain_keeps_guard(ctx: &FileContext<'_>, mut close: usize) -> bool {
    const POISON_METHODS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];
    loop {
        let Some(n) = ctx.next_code(close) else { return true };
        if ctx.is_punct(n, "?") {
            close = n;
            continue;
        }
        if !ctx.is_punct(n, ".") {
            return true;
        }
        let Some(m) = ctx.next_code(n) else { return true };
        let t = &ctx.tokens[m];
        if t.kind != TokenKind::Ident || !POISON_METHODS.contains(&t.text) {
            return false;
        }
        let Some(open) = ctx.next_code(m) else { return false };
        if !ctx.is_punct(open, "(") {
            return false;
        }
        let mut depth = 1i64;
        let mut at = open;
        while depth > 0 {
            let Some(x) = ctx.next_code(at) else { return false };
            let t = &ctx.tokens[x];
            if t.kind == TokenKind::Punct {
                match t.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
            }
            at = x;
        }
        close = at;
    }
}

/// Flags every blocking call whose site token falls inside the range.
fn flag_blocking_in_range(
    ws: &WorkspaceContext<'_>,
    blocking: &[bool],
    file_idx: usize,
    guard: &GuardBinding,
    rule: &'static str,
    out: &mut Vec<Diagnostic>,
) {
    let ctx = &ws.files[file_idx];
    for f in &ws.graph.fns {
        if f.file != file_idx {
            continue;
        }
        for call in &f.calls {
            if call.site.token < guard.start || call.site.token >= guard.end {
                continue;
            }
            let why = if is_directly_blocking(call) {
                Some(format!("`{}` blocks", call.callee_name()))
            } else if let Resolution::Internal(ids) = &call.resolved {
                ids.iter().find(|&&t| blocking[t]).map(|&t| {
                    format!(
                        "`{}` resolves to `{}`, which blocks transitively",
                        call.callee_name(),
                        ws.graph.fns[t].qualified
                    )
                })
            } else {
                None
            };
            if let Some(why) = why {
                out.push(Diagnostic {
                    rule,
                    file: ctx.rel_path.clone(),
                    line: call.site.line,
                    col: call.site.col,
                    message: format!(
                        "{why} while lock guard `{}` (bound at line {}) is live; \
                         every contender of that lock stalls for the call's \
                         duration — drop the guard first",
                        guard.name, guard.line
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, rules, Docs};

    fn findings(src: &str) -> Vec<Diagnostic> {
        let files = vec![("crates/core/src/x.rs".to_string(), src.to_string())];
        lint_files(
            &files,
            &Docs::default(),
            &[],
            &[Box::new(LockDiscipline) as Box<dyn rules::WorkspaceRule>],
            true,
        )
    }

    const USE: &str = "use parking_lot::Mutex;\n";

    #[test]
    fn guard_across_fsync_is_flagged() {
        let src = format!(
            "{USE}fn f(m: &Mutex<File>) {{ let g = m.lock(); g.sync_all(); }}"
        );
        let out = findings(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("guard `g`"), "{}", out[0].message);
    }

    #[test]
    fn drop_ends_the_live_range() {
        let src = format!(
            "{USE}fn f(m: &Mutex<u8>, tx: &S) {{ let g = m.lock(); let v = *g; drop(g); tx.send(v); }}"
        );
        assert!(findings(&src).is_empty(), "{:?}", findings(&src));
    }

    #[test]
    fn consuming_chain_after_lock_is_not_a_guard() {
        // `.write().map(…)` hands the guard to the closure; the binding
        // holds whatever the chain returns, not the guard.
        let src = format!(
            "{USE}fn f(m: &RwLock<Option<u8>>, tx: &S) {{ \
             let v = m.write().map(|mut s| s.take()).unwrap_or_else(|e| e.into_inner().take()); \
             tx.send(v); }}"
        );
        assert!(findings(&src).is_empty(), "{:?}", findings(&src));
    }

    #[test]
    fn poison_recovery_chain_still_binds_the_guard() {
        let src = format!(
            "{USE}fn f(m: &Mutex<File>) {{ \
             let g = m.lock().unwrap_or_else(PoisonError::into_inner); g.sync_all(); }}"
        );
        assert_eq!(findings(&src).len(), 1, "{:?}", findings(&src));
    }

    #[test]
    fn deref_copy_is_not_a_guard() {
        let src = format!(
            "{USE}fn f(m: &Mutex<u8>, tx: &S) {{ let v = *m.lock(); tx.send(v); }}"
        );
        assert!(findings(&src).is_empty(), "{:?}", findings(&src));
    }

    #[test]
    fn transitive_blocking_through_helper_is_flagged() {
        let src = format!(
            "{USE}fn sink(f: &File) {{ f.sync_all(); }}\n\
             fn f(m: &Mutex<File>) {{ let g = m.lock(); persist(&g); }}\n\
             fn persist(f: &File) {{ sink(f); }}"
        );
        let out = findings(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("transitively"), "{}", out[0].message);
    }

    #[test]
    fn no_arg_read_write_are_guards_not_blocking() {
        let src = format!(
            "{USE}fn f(m: &RwLock<u8>) -> u8 {{ let g = m.read(); *g }}"
        );
        assert!(findings(&src).is_empty(), "{:?}", findings(&src));
    }

    #[test]
    fn files_without_locks_are_skipped() {
        let out = findings("fn f(tx: &S) { let g = x.lock(); tx.send(1); }");
        assert!(out.is_empty(), "no Mutex/RwLock/parking_lot marker: {out:?}");
    }
}
