//! `panic-reachability`: no panicking constructs outside test code,
//! with interprocedural evidence.
//!
//! Replaces the purely local `panic-freedom` rule of PR 4. The site
//! detection is unchanged — `.unwrap()` / `.unwrap_err()` / `.expect()`
//! / `.expect_err()` and the `panic!` / `todo!` / `unimplemented!`
//! macros in non-test code, anywhere in the workspace — plus slice
//! indexing (`expr[i]`) inside `crates/serve/src/`, the
//! availability-critical layer where an out-of-bounds panic kills a
//! connection thread. What the symbol graph adds is *evidence*: when
//! the function containing a panic site is reachable from a `pub`
//! non-test function elsewhere, the diagnostic carries the shortest
//! caller chain, so the blast radius is visible in the report.
//!
//! Suppressing a site (`allow(panic-reachability)`) also stops it from
//! tainting callers: vetted sites produce no chains.

use super::WorkspaceRule;
use crate::diag::Diagnostic;
use crate::graph::{CallKind, Resolution};
use crate::lexer::TokenKind;
use crate::WorkspaceContext;
use std::collections::VecDeque;

/// The `panic-reachability` rule.
pub struct PanicReachability;

/// Method names that panic on the unhappy path.
const PANICKY_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macro names that always panic when reached.
const PANICKY_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// Where slice indexing counts as a panic source.
const INDEX_SCOPE: &str = "crates/serve/src/";

impl WorkspaceRule for PanicReachability {
    fn name(&self) -> &'static str {
        "panic-reachability"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic! (+ slice indexing in serve) outside tests, with caller chains"
    }

    fn check(&self, ws: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        // Callers of each fn, for evidence chains (non-test edges only).
        let n = ws.graph.fns.len();
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, f) in ws.graph.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for call in &f.calls {
                if let Resolution::Internal(ids) = &call.resolved {
                    for &callee in ids {
                        callers[callee].push(id);
                    }
                }
            }
        }

        for (file_idx, ctx) in ws.files.iter().enumerate() {
            for (i, tok) in ctx.tokens.iter().enumerate() {
                if ctx.in_test[i] {
                    continue;
                }
                let message = if tok.kind == TokenKind::Ident
                    && PANICKY_METHODS.contains(&tok.text)
                    && ctx.prev_code(i).is_some_and(|p| ctx.is_punct(p, "."))
                    && ctx.next_code(i).is_some_and(|nx| ctx.is_punct(nx, "("))
                {
                    Some(format!(
                        "`.{}()` outside test code; propagate a typed error \
                         (`?`, `ok_or`, `map_err`) instead",
                        tok.text
                    ))
                } else if tok.kind == TokenKind::Ident
                    && PANICKY_MACROS.contains(&tok.text)
                    && ctx.next_code(i).is_some_and(|nx| ctx.is_punct(nx, "!"))
                {
                    Some(format!(
                        "`{}!` outside test code; return a typed error instead",
                        tok.text
                    ))
                } else if tok.kind == TokenKind::Punct
                    && tok.text == "["
                    && ctx.rel_path.starts_with(INDEX_SCOPE)
                    && crate::graph::is_index_open(ctx, i)
                {
                    Some(
                        "slice indexing can panic on out-of-range bounds; serve-layer \
                         code must use `.get(..)` or checked splits"
                            .to_string(),
                    )
                } else {
                    None
                };
                let Some(mut message) = message else { continue };
                if !ws.is_suppressed(self.name(), file_idx, tok.line) {
                    if let Some(chain) =
                        evidence_chain(ws, &callers, file_idx, i, tok.line)
                    {
                        message.push_str(&chain);
                    }
                }
                out.push(Diagnostic {
                    rule: self.name(),
                    file: ctx.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message,
                });
            }
        }
    }
}

/// When the fn containing the panic site at token `tok_idx` is reachable
/// from a `pub` non-test fn elsewhere, renders "; reachable from …".
fn evidence_chain(
    ws: &WorkspaceContext<'_>,
    callers: &[Vec<usize>],
    file_idx: usize,
    tok_idx: usize,
    _line: u32,
) -> Option<String> {
    // Find the fn whose recorded calls/index sites include this token.
    let holder = ws.graph.fns.iter().position(|f| {
        f.file == file_idx
            && (f.calls.iter().any(|c| c.site.token == tok_idx)
                || f.index_sites.iter().any(|s| s.token == tok_idx)
                || f.calls.iter().any(|c| {
                    // Macro sites anchor on the name token, one before `!`.
                    matches!(c.kind, CallKind::Macro(_)) && c.site.token == tok_idx
                }))
    })?;
    // BFS towards callers for the nearest pub non-test entry point.
    let fns = &ws.graph.fns;
    let mut prev: Vec<Option<usize>> = vec![None; fns.len()];
    let mut seen = vec![false; fns.len()];
    let mut queue = VecDeque::from([holder]);
    seen[holder] = true;
    while let Some(at) = queue.pop_front() {
        if at != holder && fns[at].is_pub && !fns[at].in_test {
            // Render entry → … → holder.
            let mut path = vec![at];
            let mut cur = at;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            let names: Vec<&str> = path
                .iter()
                .take(6)
                .map(|&id| fns[id].name.as_str())
                .collect();
            return Some(format!(
                "; reachable from pub fn `{}` via {}",
                fns[at].qualified,
                names.join(" → "),
            ));
        }
        for &c in &callers[at] {
            if !seen[c] {
                seen[c] = true;
                prev[c] = Some(at);
                queue.push_back(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, rules, Docs};

    fn findings(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let owned: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        lint_files(
            &owned,
            &Docs::default(),
            &[],
            &[Box::new(PanicReachability) as Box<dyn rules::WorkspaceRule>],
            true,
        )
    }

    #[test]
    fn flags_unwrap_and_macros_like_the_old_rule() {
        let out = findings(&[(
            "crates/core/src/x.rs",
            "fn f() { let x = maybe.unwrap(); panic!(\"boom\"); }",
        )]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.rule == "panic-reachability"));
    }

    #[test]
    fn ignores_lookalikes_and_test_code() {
        let out = findings(&[(
            "crates/core/src/x.rs",
            "fn f() { let x = maybe.unwrap_or(0); std::panic::catch_unwind(g); }\n\
             #[cfg(test)]\nmod t { fn g() { x.unwrap(); } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn slice_indexing_flags_only_in_serve() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }";
        assert_eq!(findings(&[("crates/serve/src/http.rs", src)]).len(), 1);
        assert!(findings(&[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn evidence_chain_names_the_pub_entry() {
        let out = findings(&[
            (
                "crates/core/src/a.rs",
                "pub fn entry() { helper(); }\nfn helper() { deep(); }\nfn deep() { x.unwrap(); }",
            ),
        ]);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("reachable from pub fn `ucore_core::a::entry`"),
            "{}",
            out[0].message
        );
        assert!(out[0].message.contains("entry → helper → deep"), "{}", out[0].message);
    }

    #[test]
    fn suppressed_site_produces_no_chain_but_is_used() {
        let out = findings(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { helper(); }\n\
             // ucore-lint: allow(panic-reachability): invariant upheld by caller\n\
             fn helper() { x.unwrap(); }",
        )]);
        assert!(out.is_empty(), "suppression consumed the finding: {out:?}");
    }

    #[test]
    fn description_is_stable() {
        assert!(PanicReachability.description().contains("unwrap"));
    }
}
