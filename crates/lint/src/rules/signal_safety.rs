//! `signal-safety`: only async-signal-safe calls reachable from
//! `signal(2)` handlers.
//!
//! `repro` and `served` install raw `signal(2)` handlers for
//! SIGINT/SIGTERM (DESIGN.md §15/§17): the handler may run between any
//! two instructions of the interrupted thread, so it may only touch
//! atomics and the POSIX async-signal-safe set (`fsync`, `_exit`, …).
//! Allocation, locks, buffered I/O (`eprintln!`), and anything that can
//! panic are deadlocks or UB waiting for a signal at the wrong moment.
//!
//! The rule finds every function passed *by name* as an argument to a
//! `signal(…)` call, walks the call graph from those handlers, and
//! flags: calls that neither resolve into the workspace nor appear on
//! the allowlist, macro invocations (all formatting/allocating), and
//! slice-index expressions (panic paths). Workspace-internal callees
//! are traversed, so a handler may factor its logic into helpers as
//! long as every leaf stays on the allowlist.

use super::WorkspaceRule;
use crate::diag::Diagnostic;
use crate::graph::{CallKind, Resolution};
use crate::lexer::TokenKind;
use crate::WorkspaceContext;

/// The `signal-safety` rule.
pub struct SignalSafety;

/// Names a signal-handler path may call without resolving internally:
/// POSIX async-signal-safe functions and `std::sync::atomic` methods.
const ALLOWLIST: [&str; 12] = [
    "fsync",
    "_exit",
    "signal",
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
];

/// Macros that expand to plain control flow without allocating.
const SAFE_MACROS: [&str; 2] = ["matches", "cfg"];

impl WorkspaceRule for SignalSafety {
    fn name(&self) -> &'static str {
        "signal-safety"
    }

    fn description(&self) -> &'static str {
        "signal(2) handler paths may only reach the async-signal-safe allowlist"
    }

    fn check(&self, ws: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        // Roots: fns passed by name as arguments inside `signal(…)`.
        let mut roots: Vec<usize> = Vec::new();
        for (id, f) in ws.graph.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for call in &f.calls {
                if call.callee_name() != "signal"
                    || matches!(call.kind, CallKind::Macro(_))
                {
                    continue;
                }
                for name in call_arg_idents(ws, f.file, call.site.token) {
                    for handler in ws.graph.resolve_value_name(id, &name) {
                        if !roots.contains(&handler) {
                            roots.push(handler);
                        }
                    }
                }
            }
        }

        // DFS from each handler; remember the path for evidence chains.
        for &root in &roots {
            let mut visited = vec![false; ws.graph.fns.len()];
            walk(ws, self.name(), root, root, &mut Vec::new(), &mut visited, out);
        }
    }
}

/// Recursively audits `at` (reached from handler `root` via `path`).
fn walk(
    ws: &WorkspaceContext<'_>,
    rule: &'static str,
    root: usize,
    at: usize,
    path: &mut Vec<usize>,
    visited: &mut [bool],
    out: &mut Vec<Diagnostic>,
) {
    if visited[at] {
        return;
    }
    visited[at] = true;
    path.push(at);
    let node = &ws.graph.fns[at];
    let ctx = &ws.files[node.file];
    for call in &node.calls {
        let name = call.callee_name().to_string();
        if let CallKind::Macro(_) = call.kind {
            if !SAFE_MACROS.contains(&name.as_str()) {
                out.push(Diagnostic {
                    rule,
                    file: ctx.rel_path.clone(),
                    line: call.site.line,
                    col: call.site.col,
                    message: format!(
                        "`{name}!` in a signal-handler path: macros allocate or take \
                         locks, which is not async-signal-safe{}",
                        chain(ws, root, path)
                    ),
                });
            }
            continue;
        }
        if ALLOWLIST.contains(&name.as_str()) {
            continue;
        }
        match &call.resolved {
            Resolution::Internal(ids) => {
                for &callee in ids {
                    walk(ws, rule, root, callee, path, visited, out);
                }
            }
            Resolution::External(_) => {
                out.push(Diagnostic {
                    rule,
                    file: ctx.rel_path.clone(),
                    line: call.site.line,
                    col: call.site.col,
                    message: format!(
                        "call to `{name}` in a signal-handler path is not on the \
                         async-signal-safe allowlist{}",
                        chain(ws, root, path)
                    ),
                });
            }
        }
    }
    for site in &node.index_sites {
        out.push(Diagnostic {
            rule,
            file: ctx.rel_path.clone(),
            line: site.line,
            col: site.col,
            message: format!(
                "slice indexing in a signal-handler path can panic, and unwinding \
                 out of a signal handler is undefined behavior{}",
                chain(ws, root, path)
            ),
        });
    }
    path.pop();
}

/// Renders the handler evidence chain for a finding message.
fn chain(ws: &WorkspaceContext<'_>, root: usize, path: &[usize]) -> String {
    let names: Vec<&str> =
        path.iter().take(6).map(|&id| ws.graph.fns[id].name.as_str()).collect();
    format!(
        " (handler `{}` path: {})",
        ws.graph.fns[root].qualified,
        names.join(" \u{2192} ")
    )
}

/// Identifier arguments of the call whose name token is `tok_idx` —
/// idents at paren depth 1 directly delimited by `(`, `,`, or `)`.
fn call_arg_idents(ws: &WorkspaceContext<'_>, file: usize, tok_idx: usize) -> Vec<String> {
    let ctx = &ws.files[file];
    let mut out = Vec::new();
    let Some(open) = ctx.next_code(tok_idx) else { return out };
    if !ctx.is_punct(open, "(") {
        return out;
    }
    let mut depth = 1i64;
    let mut at = open;
    while depth > 0 {
        let Some(n) = ctx.next_code(at) else { break };
        let t = &ctx.tokens[n];
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && depth == 1 {
            let before_ok = ctx
                .prev_code(n)
                .is_some_and(|p| ctx.is_punct(p, "(") || ctx.is_punct(p, ","));
            let after_ok = ctx
                .next_code(n)
                .is_some_and(|x| ctx.is_punct(x, ")") || ctx.is_punct(x, ","));
            if before_ok && after_ok {
                out.push(t.text.to_string());
            }
        }
        at = n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, rules, Docs};

    fn findings(src: &str) -> Vec<Diagnostic> {
        let files = vec![("crates/bench/src/bin/repro.rs".to_string(), src.to_string())];
        lint_files(
            &files,
            &Docs::default(),
            &[],
            &[Box::new(SignalSafety) as Box<dyn rules::WorkspaceRule>],
            true,
        )
    }

    const PRELUDE: &str = "extern \"C\" { fn signal(s: i32, h: extern \"C\" fn(i32)) -> usize; \
                           fn fsync(fd: i32) -> i32; fn _exit(c: i32) -> !; }\n";

    #[test]
    fn clean_handler_with_atomics_and_fsync_passes() {
        let src = format!(
            "{PRELUDE}extern \"C\" fn handler(s: i32) {{ FLAG.store(true, SeqCst); \
             unsafe {{ fsync(3); _exit(130); }} }}\n\
             fn install() {{ unsafe {{ signal(2, handler); }} }}"
        );
        assert!(findings(&src).is_empty(), "{:?}", findings(&src));
    }

    #[test]
    fn non_allowlisted_external_call_is_flagged_with_chain() {
        let src = format!(
            "{PRELUDE}extern \"C\" fn handler(s: i32) {{ helper(); }}\n\
             fn helper() {{ std::fs::remove_file(\"x\"); }}\n\
             fn install() {{ unsafe {{ signal(2, handler); }} }}"
        );
        let out = findings(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`remove_file`"), "{}", out[0].message);
        assert!(out[0].message.contains("handler → helper"), "{}", out[0].message);
    }

    #[test]
    fn macros_and_indexing_in_handler_are_flagged() {
        let src = format!(
            "{PRELUDE}extern \"C\" fn handler(s: i32) {{ eprintln!(\"sig\"); let _ = TABLE[0]; }}\n\
             fn install() {{ unsafe {{ signal(2, handler); }} }}"
        );
        let out = findings(&src);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|d| d.message.contains("eprintln")));
        assert!(out.iter().any(|d| d.message.contains("slice indexing")));
    }

    #[test]
    fn non_handler_code_is_not_audited() {
        let src = format!("{PRELUDE}fn free() {{ std::fs::remove_file(\"x\"); }}");
        assert!(findings(&src).is_empty());
    }
}
