//! `panic-freedom`: no panicking constructs outside test code.
//!
//! The sweep engine contains panics at the evaluation boundary
//! (DESIGN.md §11), but containment is a backstop, not a license: model
//! code must surface failures as typed errors. This rule bans
//! `.unwrap()` / `.unwrap_err()` / `.expect()` / `.expect_err()` and the
//! `panic!` / `todo!` / `unimplemented!` macros in non-test code across
//! every workspace crate — including this lint crate itself.

use super::Rule;
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

/// The `panic-freedom` rule.
pub struct PanicFreedom;

/// Method names that panic on the unhappy path.
const PANICKY_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macro names that always panic when reached.
const PANICKY_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

impl Rule for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic-freedom"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/unimplemented! outside #[cfg(test)]"
    }

    fn applies(&self, rel_path: &str) -> bool {
        // Every src/ file in the workspace, lint crate included.
        rel_path.contains("src/")
    }

    fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        for (i, tok) in ctx.tokens.iter().enumerate() {
            if ctx.in_test[i] || tok.kind != TokenKind::Ident {
                continue;
            }
            let finding = if PANICKY_METHODS.contains(&tok.text)
                && ctx.prev_code(i).is_some_and(|p| ctx.is_punct(p, "."))
            {
                Some(format!(
                    "`.{}()` outside test code; propagate a typed error \
                     (`?`, `ok_or`, `map_err`) instead",
                    tok.text
                ))
            } else if PANICKY_MACROS.contains(&tok.text)
                && ctx.next_code(i).is_some_and(|n| ctx.is_punct(n, "!"))
            {
                Some(format!(
                    "`{}!` outside test code; return a typed error instead",
                    tok.text
                ))
            } else {
                None
            };
            if let Some(message) = finding {
                out.push(Diagnostic {
                    rule: self.name(),
                    file: ctx.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                    message,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<String> {
        let ctx = FileContext::new("crates/core/src/x.rs", src);
        let mut out = Vec::new();
        PanicFreedom.check(&ctx, &mut out);
        out.iter().map(|d| d.message.clone()).collect()
    }

    #[test]
    fn flags_unwrap_and_expect_calls() {
        assert_eq!(findings("let x = maybe.unwrap();").len(), 1);
        assert_eq!(findings("let x = res.expect(\"msg\");").len(), 1);
        assert_eq!(findings("let e = res.unwrap_err();").len(), 1);
        assert_eq!(findings("let e = res.expect_err(\"msg\");").len(), 1);
    }

    #[test]
    fn flags_panicky_macros() {
        assert_eq!(findings("panic!(\"boom\");").len(), 1);
        assert_eq!(findings("todo!()").len(), 1);
        assert_eq!(findings("unimplemented!()").len(), 1);
    }

    #[test]
    fn ignores_lookalikes() {
        // Different identifiers entirely.
        assert!(findings("let x = maybe.unwrap_or(0);").is_empty());
        assert!(findings("let x = maybe.unwrap_or_else(f);").is_empty());
        assert!(findings("let x = maybe.unwrap_or_default();").is_empty());
        // `panic` as a path segment, not a macro invocation.
        assert!(findings("use std::panic::catch_unwind;").is_empty());
        assert!(findings("std::panic::catch_unwind(f);").is_empty());
        // Struct field or variable named unwrap, not a method call.
        assert!(findings("let unwrap = 3; let y = unwrap + 1;").is_empty());
    }

    #[test]
    fn ignores_strings_comments_and_test_code() {
        assert!(findings("let s = \"call .unwrap() here\";").is_empty());
        assert!(findings("// panic!(\"doc\")\nlet x = 1;").is_empty());
        assert!(findings("/// let y = x.unwrap();\nfn f() {}").is_empty());
        assert!(findings("#[cfg(test)]\nmod t { fn f() { x.unwrap(); panic!(); } }").is_empty());
    }
}
