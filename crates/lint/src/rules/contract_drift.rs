//! `contract-drift`: the docs' contract tables match the code.
//!
//! Three contracts, each diffed in *both* directions (an undocumented
//! code identifier and a stale doc row are equally findings):
//!
//! 1. **Metrics** — every `Registry::counter/gauge/histogram("fam.name")`
//!    registration in non-test code vs DESIGN.md's metrics contract
//!    table (§18).
//! 2. **Error codes** — every `ServeError` dotted code constructed in
//!    `crates/serve/src/` and every `UcoreError` Display prefix in
//!    `src/error.rs` vs DESIGN.md's error-taxonomy table (§18).
//! 3. **CLI flags** — every whole-literal `"--flag"` string in the
//!    `repro`, `served`, and `ucore-lint` argument parsers vs README's
//!    CLI reference tables.
//!
//! Doc-side entries come only from table rows whose first cell is a
//! backticked identifier matching the contract's grammar (see
//! [`crate::contracts`]); prose and fenced code blocks are free-form.
//! Undocumented identifiers anchor at the code line; stale entries
//! anchor at the Markdown line (and cannot be suppressed — fix the
//! doc).

use super::WorkspaceRule;
use crate::context::FileContext;
use crate::contracts::{
    is_error_code, is_error_prefix, is_flag_name, is_metric_name, table_entries, DocEntry,
};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::WorkspaceContext;
use std::collections::BTreeMap;

/// The `contract-drift` rule.
pub struct ContractDrift;

/// Metric-registering method names on the obs `Registry`.
const METRIC_METHODS: [&str; 3] = ["counter", "gauge", "histogram"];

/// The argument parsers whose `"--flag"` literals form the CLI contract.
const FLAG_FILES: [&str; 3] = [
    "crates/bench/src/bin/repro.rs",
    "crates/serve/src/bin/served.rs",
    "crates/lint/src/main.rs",
];

impl WorkspaceRule for ContractDrift {
    fn name(&self) -> &'static str {
        "contract-drift"
    }

    fn description(&self) -> &'static str {
        "DESIGN.md/README contract tables match code metrics, error codes, and CLI flags"
    }

    fn check(&self, ws: &WorkspaceContext<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(design) = &ws.docs.design {
            let entries = table_entries(design);
            self.check_metrics(ws, &entries, out);
            self.check_errors(ws, &entries, out);
        }
        if let Some(readme) = &ws.docs.readme {
            let entries = table_entries(readme);
            self.check_flags(ws, &entries, out);
        }
    }
}

/// A code-side identifier occurrence: name → first (file, line, col).
type CodeSide = BTreeMap<String, (String, u32, u32)>;

impl ContractDrift {
    fn check_metrics(
        &self,
        ws: &WorkspaceContext<'_>,
        entries: &[DocEntry],
        out: &mut Vec<Diagnostic>,
    ) {
        let mut code = CodeSide::new();
        for ctx in ws.files {
            for (i, tok) in ctx.tokens.iter().enumerate() {
                if ctx.in_test[i]
                    || tok.kind != TokenKind::Ident
                    || !METRIC_METHODS.contains(&tok.text)
                {
                    continue;
                }
                let Some(lit) = str_arg(ctx, i) else { continue };
                let (text, line, col) = lit;
                if is_metric_name(&text) {
                    code.entry(text).or_insert((ctx.rel_path.clone(), line, col));
                }
            }
        }
        self.diff(
            ws,
            &code,
            entries,
            is_metric_name,
            "metric",
            "the DESIGN.md metrics contract table (§18)",
            "registered",
            out,
        );
    }

    fn check_errors(
        &self,
        ws: &WorkspaceContext<'_>,
        entries: &[DocEntry],
        out: &mut Vec<Diagnostic>,
    ) {
        let mut code = CodeSide::new();
        for ctx in ws.files {
            if ctx.rel_path.starts_with("crates/serve/src/") {
                // `ServeError::new("code", …)` and helper constructors.
                for (i, tok) in ctx.tokens.iter().enumerate() {
                    if ctx.in_test[i] || tok.kind != TokenKind::Ident || tok.text != "new" {
                        continue;
                    }
                    let Some((text, line, col)) = str_arg(ctx, i) else { continue };
                    if is_error_code(&text) {
                        code.entry(text).or_insert((ctx.rel_path.clone(), line, col));
                    }
                }
            }
            if ctx.rel_path == "src/error.rs" {
                // `UcoreError` Display prefixes: `"model: {e}"` → `model:`.
                for (i, tok) in ctx.tokens.iter().enumerate() {
                    if ctx.in_test[i] || tok.kind != TokenKind::Str {
                        continue;
                    }
                    let text = unquote(tok.text);
                    let Some(colon) = text.find(": ") else { continue };
                    let prefix = format!("{}:", &text[..colon]);
                    if is_error_prefix(&prefix) {
                        code.entry(prefix).or_insert((
                            ctx.rel_path.clone(),
                            tok.line,
                            tok.col,
                        ));
                    }
                }
            }
        }
        let is_error_entry = |name: &str| is_error_code(name) || is_error_prefix(name);
        self.diff(
            ws,
            &code,
            entries,
            is_error_entry,
            "error code",
            "the DESIGN.md error-taxonomy table (§18)",
            "constructed",
            out,
        );
    }

    fn check_flags(
        &self,
        ws: &WorkspaceContext<'_>,
        entries: &[DocEntry],
        out: &mut Vec<Diagnostic>,
    ) {
        let mut code = CodeSide::new();
        for ctx in ws.files {
            if !FLAG_FILES.iter().any(|f| ctx.rel_path.ends_with(f)) {
                continue;
            }
            for (i, tok) in ctx.tokens.iter().enumerate() {
                if ctx.in_test[i] || tok.kind != TokenKind::Str {
                    continue;
                }
                let text = unquote(tok.text);
                if is_flag_name(&text) {
                    code.entry(text).or_insert((ctx.rel_path.clone(), tok.line, tok.col));
                }
            }
        }
        self.diff(
            ws,
            &code,
            entries,
            is_flag_name,
            "CLI flag",
            "the README CLI reference tables",
            "parsed",
            out,
        );
    }

    /// Emits both drift directions for one contract.
    #[allow(clippy::too_many_arguments)]
    fn diff(
        &self,
        ws: &WorkspaceContext<'_>,
        code: &CodeSide,
        entries: &[DocEntry],
        in_contract: impl Fn(&str) -> bool,
        noun: &str,
        table: &str,
        verb: &str,
        out: &mut Vec<Diagnostic>,
    ) {
        let doc_file = if table.contains("README") { "README.md" } else { "DESIGN.md" };
        let documented: BTreeMap<&str, u32> = entries
            .iter()
            .filter(|e| in_contract(&e.name))
            .map(|e| (e.name.as_str(), e.line))
            .collect();
        for (name, (file, line, col)) in code {
            if !documented.contains_key(name.as_str()) {
                out.push(Diagnostic {
                    rule: self.name(),
                    file: file.clone(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "{noun} `{name}` is {verb} in code but missing from {table}; \
                         add a row or remove the identifier"
                    ),
                });
            }
        }
        let _ = ws;
        for (name, line) in &documented {
            if !code.contains_key(*name) {
                out.push(Diagnostic {
                    rule: self.name(),
                    file: doc_file.to_string(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "documented {noun} `{name}` is no longer {verb} anywhere in \
                         code; delete the stale row or restore the identifier"
                    ),
                });
            }
        }
    }
}

/// When the ident at `i` is followed by `(` and a string literal,
/// returns the literal's unquoted text and position.
fn str_arg(ctx: &FileContext<'_>, i: usize) -> Option<(String, u32, u32)> {
    let open = ctx.next_code(i)?;
    if !ctx.is_punct(open, "(") {
        return None;
    }
    let arg = ctx.next_code(open)?;
    let tok = &ctx.tokens[arg];
    if tok.kind != TokenKind::Str {
        return None;
    }
    Some((unquote(tok.text), tok.line, tok.col))
}

/// Strips the quotes (and any `b`/`c` prefix) off a `Str` token's text.
fn unquote(text: &str) -> String {
    let inner = text.trim_start_matches(['b', 'c']);
    inner.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(inner).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_files, rules, Docs};

    fn findings(files: &[(&str, &str)], design: &str, readme: &str) -> Vec<Diagnostic> {
        let owned: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        let docs = Docs {
            design: (!design.is_empty()).then(|| design.to_string()),
            readme: (!readme.is_empty()).then(|| readme.to_string()),
        };
        lint_files(
            &owned,
            &docs,
            &[],
            &[Box::new(ContractDrift) as Box<dyn rules::WorkspaceRule>],
            true,
        )
    }

    #[test]
    fn matching_contract_is_clean() {
        let out = findings(
            &[("crates/serve/src/obs.rs", "fn m(r: &Registry) { r.counter(\"serve.shed\"); }")],
            "| `serve.shed` | counter |\n",
            "",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn undocumented_metric_anchors_at_code() {
        let out = findings(
            &[(
                "crates/serve/src/obs.rs",
                "fn m(r: &Registry) { r.counter(\"serve.shed\"); r.gauge(\"serve.inflight\"); }",
            )],
            "| `serve.shed` | counter |\n",
            "",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/serve/src/obs.rs");
        assert!(out[0].message.contains("`serve.inflight`"));
    }

    #[test]
    fn stale_metric_anchors_at_design_md() {
        let out = findings(
            &[("crates/serve/src/obs.rs", "fn m(r: &Registry) { r.counter(\"serve.shed\"); }")],
            "| `serve.shed` | counter |\n| `serve.gone` | counter |\n",
            "",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "DESIGN.md");
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains("`serve.gone`"));
    }

    #[test]
    fn error_codes_and_prefixes_diff_both_ways() {
        let files = [
            (
                "crates/serve/src/error.rs",
                "fn e() { Self::new(\"http.timeout\", 408, \"m\"); }",
            ),
            ("src/error.rs", "fn d(f: &mut F, e: &E) { write!(f, \"model: {e}\") }"),
        ];
        let out = findings(
            &files,
            "| `http.timeout` | 408 |\n| `model:` | facade |\n",
            "",
        );
        assert!(out.is_empty(), "{out:?}");
        let out = findings(&files, "| `http.timeout` | 408 |\n| `device:` | facade |\n", "");
        assert_eq!(out.len(), 2, "stale `device:` and undocumented `model:`: {out:?}");
    }

    #[test]
    fn flag_drift_both_ways() {
        let files = [(
            "crates/lint/src/main.rs",
            "fn p(a: &str) { match a { \"--json\" => {} \"--sarif\" => {} _ => {} } }",
        )];
        let clean = findings(&files, "", "| `--json` | JSON out |\n| `--sarif` | SARIF out |\n");
        assert!(clean.is_empty(), "{clean:?}");
        let out = findings(&files, "", "| `--json` | JSON out |\n| `--gone` | removed |\n");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|d| d.file == "README.md" && d.message.contains("`--gone`")));
        assert!(out
            .iter()
            .any(|d| d.file == "crates/lint/src/main.rs" && d.message.contains("`--sarif`")));
    }

    #[test]
    fn absent_docs_disable_the_checks() {
        let out = findings(
            &[("crates/serve/src/obs.rs", "fn m(r: &Registry) { r.counter(\"serve.shed\"); }")],
            "",
            "",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
