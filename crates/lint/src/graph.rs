//! The workspace symbol graph.
//!
//! A zero-dependency item indexer over the total lexer: it finds every
//! `fn` definition in the workspace, records the calls, macro
//! invocations, and slice-index sites inside each body, and resolves
//! call names to definitions with best-effort path resolution (module
//! walk-out, `use` aliases, `Self::`/`Type::` impl lookup). The graph is
//! *total* like the lexer underneath it: hostile or malformed input
//! degrades to fewer/unresolved nodes — [`Resolution::External`] — never
//! a panic (see the graph proptests).
//!
//! Resolution is name-based, not type-based. Method calls resolve to the
//! union of same-named impl fns anywhere in the workspace; interprocedural
//! rules must treat that union as an over-approximation. The documented
//! limits live in DESIGN.md §18.

use crate::context::FileContext;
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// Keywords that look like call targets when followed by `(`.
const KEYWORDS: [&str; 28] = [
    "if", "else", "while", "match", "return", "for", "in", "loop", "let", "mut", "ref", "move",
    "as", "use", "pub", "fn", "impl", "mod", "where", "unsafe", "extern", "dyn", "break",
    "continue", "await", "async", "const", "static",
];

/// One function (or extern declaration) found in the workspace.
#[derive(Debug)]
pub struct FnNode {
    /// Bare name, e.g. `append`.
    pub name: String,
    /// Fully qualified `::`-joined path, e.g.
    /// `ucore_project::durability::DurabilityContext::append`.
    pub qualified: String,
    /// Index into the file list handed to [`SymbolGraph::build`].
    pub file: usize,
    /// 1-based line of the `fn` name token.
    pub line: u32,
    /// 1-based column of the `fn` name token.
    pub col: u32,
    /// Module path of the definition site (no impl/type segment).
    pub module: Vec<String>,
    /// Enclosing `impl` type name, when the fn is an associated item.
    pub impl_type: Option<String>,
    /// True for `pub`/`pub(crate)`/… visibility.
    pub is_pub: bool,
    /// True when the definition sits inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// Calls, macro invocations, and method calls inside the body.
    pub calls: Vec<CallSite>,
    /// Slice-index expressions (`expr[...]`) inside the body.
    pub index_sites: Vec<Site>,
}

/// A source position plus the token index it came from.
#[derive(Debug, Clone, Copy)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Index into the owning file's token stream.
    pub token: usize,
}

/// What kind of invocation a call site is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `a::b::f(...)` or bare `f(...)` — path segments as written.
    Path(Vec<String>),
    /// `.m(...)` — receiver type unknown.
    Method(String),
    /// `m!(...)` / `m![...]` / `m!{...}`.
    Macro(String),
}

/// Where a call resolved to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Candidate definitions in the workspace (len 1 = unique; more =
    /// ambiguous method union).
    Internal(Vec<usize>),
    /// Not resolvable to a workspace definition; the callee's bare name.
    External(String),
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// The syntactic shape of the invocation.
    pub kind: CallKind,
    /// Position of the callee name token.
    pub site: Site,
    /// True when the first code token after the opening `(` is not `)`.
    pub has_args: bool,
    /// Best-effort resolution to workspace definitions.
    pub resolved: Resolution,
}

impl CallSite {
    /// The bare callee name (last path segment, method, or macro name).
    pub fn callee_name(&self) -> &str {
        match &self.kind {
            CallKind::Path(segs) => segs.last().map_or("", String::as_str),
            CallKind::Method(m) | CallKind::Macro(m) => m,
        }
    }
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct SymbolGraph {
    /// All function nodes, in file-then-position order.
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qualified: BTreeMap<String, Vec<usize>>,
}

/// Per-file import table: alias → full path segments.
#[derive(Debug, Default)]
struct Imports {
    map: BTreeMap<String, Vec<String>>,
}

impl SymbolGraph {
    /// Builds the graph over already-lexed files. `files[i]` must be the
    /// context whose index call sites refer to via `FnNode::file`.
    pub fn build(files: &[FileContext<'_>]) -> Self {
        let mut graph = SymbolGraph::default();
        let mut imports: Vec<Imports> = Vec::with_capacity(files.len());
        for (file_idx, ctx) in files.iter().enumerate() {
            let imp = index_file(&mut graph, file_idx, ctx);
            imports.push(imp);
        }
        for (id, node) in graph.fns.iter().enumerate() {
            graph.by_name.entry(node.name.clone()).or_default().push(id);
            graph.by_qualified.entry(node.qualified.clone()).or_default().push(id);
        }
        graph.resolve_calls(&imports);
        graph
    }

    /// All definitions with the bare name `name`.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// All definitions with the fully qualified path `path`.
    pub fn fns_qualified(&self, path: &str) -> &[usize] {
        self.by_qualified.get(path).map_or(&[], Vec::as_slice)
    }

    /// The node that contains token `token` of file `file`, if any.
    pub fn enclosing_fn(&self, file: usize, token: usize) -> Option<usize> {
        // Bodies nest; the innermost (last-starting) match wins.
        let mut best: Option<usize> = None;
        for (id, node) in self.fns.iter().enumerate() {
            if node.file != file {
                continue;
            }
            let holds = node
                .calls
                .iter()
                .map(|c| c.site.token)
                .chain(node.index_sites.iter().map(|s| s.token))
                .any(|t| t == token);
            if holds {
                best = Some(id);
            }
        }
        best
    }

    /// Resolves an identifier used as a *value* (e.g. a handler passed to
    /// `signal`) from inside `from_fn`'s scope.
    pub fn resolve_value_name(&self, from_fn: usize, name: &str) -> Vec<usize> {
        let module = self.fns[from_fn].module.clone();
        let walked = self.resolve_path_from(&[name.to_string()], &module, None);
        if !walked.is_empty() {
            return walked;
        }
        let all = self.fns_named(name);
        if all.len() == 1 {
            return all.to_vec();
        }
        Vec::new()
    }

    fn resolve_calls(&mut self, imports: &[Imports]) {
        // Resolve against an immutable snapshot of the definition tables.
        let mut resolved: Vec<Vec<Resolution>> = Vec::with_capacity(self.fns.len());
        for node in &self.fns {
            let imp = &imports[node.file];
            let mut per_call = Vec::with_capacity(node.calls.len());
            for call in &node.calls {
                per_call.push(self.resolve_call(call, node, imp));
            }
            resolved.push(per_call);
        }
        for (node, per_call) in self.fns.iter_mut().zip(resolved) {
            for (call, res) in node.calls.iter_mut().zip(per_call) {
                call.resolved = res;
            }
        }
    }

    fn resolve_call(&self, call: &CallSite, from: &FnNode, imp: &Imports) -> Resolution {
        match &call.kind {
            CallKind::Macro(name) => Resolution::External(name.clone()),
            CallKind::Method(name) => {
                let ids = self.fns_named(name);
                let methods: Vec<usize> =
                    ids.iter().copied().filter(|&id| self.fns[id].impl_type.is_some()).collect();
                if methods.is_empty() {
                    Resolution::External(name.clone())
                } else {
                    Resolution::Internal(methods)
                }
            }
            CallKind::Path(segs) => {
                let ids = self.resolve_path(segs, from, imp);
                if ids.is_empty() {
                    Resolution::External(
                        segs.last().cloned().unwrap_or_default(),
                    )
                } else {
                    Resolution::Internal(ids)
                }
            }
        }
    }

    fn resolve_path(&self, segs: &[String], from: &FnNode, imp: &Imports) -> Vec<usize> {
        if segs.len() == 1 {
            // `Self::…`-free bare call: module walk-out, then imports,
            // then a unique bare-name match anywhere in the workspace.
            let name = &segs[0];
            let walked = self.resolve_path_from(segs, &from.module, None);
            if !walked.is_empty() {
                return walked;
            }
            if let Some(full) = imp.map.get(name) {
                let ids = self.resolve_absolute(full);
                if !ids.is_empty() {
                    return ids;
                }
            }
            let all = self.fns_named(name);
            if all.len() == 1 {
                return all.to_vec();
            }
            return Vec::new();
        }
        // Normalize crate/self/super against the caller's module.
        let mut norm: Vec<String> = Vec::new();
        let mut rest = segs;
        match segs[0].as_str() {
            "crate" => {
                norm.push(from.module.first().cloned().unwrap_or_default());
                rest = &segs[1..];
            }
            "self" => {
                norm.extend(from.module.iter().cloned());
                rest = &segs[1..];
            }
            "super" => {
                let mut m = from.module.clone();
                m.pop();
                norm.extend(m);
                rest = &segs[1..];
            }
            "Self" => {
                if let Some(ty) = &from.impl_type {
                    norm.extend(from.module.iter().cloned());
                    norm.push(ty.clone());
                    rest = &segs[1..];
                }
            }
            _ => {}
        }
        if !norm.is_empty() || rest.len() != segs.len() {
            norm.extend(rest.iter().cloned());
            let ids = self.resolve_absolute(&norm);
            if !ids.is_empty() {
                return ids;
            }
            return Vec::new();
        }
        // Absolute as written (covers `ucore_project::durability::f`).
        let ids = self.resolve_absolute(segs);
        if !ids.is_empty() {
            return ids;
        }
        // First segment may be a `use` alias.
        if let Some(full) = imp.map.get(&segs[0]) {
            let mut expanded = full.clone();
            expanded.extend(segs[1..].iter().cloned());
            let ids = self.resolve_absolute(&expanded);
            if !ids.is_empty() {
                return ids;
            }
        }
        // `Type::method` relative to the caller's module chain.
        let walked = self.resolve_path_from(segs, &from.module, None);
        if !walked.is_empty() {
            return walked;
        }
        // Last resort: a workspace-unique suffix match on the final two
        // segments (catches `Type::new` for types imported by glob).
        if segs.len() >= 2 {
            let suffix = format!("{}::{}", segs[segs.len() - 2], segs[segs.len() - 1]);
            let mut hits = Vec::new();
            for (q, ids) in &self.by_qualified {
                if q.ends_with(&suffix)
                    && (q.len() == suffix.len()
                        || q.as_bytes()[q.len() - suffix.len() - 1] == b':')
                {
                    hits.extend(ids.iter().copied());
                }
            }
            if !hits.is_empty() {
                return hits;
            }
        }
        Vec::new()
    }

    /// Tries `module[..k] ++ segs` for every prefix of the module chain,
    /// innermost first.
    fn resolve_path_from(
        &self,
        segs: &[String],
        module: &[String],
        _impl_type: Option<&str>,
    ) -> Vec<usize> {
        for k in (0..=module.len()).rev() {
            let mut cand: Vec<String> = module[..k].to_vec();
            cand.extend(segs.iter().cloned());
            let ids = self.resolve_absolute(&cand);
            if !ids.is_empty() {
                return ids;
            }
        }
        Vec::new()
    }

    fn resolve_absolute(&self, segs: &[String]) -> Vec<usize> {
        self.fns_qualified(&segs.join("::")).to_vec()
    }
}

/// Derives a file's module path from its workspace-relative path.
///
/// `crates/project/src/durability.rs` → `[ucore_project, durability]`;
/// `src/error.rs` (the facade crate) → `[ucore, error]`; binaries get
/// their own `bin_<name>` namespace.
pub fn module_path_of(rel_path: &str) -> Vec<String> {
    let (crate_name, tail) = if let Some(rest) = rel_path.strip_prefix("crates/") {
        let Some((dir, tail)) = rest.split_once("/src/") else {
            return vec![rel_path.replace(['/', '.'], "_")];
        };
        (format!("ucore_{}", dir.replace('-', "_")), tail)
    } else if let Some(tail) = rel_path.strip_prefix("src/") {
        ("ucore".to_string(), tail)
    } else {
        return vec![rel_path.replace(['/', '.'], "_")];
    };
    if let Some(bin) = tail.strip_prefix("bin/") {
        let name = bin.strip_suffix(".rs").unwrap_or(bin).replace('/', "_");
        return vec![format!("bin_{name}")];
    }
    let mut path = vec![crate_name];
    if tail == "lib.rs" || tail == "main.rs" {
        return path;
    }
    let stem = tail.strip_suffix(".rs").unwrap_or(tail);
    for seg in stem.split('/') {
        if seg != "mod" {
            path.push(seg.to_string());
        }
    }
    path
}

/// Scans one file: records fn definitions with their calls and index
/// sites into `graph`, and returns the file's import table.
fn index_file(graph: &mut SymbolGraph, file_idx: usize, ctx: &FileContext<'_>) -> Imports {
    let file_module = module_path_of(&ctx.rel_path);
    let mut imports = Imports::default();
    // (name, depth-inside) stacks for inline modules and impl blocks.
    let mut mod_stack: Vec<(String, i64)> = Vec::new();
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    let mut fn_stack: Vec<(usize, i64)> = Vec::new();
    let mut depth = 0i64;

    let toks = &ctx.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        match (t.kind, t.text) {
            (TokenKind::Punct, "{") => depth += 1,
            (TokenKind::Punct, "}") => {
                depth -= 1;
                while mod_stack.last().is_some_and(|&(_, d)| d > depth) {
                    mod_stack.pop();
                }
                while impl_stack.last().is_some_and(|&(_, d)| d > depth) {
                    impl_stack.pop();
                }
                while fn_stack.last().is_some_and(|&(_, d)| d > depth) {
                    fn_stack.pop();
                }
            }
            (TokenKind::Ident, "use") if fn_stack.is_empty() => {
                i = parse_use(ctx, i + 1, &mut imports);
                continue;
            }
            (TokenKind::Ident, "mod") => {
                if let Some(ni) = ctx.next_code(i) {
                    if toks[ni].kind == TokenKind::Ident {
                        if let Some(bi) = ctx.next_code(ni) {
                            if ctx.is_punct(bi, "{") {
                                mod_stack.push((toks[ni].text.to_string(), depth + 1));
                                depth += 1;
                                i = bi + 1;
                                continue;
                            }
                        }
                    }
                }
            }
            (TokenKind::Ident, "impl") => {
                if let Some((ty, body)) = parse_impl_header(ctx, i) {
                    impl_stack.push((ty, depth + 1));
                    depth += 1;
                    i = body + 1;
                    continue;
                }
            }
            (TokenKind::Ident, "fn") => {
                if let Some(ni) = ctx.next_code(i) {
                    if toks[ni].kind == TokenKind::Ident {
                        let mut module = file_module.clone();
                        module.extend(mod_stack.iter().map(|(m, _)| m.clone()));
                        let impl_type = impl_stack.last().map(|(t, _)| t.clone());
                        let mut qualified = module.clone();
                        if let Some(ty) = &impl_type {
                            qualified.push(ty.clone());
                        }
                        qualified.push(toks[ni].text.to_string());
                        let node = FnNode {
                            name: toks[ni].text.to_string(),
                            qualified: qualified.join("::"),
                            file: file_idx,
                            line: toks[ni].line,
                            col: toks[ni].col,
                            module,
                            impl_type,
                            is_pub: has_pub_before(ctx, i),
                            in_test: ctx.in_test[ni],
                            calls: Vec::new(),
                            index_sites: Vec::new(),
                        };
                        let id = graph.fns.len();
                        graph.fns.push(node);
                        // Find the body `{` (or `;` for declarations).
                        if let Some(body) = fn_body_open(ctx, ni) {
                            fn_stack.push((id, depth + 1));
                            depth += 1;
                            i = body + 1;
                            continue;
                        }
                        i = ni + 1;
                        continue;
                    }
                }
            }
            (TokenKind::Ident, name) => {
                if let Some(&(owner, _)) = fn_stack.last() {
                    record_call_or_skip(ctx, i, name, owner, graph);
                }
            }
            (TokenKind::Punct, "[") => {
                if let Some(&(owner, _)) = fn_stack.last() {
                    if is_index_open(ctx, i) {
                        graph.fns[owner].index_sites.push(Site {
                            line: t.line,
                            col: t.col,
                            token: i,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    imports
}

/// Records the call at ident token `i` into `graph.fns[owner]`, unless
/// the ident is a keyword, definition name, or constructor.
fn record_call_or_skip(
    ctx: &FileContext<'_>,
    i: usize,
    name: &str,
    owner: usize,
    graph: &mut SymbolGraph,
) {
    if KEYWORDS.contains(&name) {
        return;
    }
    let t = &ctx.tokens[i];
    let next = ctx.next_code(i);
    let prev = ctx.prev_code(i);
    let site = Site { line: t.line, col: t.col, token: i };
    // Macro invocation: `name!(` / `name![` / `name!{`.
    if let Some(n1) = next {
        if ctx.is_punct(n1, "!") {
            if let Some(n2) = ctx.next_code(n1) {
                if ctx.is_punct(n2, "(") || ctx.is_punct(n2, "[") || ctx.is_punct(n2, "{") {
                    graph.fns[owner].calls.push(CallSite {
                        kind: CallKind::Macro(name.to_string()),
                        site,
                        has_args: ctx.next_code(n2).is_some_and(|n3| {
                            !ctx.is_punct(n3, ")") && !ctx.is_punct(n3, "]") && !ctx.is_punct(n3, "}")
                        }),
                        resolved: Resolution::External(name.to_string()),
                    });
                }
            }
            return;
        }
    }
    // Otherwise a call needs `name(`.
    let Some(n1) = next else { return };
    if !ctx.is_punct(n1, "(") {
        return;
    }
    let has_args = ctx.next_code(n1).is_some_and(|n2| !ctx.is_punct(n2, ")"));
    // Method call: preceded by `.`.
    if prev.is_some_and(|p| ctx.is_punct(p, ".")) {
        graph.fns[owner].calls.push(CallSite {
            kind: CallKind::Method(name.to_string()),
            site,
            has_args,
            resolved: Resolution::External(name.to_string()),
        });
        return;
    }
    // Skip definition names (`fn name(`) — handled by the fn indexer —
    // and CamelCase constructors / tuple variants (`Some(`, `Vec(`).
    if prev.is_some_and(|p| ctx.is_ident(p, "fn")) {
        return;
    }
    if name.chars().next().is_some_and(char::is_uppercase) {
        return;
    }
    // Collect leading `seg::` path segments by walking backwards.
    let mut segs = vec![name.to_string()];
    let mut at = i;
    while let Some(p) = ctx.prev_code(at) {
        if !ctx.is_punct(p, "::") {
            break;
        }
        let Some(pp) = ctx.prev_code(p) else { break };
        let pt = &ctx.tokens[pp];
        if pt.kind != TokenKind::Ident {
            break; // `<T as Trait>::f` — keep the partial path.
        }
        segs.insert(0, pt.text.to_string());
        at = pp;
    }
    graph.fns[owner].calls.push(CallSite {
        kind: CallKind::Path(segs),
        site,
        has_args,
        resolved: Resolution::External(name.to_string()),
    });
}

/// True when the `[` at token `i` indexes an expression (follows an
/// ident, `)`, or `]`) rather than opening an array/attribute.
pub(crate) fn is_index_open(ctx: &FileContext<'_>, i: usize) -> bool {
    let Some(p) = ctx.prev_code(i) else { return false };
    let t = &ctx.tokens[p];
    match t.kind {
        TokenKind::Ident => !KEYWORDS.contains(&t.text) && t.text != "Self",
        TokenKind::Punct => t.text == ")" || t.text == "]",
        _ => false,
    }
}

/// True when a visibility modifier precedes the `fn` keyword at `i`.
fn has_pub_before(ctx: &FileContext<'_>, i: usize) -> bool {
    // Walk back across `const`/`async`/`unsafe`/`extern "C"` qualifiers.
    let mut at = i;
    for _ in 0..8 {
        let Some(p) = ctx.prev_code(at) else { return false };
        let t = &ctx.tokens[p];
        match (t.kind, t.text) {
            (TokenKind::Ident, "pub") => return true,
            (TokenKind::Ident, "const" | "async" | "unsafe" | "extern")
            | (TokenKind::Str, _)
            | (TokenKind::Punct, ")") => at = p,
            (TokenKind::Punct, "(") => at = p,
            (TokenKind::Ident, "crate" | "super" | "self") => at = p,
            _ => return false,
        }
    }
    false
}

/// Finds the body-opening `{` of the fn whose name token is `ni`;
/// `None` for body-less declarations (`fn f();` in extern blocks).
fn fn_body_open(ctx: &FileContext<'_>, ni: usize) -> Option<usize> {
    let mut paren = 0i64;
    let mut at = ni;
    while let Some(n) = ctx.next_code(at) {
        let t = &ctx.tokens[n];
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" if paren == 0 => return None,
                "{" if paren == 0 => return Some(n),
                _ => {}
            }
        }
        at = n;
    }
    None
}

/// Parses an `impl` header starting at token `i`; returns the type name
/// and the body-opening `{` index. `None` when no body is found.
fn parse_impl_header(ctx: &FileContext<'_>, i: usize) -> Option<(String, usize)> {
    // Collect tokens up to the body `{`, tracking `for`.
    let mut at = i;
    let mut angle = 0i64;
    let mut after_for = false;
    let mut first_ident: Option<String> = None;
    let mut for_ident: Option<String> = None;
    while let Some(n) = ctx.next_code(at) {
        let t = &ctx.tokens[n];
        match (t.kind, t.text) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => angle -= 1,
            (TokenKind::Punct, "{") if angle <= 0 => {
                let ty = for_ident.or(first_ident)?;
                return Some((ty, n));
            }
            (TokenKind::Punct, ";") if angle <= 0 => return None,
            (TokenKind::Ident, "for") if angle <= 0 => after_for = true,
            (TokenKind::Ident, "where") if angle <= 0 => {
                // Type position is over; keep scanning for the `{`.
            }
            (TokenKind::Ident, name) if angle <= 0 => {
                if after_for {
                    if for_ident.is_none() && name.chars().next().is_some_and(char::is_uppercase)
                    {
                        for_ident = Some(name.to_string());
                    }
                } else if first_ident.is_none()
                    && name.chars().next().is_some_and(char::is_uppercase)
                {
                    first_ident = Some(name.to_string());
                }
            }
            _ => {}
        }
        at = n;
    }
    None
}

/// Parses a `use` declaration starting right after the `use` keyword;
/// returns the token index to continue scanning from (past the `;`).
fn parse_use(ctx: &FileContext<'_>, start: usize, imports: &mut Imports) -> usize {
    // Find the terminating `;` first so malformed trees can't wedge us.
    let mut end = start;
    while end < ctx.tokens.len() {
        let t = &ctx.tokens[end];
        if !t.is_comment() && t.kind == TokenKind::Punct && t.text == ";" {
            break;
        }
        end += 1;
    }
    let code: Vec<usize> = (start..end.min(ctx.tokens.len()))
        .filter(|&k| !ctx.tokens[k].is_comment())
        .collect();
    parse_use_tree(ctx, &code, &mut 0, &mut Vec::new(), imports);
    end + 1
}

/// Recursively parses one use-tree; `pos` indexes into `code`.
fn parse_use_tree(
    ctx: &FileContext<'_>,
    code: &[usize],
    pos: &mut usize,
    prefix: &mut Vec<String>,
    imports: &mut Imports,
) {
    let base_len = prefix.len();
    while let Some(&k) = code.get(*pos) {
        let t = &ctx.tokens[k];
        match (t.kind, t.text) {
            (TokenKind::Ident, "as") => {
                *pos += 1;
                if let Some(&ak) = code.get(*pos) {
                    if ctx.tokens[ak].kind == TokenKind::Ident {
                        imports
                            .map
                            .insert(ctx.tokens[ak].text.to_string(), prefix.clone());
                        *pos += 1;
                    }
                }
                break;
            }
            (TokenKind::Ident, seg) => {
                prefix.push(seg.to_string());
                *pos += 1;
            }
            (TokenKind::Punct, "::") => {
                *pos += 1;
                if let Some(&nk) = code.get(*pos) {
                    if ctx.is_punct(nk, "{") {
                        *pos += 1;
                        // Nested group: each arm extends this prefix.
                        loop {
                            let before = *pos;
                            parse_use_tree(ctx, code, pos, prefix, imports);
                            match code.get(*pos).map(|&k| ctx.tokens[k].text) {
                                Some(",") => *pos += 1,
                                Some("}") => {
                                    *pos += 1;
                                    break;
                                }
                                _ if *pos == before => {
                                    *pos += 1; // forward progress on junk
                                }
                                _ => {}
                            }
                            if *pos >= code.len() {
                                break;
                            }
                        }
                        prefix.truncate(base_len);
                        return;
                    }
                    if ctx.is_punct(nk, "*") {
                        *pos += 1; // glob: not tracked
                        break;
                    }
                }
            }
            (TokenKind::Punct, "," | "}") => break,
            _ => {
                *pos += 1;
            }
        }
    }
    // A plain path imports its last segment under its own name.
    if prefix.len() > base_len {
        if let Some(last) = prefix.last().cloned() {
            if last != "self" {
                imports.map.insert(last, prefix.clone());
            } else {
                // `use a::b::{self}` imports `b`.
                let without: Vec<String> = prefix[..prefix.len() - 1].to_vec();
                if let Some(name) = without.last().cloned() {
                    imports.map.insert(name, without);
                }
            }
        }
    }
    prefix.truncate(base_len);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> (SymbolGraph, Vec<String>) {
        let ctxs: Vec<FileContext<'_>> =
            files.iter().map(|(p, s)| FileContext::new(*p, s)).collect();
        let g = SymbolGraph::build(&ctxs);
        let names = g.fns.iter().map(|f| f.qualified.clone()).collect();
        (g, names)
    }

    #[test]
    fn module_paths_from_rel_paths() {
        assert_eq!(module_path_of("crates/project/src/durability.rs"), ["ucore_project", "durability"]);
        assert_eq!(module_path_of("crates/core/src/lib.rs"), ["ucore_core"]);
        assert_eq!(module_path_of("src/error.rs"), ["ucore", "error"]);
        assert_eq!(module_path_of("crates/bench/src/bin/repro.rs"), ["bin_repro"]);
        assert_eq!(module_path_of("crates/x/src/a/mod.rs"), ["ucore_x", "a"]);
        assert_eq!(module_path_of("crates/x/src/a/b.rs"), ["ucore_x", "a", "b"]);
    }

    #[test]
    fn indexes_fns_with_qualified_names() {
        let (_, names) = graph_of(&[(
            "crates/core/src/cache.rs",
            "pub struct C;\nimpl C { pub fn get(&self) {} }\nfn free() {}\nmod inner { fn deep() {} }",
        )]);
        assert_eq!(
            names,
            vec![
                "ucore_core::cache::C::get",
                "ucore_core::cache::free",
                "ucore_core::cache::inner::deep",
            ]
        );
    }

    #[test]
    fn resolves_bare_call_in_same_module() {
        let (g, _) = graph_of(&[(
            "crates/core/src/a.rs",
            "fn callee() {}\nfn caller() { callee(); }",
        )]);
        let caller = &g.fns[1];
        assert_eq!(caller.calls.len(), 1);
        assert_eq!(caller.calls[0].resolved, Resolution::Internal(vec![0]));
    }

    #[test]
    fn resolves_cross_crate_via_use() {
        let (g, _) = graph_of(&[
            ("crates/core/src/lib.rs", "pub fn shared() {}"),
            (
                "crates/project/src/lib.rs",
                "use ucore_core::shared;\nfn go() { shared(); }",
            ),
        ]);
        let go = &g.fns[1];
        assert_eq!(go.calls[0].resolved, Resolution::Internal(vec![0]));
    }

    #[test]
    fn resolves_absolute_and_aliased_paths() {
        let (g, _) = graph_of(&[
            ("crates/core/src/units.rs", "pub fn conv() {}"),
            (
                "crates/project/src/lib.rs",
                "use ucore_core::units as u;\nfn a() { ucore_core::units::conv(); }\nfn b() { u::conv(); }",
            ),
        ]);
        assert_eq!(g.fns[1].calls[0].resolved, Resolution::Internal(vec![0]));
        assert_eq!(g.fns[2].calls[0].resolved, Resolution::Internal(vec![0]));
    }

    #[test]
    fn method_calls_resolve_to_union() {
        let (g, _) = graph_of(&[
            ("crates/a/src/lib.rs", "struct X; impl X { fn go(&self) {} }"),
            ("crates/b/src/lib.rs", "struct Y; impl Y { fn go(&self) {} }"),
            ("crates/c/src/lib.rs", "fn f(v: V) { v.go(); }"),
        ]);
        let f = &g.fns[2];
        assert_eq!(f.calls[0].resolved, Resolution::Internal(vec![0, 1]));
    }

    #[test]
    fn unresolved_degrades_to_external() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn f() { std::fs::read(\"x\"); nothing_known(); }",
        )]);
        let f = &g.fns[0];
        assert_eq!(f.calls[0].resolved, Resolution::External("read".into()));
        assert_eq!(f.calls[1].resolved, Resolution::External("nothing_known".into()));
    }

    #[test]
    fn self_and_super_resolve() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn top() {}\nmod m { fn f() { super::top(); self::g(); } fn g() {} }",
        )]);
        let f = &g.fns[1];
        assert_eq!(f.calls[0].resolved, Resolution::Internal(vec![0]));
        assert_eq!(f.calls[1].resolved, Resolution::Internal(vec![2]));
    }

    #[test]
    fn type_method_and_self_method_resolve() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "struct T;\nimpl T { fn new() -> T { T }\n fn go() { Self::new(); T::new(); } }",
        )]);
        let go = &g.fns[1];
        assert_eq!(go.calls[0].resolved, Resolution::Internal(vec![0]));
        assert_eq!(go.calls[1].resolved, Resolution::Internal(vec![0]));
    }

    #[test]
    fn macros_and_index_sites_recorded() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn f(v: &[u8]) { panic!(\"x\"); let _ = v[0]; }",
        )]);
        let f = &g.fns[0];
        assert_eq!(f.calls[0].kind, CallKind::Macro("panic".into()));
        assert_eq!(f.index_sites.len(), 1);
    }

    #[test]
    fn constructors_and_keywords_are_not_calls() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn f() { let x = Some(1); if (x.is_some()) { return; } }",
        )]);
        let f = &g.fns[0];
        // Only the `.is_some()` method call is recorded.
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].kind, CallKind::Method("is_some".into()));
    }

    #[test]
    fn extern_decls_are_leaf_nodes() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "extern \"C\" { fn fsync(fd: i32) -> i32; }\nfn f() { unsafe { fsync(3); } }",
        )]);
        assert_eq!(g.fns[0].name, "fsync");
        assert!(g.fns[0].calls.is_empty());
        assert_eq!(g.fns[1].calls[0].resolved, Resolution::Internal(vec![0]));
    }

    #[test]
    fn nested_use_groups_and_glob() {
        let (g, _) = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn one() {}\npub fn two() {}"),
            (
                "crates/b/src/lib.rs",
                "use ucore_a::{one, two as deux};\nuse ucore_a::*;\nfn f() { one(); deux(); }",
            ),
        ]);
        let f = &g.fns[2];
        assert_eq!(f.calls[0].resolved, Resolution::Internal(vec![0]));
        assert_eq!(f.calls[1].resolved, Resolution::Internal(vec![1]));
    }

    #[test]
    fn hostile_input_never_panics() {
        for src in ["fn", "fn (", "impl {", "use ::;", "mod {", "fn f(", "impl < for {", "use a::{b", "fn f() { g(; }"] {
            let ctx = FileContext::new("crates/a/src/lib.rs", src);
            let _ = SymbolGraph::build(std::slice::from_ref(&ctx));
        }
    }

    #[test]
    fn in_test_fns_are_marked() {
        let (g, _) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod t { fn check() {} }",
        )]);
        assert!(!g.fns[0].in_test);
        assert!(g.fns[1].in_test);
    }
}
