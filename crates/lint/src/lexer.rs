//! A small hand-rolled Rust lexer.
//!
//! The lint rules need exactly enough lexical structure to tell *code*
//! apart from *comments and literals*: a `==` inside a string, a
//! `unwrap` inside a doc example, or an `unsafe` inside a nested block
//! comment must never produce a finding. The lexer therefore recognizes
//! the full Rust literal grammar — nested block comments, raw strings
//! with arbitrary `#` fences, byte/C string prefixes, char literals
//! containing `"` or `'`, lifetimes — but deliberately performs no
//! parsing beyond tokens. It never fails: unterminated or malformed
//! input degrades to [`TokenKind::Unknown`] tokens or to a literal that
//! extends to end-of-file, and lexing arbitrary bytes (after lossy
//! UTF-8 conversion) is guaranteed panic-free (see the proptest suite).

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// An integer literal, with any suffix.
    Int,
    /// A float literal, with any suffix.
    Float,
    /// A string literal: `"…"`, `b"…"`, or `c"…"`.
    Str,
    /// A raw string literal: `r"…"`, `r#"…"#`, `br##"…"##`, `cr"…"`.
    RawStr,
    /// A char or byte-char literal: `'x'`, `b'\n'`, `'"'`.
    Char,
    /// A non-doc line comment `// …` (text includes the slashes).
    LineComment,
    /// A doc comment: `/// …`, `//! …`, `/** … */`, or `/*! … */`.
    DocComment,
    /// A non-doc block comment `/* … */`, nesting handled.
    BlockComment,
    /// Punctuation. Multi-char operators the rules care about (`==`,
    /// `!=`, `->`, `::`, `..`, `=>`, `<=`, `>=`, `&&`, `||`) are single
    /// tokens; everything else is one char per token.
    Punct,
    /// A byte sequence the lexer does not understand; skipped by rules.
    Unknown,
}

/// One token with its source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The lexical class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in chars) of the token's first byte.
    pub col: u32,
}

impl<'a> Token<'a> {
    /// True for comment tokens of any flavor.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
        )
    }
}

/// Multi-char operators emitted as single tokens, longest first.
const OPERATORS: [&str; 11] =
    ["..=", "==", "!=", "->", "=>", "::", "..", "<=", ">=", "&&", "||"];

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, chars: src.char_indices().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_offset(&self) -> usize {
        self.chars.get(self.pos).map_or(self.src.len(), |&(o, _)| o)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes `n` chars (saturating at end of input).
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.byte_offset()..].starts_with(s)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens. Total: every non-whitespace byte of the
/// input is covered by exactly one token, and the function never panics
/// regardless of input (malformed constructs become [`TokenKind::Unknown`]
/// or run to end-of-file).
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    // A leading shebang line (`#!/usr/bin/env …`) holds arbitrary shell
    // text; a stray `"` or `'` in it must not open a literal that
    // desyncs the whole file. `#![…]` inner attributes are not shebangs.
    if src.starts_with("#!") && !src.starts_with("#![") {
        let (line, col) = (cur.line, cur.col);
        while cur.peek(0).is_some_and(|c| c != '\n') {
            cur.bump();
        }
        out.push(Token {
            kind: TokenKind::LineComment,
            text: &src[..cur.byte_offset()],
            line,
            col,
        });
    }
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let start_byte = cur.byte_offset();
        let (line, col) = (cur.line, cur.col);
        let kind = lex_one(&mut cur, c);
        // Defensive: guarantee forward progress even if a lexer case
        // consumed nothing, so arbitrary input can never loop forever.
        if cur.byte_offset() == start_byte {
            cur.bump();
        }
        let end_byte = cur.byte_offset();
        out.push(Token { kind, text: &src[start_byte..end_byte], line, col });
    }
    out
}

/// Lexes the single token starting at `c`, advancing the cursor.
fn lex_one(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    // Comments before general punctuation.
    if cur.starts_with("//") {
        return lex_line_comment(cur);
    }
    if cur.starts_with("/*") {
        return lex_block_comment(cur);
    }
    // String-ish prefixes before identifiers: r"…", r#"…"#, br"…",
    // cr#"…"#, b"…", c"…", b'…'.
    if let Some(kind) = lex_prefixed_literal(cur) {
        return kind;
    }
    if is_ident_start(c) {
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokenKind::Ident;
    }
    if c.is_ascii_digit() {
        return lex_number(cur);
    }
    if c == '\'' {
        return lex_quote(cur);
    }
    if c == '"' {
        return lex_string(cur);
    }
    for op in OPERATORS {
        if cur.starts_with(op) {
            cur.bump_n(op.chars().count());
            return TokenKind::Punct;
        }
    }
    cur.bump();
    if c.is_ascii_punctuation() {
        TokenKind::Punct
    } else {
        TokenKind::Unknown
    }
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    let doc = cur.starts_with("///") && !cur.starts_with("////") || cur.starts_with("//!");
    while cur.peek(0).is_some_and(|c| c != '\n') {
        cur.bump();
    }
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::LineComment
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    let doc = (cur.starts_with("/**") && !cur.starts_with("/***") && !cur.starts_with("/**/"))
        || cur.starts_with("/*!");
    cur.bump_n(2);
    let mut depth = 1usize;
    while depth > 0 {
        if cur.starts_with("/*") {
            cur.bump_n(2);
            depth += 1;
        } else if cur.starts_with("*/") {
            cur.bump_n(2);
            depth -= 1;
        } else if cur.bump().is_none() {
            break; // unterminated: comment runs to EOF
        }
    }
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::BlockComment
    }
}

/// Handles `r`/`b`/`c`-prefixed string literals; returns `None` when the
/// upcoming ident is not actually a literal prefix.
fn lex_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    for prefix in ["br", "cr", "r"] {
        if cur.starts_with(prefix) {
            // Count `#` fence after the prefix; require a `"` to treat
            // it as a raw string (otherwise `r` is an ident, e.g. in
            // `r#ident` raw identifiers, handled below).
            let plen = prefix.len();
            let mut hashes = 0usize;
            while cur.peek(plen + hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(plen + hashes) == Some('"') {
                cur.bump_n(plen + hashes + 1);
                lex_raw_body(cur, hashes);
                return Some(TokenKind::RawStr);
            }
            if prefix == "r" && hashes > 0 && cur.peek(plen + hashes).is_some_and(is_ident_start)
            {
                // Raw identifier `r#ident`.
                cur.bump_n(plen + hashes);
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                return Some(TokenKind::Ident);
            }
        }
    }
    for prefix in ["b\"", "c\""] {
        if cur.starts_with(prefix) {
            cur.bump(); // the prefix letter; lex_string consumes the `"`
            lex_string(cur);
            return Some(TokenKind::Str);
        }
    }
    if cur.starts_with("b'") {
        cur.bump(); // the `b`; lex_quote consumes the quote onward
        return Some(lex_quote(cur));
    }
    None
}

/// Consumes a raw-string body up to `"` followed by `hashes` `#`s (or EOF).
fn lex_raw_body(cur: &mut Cursor<'_>, hashes: usize) {
    loop {
        match cur.bump() {
            None => return, // unterminated: runs to EOF
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

/// Consumes a `"…"` string with escapes; the cursor is on the `"`.
fn lex_string(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump();
    loop {
        match cur.bump() {
            None | Some('"') => return TokenKind::Str,
            Some('\\') => {
                cur.bump(); // the escaped char, e.g. `\"` or `\\`
            }
            Some(_) => {}
        }
    }
}

/// Disambiguates `'a` (lifetime) from `'x'`/`'\''` (char literal); the
/// cursor is on the opening `'`.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump();
    match cur.peek(0) {
        Some('\\') => finish_char_body(cur),
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char; `'a` (no closing quote after the ident
            // run) is a lifetime; `'ab'` is consumed as an (invalid)
            // char literal rather than panicking.
            let mut n = 0usize;
            while cur.peek(n).is_some_and(is_ident_continue) {
                n += 1;
            }
            if cur.peek(n) == Some('\'') {
                cur.bump_n(n + 1);
                TokenKind::Char
            } else {
                cur.bump_n(n);
                TokenKind::Lifetime
            }
        }
        Some('\'') => {
            // `''` — empty (invalid) char literal; consume both quotes.
            cur.bump();
            TokenKind::Char
        }
        None => TokenKind::Unknown,
        Some(_) => finish_char_body(cur),
    }
}

/// Consumes the remainder of a char/byte-char literal body (after the
/// opening quote), handling escapes like `'\''` and `'\u{7D}'`.
fn finish_char_body(cur: &mut Cursor<'_>) -> TokenKind {
    loop {
        match cur.bump() {
            None | Some('\'') => return TokenKind::Char,
            Some('\\') => {
                cur.bump();
            }
            Some('\n') => return TokenKind::Char, // malformed; don't eat the file
            Some(_) => {}
        }
    }
}

/// Consumes a numeric literal; the cursor is on the first digit.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let radix_prefixed = cur.starts_with("0x")
        || cur.starts_with("0o")
        || cur.starts_with("0b")
        || cur.starts_with("0X")
        || cur.starts_with("0O")
        || cur.starts_with("0B");
    if radix_prefixed {
        cur.bump_n(2);
        while cur.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            cur.bump();
        }
        return TokenKind::Int;
    }
    let mut float = false;
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    // A fractional part only if the dot is NOT `..` (range) and NOT a
    // method/field access like `1.max(2)` or `x.0`.
    if cur.peek(0) == Some('.')
        && cur.peek(1) != Some('.')
        && !cur.peek(1).is_some_and(is_ident_start)
    {
        float = true;
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
    }
    // Exponent: `1e5`, `2.5E-3` — only when digits follow the (signed) e.
    if cur.peek(0).is_some_and(|c| c == 'e' || c == 'E') {
        let sign = usize::from(cur.peek(1).is_some_and(|c| c == '+' || c == '-'));
        if cur.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            cur.bump_n(2 + sign);
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                cur.bump();
            }
        }
    }
    // Suffix (`f64`, `u32`, `usize`, …) decides floatness when explicit.
    if cur.peek(0).is_some_and(is_ident_start) {
        let suffix_start = cur.byte_offset();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        let suffix = &cur.src[suffix_start..cur.byte_offset()];
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("fn a() -> b::C {}"),
            vec![
                (TokenKind::Ident, "fn"),
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
                (TokenKind::Punct, "->"),
                (TokenKind::Ident, "b"),
                (TokenKind::Punct, "::"),
                (TokenKind::Ident, "C"),
                (TokenKind::Punct, "{"),
                (TokenKind::Punct, "}"),
            ]
        );
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        assert_eq!(
            kinds("1.0 1 1..2 1.max(2) 1e5 2.5e-3 3f64 7u32 0xFF x.0"),
            vec![
                (TokenKind::Float, "1.0"),
                (TokenKind::Int, "1"),
                (TokenKind::Int, "1"),
                (TokenKind::Punct, ".."),
                (TokenKind::Int, "2"),
                (TokenKind::Int, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "max"),
                (TokenKind::Punct, "("),
                (TokenKind::Int, "2"),
                (TokenKind::Punct, ")"),
                (TokenKind::Float, "1e5"),
                (TokenKind::Float, "2.5e-3"),
                (TokenKind::Float, "3f64"),
                (TokenKind::Int, "7u32"),
                (TokenKind::Int, "0xFF"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "."),
                (TokenKind::Int, "0"),
            ]
        );
    }

    #[test]
    fn strings_hide_operators() {
        let toks = kinds(r#"let s = "a == b"; s"#);
        assert!(toks.contains(&(TokenKind::Str, r#""a == b""#)));
        assert!(!toks.iter().any(|&(k, t)| k == TokenKind::Punct && t == "=="));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "r#\"quote \" and == inside\"# r\"plain\" br##\"x\"# still\"##";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[1].0, TokenKind::RawStr);
        assert_eq!(toks[2].0, TokenKind::RawStr);
        assert_eq!(toks[2].1, "br##\"x\"# still\"##");
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn raw_ident_is_ident() {
        assert_eq!(kinds("r#fn")[0], (TokenKind::Ident, "r#fn"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        assert_eq!(
            kinds(r"'a' '\'' '\u{7D}' 'x 'static '\\'"),
            vec![
                (TokenKind::Char, "'a'"),
                (TokenKind::Char, r"'\''"),
                (TokenKind::Char, r"'\u{7D}'"),
                (TokenKind::Lifetime, "'x"),
                (TokenKind::Lifetime, "'static"),
                (TokenKind::Char, r"'\\'"),
            ]
        );
    }

    #[test]
    fn char_literal_containing_double_quote() {
        // A `'"'` must not open a string that swallows the file.
        let toks = kinds(r#"let c = '"'; let x = 1 == 2;"#);
        assert!(toks.contains(&(TokenKind::Char, "'\"'")));
        assert!(toks.contains(&(TokenKind::Punct, "==")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "after"));
    }

    #[test]
    fn doc_comment_flavors() {
        assert_eq!(kinds("/// docs")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("//! docs")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("// plain")[0].0, TokenKind::LineComment);
        assert_eq!(kinds("//// ruler")[0].0, TokenKind::LineComment);
        assert_eq!(kinds("/** block doc */")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("/*! inner */")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("/**/")[0].0, TokenKind::BlockComment);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r#"c"cstr""#)[0].0, TokenKind::Str);
        assert_eq!(kinds(r"b'x'")[0].0, TokenKind::Char);
    }

    #[test]
    fn shebang_line_does_not_desync() {
        // The `"` inside the shebang must not open a string literal.
        let toks = kinds("#!/bin/sh -c \"x\"\nlet a = 1 == 2;");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[0].1, "#!/bin/sh -c \"x\"");
        assert!(toks.contains(&(TokenKind::Punct, "==")));
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let toks = kinds("#![forbid(unsafe_code)]\nfn f() {}");
        assert_eq!(toks[0], (TokenKind::Punct, "#"));
        assert!(toks.contains(&(TokenKind::Ident, "forbid")));
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b\"open", "r###\"x\"##"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "input {src:?} lexed to nothing");
        }
    }

    #[test]
    fn line_and_col_spans() {
        let toks = lex("a\n  b == c");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (2, 5));
        assert_eq!(toks[2].text, "==");
    }

    #[test]
    fn operators_lex_greedily() {
        assert_eq!(
            kinds("a ..= b .. c == d != e => f <= g >= h && i || j"),
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::Punct, "..="),
                (TokenKind::Ident, "b"),
                (TokenKind::Punct, ".."),
                (TokenKind::Ident, "c"),
                (TokenKind::Punct, "=="),
                (TokenKind::Ident, "d"),
                (TokenKind::Punct, "!="),
                (TokenKind::Ident, "e"),
                (TokenKind::Punct, "=>"),
                (TokenKind::Ident, "f"),
                (TokenKind::Punct, "<="),
                (TokenKind::Ident, "g"),
                (TokenKind::Punct, ">="),
                (TokenKind::Ident, "h"),
                (TokenKind::Punct, "&&"),
                (TokenKind::Ident, "i"),
                (TokenKind::Punct, "||"),
                (TokenKind::Ident, "j"),
            ]
        );
    }
}
