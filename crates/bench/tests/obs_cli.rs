//! Integration tests of the `repro` observability surface: `--metrics`,
//! `--trace`, `--profile`, and the snapshot-backed `--stats`.
//!
//! The contract (DESIGN.md §14): observability never perturbs stdout —
//! figure bytes are identical with and without every obs flag, at any
//! thread count — and everything the run *reports* about itself comes
//! from one coherent registry snapshot taken after the sweep workers
//! joined. Wall-clock metrics (`is_timing_metric` names) are excluded
//! from golden comparisons; everything else in the Prometheus
//! exposition is data-derived and byte-stable.

use std::process::Command;
use ucore_obs::SpanKind;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn repro_threads(args: &[&str], threads: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("UCORE_SWEEP_THREADS", threads)
        .output()
        .expect("repro binary runs")
}

fn repro_with_fault(args: &[&str], spec: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("UCORE_FAULT_INJECT", spec)
        .output()
        .expect("repro binary runs")
}

/// A scratch path under the system temp dir, removed before use.
fn scratch(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ucore-obs-cli-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Drops every metric family with a timing-convention name (`_ns`,
/// `_us`, `_ms`, `_seconds` suffixes) from a Prometheus exposition,
/// leaving only the data-derived — and therefore byte-stable —
/// families.
fn strip_timing_families(exposition: &str) -> String {
    let mut out = String::new();
    let mut in_timing_family = false;
    for line in exposition.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split(' ').next().unwrap_or("");
            in_timing_family = ucore_obs::is_timing_metric(family);
        }
        if !in_timing_family {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------
// stdout is never perturbed
// ---------------------------------------------------------------------

#[test]
fn obs_flags_do_not_perturb_figure_output_at_any_thread_count() {
    for threads in ["1", "2", "4", "8"] {
        let plain = repro_threads(&["--json", "figure-6"], threads);
        let metrics_path = scratch(&format!("perturb-m-{threads}.txt"));
        let trace_path = scratch(&format!("perturb-t-{threads}.bin"));
        let observed = repro_threads(
            &[
                "--json", "figure-6",
                "--metrics", metrics_path.to_str().unwrap(),
                "--trace", trace_path.to_str().unwrap(),
                "--profile",
            ],
            threads,
        );
        assert!(plain.status.success() && observed.status.success(), "{threads}");
        assert_eq!(
            plain.stdout, observed.stdout,
            "figure-6 stdout must be byte-identical with obs armed ({threads} threads)"
        );
        let _ = std::fs::remove_file(&metrics_path);
        let _ = std::fs::remove_file(&trace_path);
    }
}

// ---------------------------------------------------------------------
// --metrics: golden Prometheus exposition
// ---------------------------------------------------------------------

/// The timing-filtered exposition of a `--json figure-6` run. Figure 6
/// sweeps one batch of 120 all-distinct points, so every counter here
/// is fixed by the model, not the machine. Regenerate with
/// `cargo test -p ucore-bench --test obs_cli -- --ignored --nocapture`
/// after intentional pipeline changes.
const FIGURE6_METRICS_GOLDEN: &str = "\
# TYPE ucore_cache_entries gauge
ucore_cache_entries 120
# TYPE ucore_cache_hits counter
ucore_cache_hits 0
# TYPE ucore_cache_lookups counter
ucore_cache_lookups 120
# TYPE ucore_cache_misses counter
ucore_cache_misses 120
# TYPE ucore_failures_dropped counter
ucore_failures_dropped 0
# TYPE ucore_failures_retained counter
ucore_failures_retained 0
# TYPE ucore_journal_appends counter
ucore_journal_appends 0
# TYPE ucore_journal_hits counter
ucore_journal_hits 0
# TYPE ucore_journal_stale counter
ucore_journal_stale 0
# TYPE ucore_journal_syncs counter
ucore_journal_syncs 0
# TYPE ucore_journal_write_errors counter
ucore_journal_write_errors 0
# TYPE ucore_points_failed counter
ucore_points_failed 0
# TYPE ucore_points_infeasible counter
ucore_points_infeasible 0
# TYPE ucore_points_ok counter
ucore_points_ok 120
# TYPE ucore_points_retries counter
ucore_points_retries 0
# TYPE ucore_points_speedup histogram
ucore_points_speedup_bucket{le=\"1\"} 0
ucore_points_speedup_bucket{le=\"2\"} 0
ucore_points_speedup_bucket{le=\"5\"} 5
ucore_points_speedup_bucket{le=\"10\"} 40
ucore_points_speedup_bucket{le=\"20\"} 56
ucore_points_speedup_bucket{le=\"50\"} 96
ucore_points_speedup_bucket{le=\"100\"} 120
ucore_points_speedup_bucket{le=\"500\"} 120
ucore_points_speedup_bucket{le=\"+Inf\"} 120
ucore_points_speedup_count 120
# TYPE ucore_points_submitted counter
ucore_points_submitted 120
# TYPE ucore_shard_leases_abandoned counter
ucore_shard_leases_abandoned 0
# TYPE ucore_shard_leases_reassigned counter
ucore_shard_leases_reassigned 0
# TYPE ucore_shard_merge_duplicates counter
ucore_shard_merge_duplicates 0
# TYPE ucore_shard_merge_records counter
ucore_shard_merge_records 0
# TYPE ucore_shard_merge_rejected counter
ucore_shard_merge_rejected 0
# TYPE ucore_shard_points_skipped counter
ucore_shard_points_skipped 0
# TYPE ucore_shard_workers_crashed counter
ucore_shard_workers_crashed 0
# TYPE ucore_shard_workers_ok counter
ucore_shard_workers_ok 0
# TYPE ucore_shard_workers_spawned counter
ucore_shard_workers_spawned 0
# TYPE ucore_shard_workers_stalled counter
ucore_shard_workers_stalled 0
# TYPE ucore_sweep_batches counter
ucore_sweep_batches 1
";

#[test]
fn metrics_exposition_matches_golden_and_is_thread_invariant() {
    let mut expositions = Vec::new();
    for threads in ["1", "4"] {
        let path = scratch(&format!("golden-m-{threads}.txt"));
        let out = repro_threads(
            &["--json", "figure-6", "--metrics", path.to_str().unwrap()],
            threads,
        );
        assert!(out.status.success(), "{threads}");
        let exposition = std::fs::read_to_string(&path).expect("metrics file written");
        let _ = std::fs::remove_file(&path);
        // The unfiltered file carries the timing histogram too.
        assert!(
            exposition.contains("ucore_sweep_point_us_count 120"),
            "timing histogram present in the raw exposition:\n{exposition}"
        );
        expositions.push(strip_timing_families(&exposition));
    }
    assert_eq!(expositions[0], expositions[1], "thread-invariant exposition");
    assert_eq!(expositions[0], FIGURE6_METRICS_GOLDEN);
}

/// Prints the golden above from the current build. Run with
/// `-- --ignored --nocapture` and paste after intentional changes.
#[test]
#[ignore = "regeneration helper, not a check"]
fn dump_goldens() {
    let path = scratch("dump-m.txt");
    let out = repro(&["--json", "figure-6", "--metrics", path.to_str().unwrap()]);
    assert!(out.status.success());
    let exposition = std::fs::read_to_string(&path).expect("metrics file written");
    let _ = std::fs::remove_file(&path);
    println!("FIGURE6_METRICS_GOLDEN:\n{}", strip_timing_families(&exposition));
}

// ---------------------------------------------------------------------
// --trace: golden schema of the binary span stream
// ---------------------------------------------------------------------

#[test]
fn trace_file_decodes_with_the_expected_schema() {
    let path = scratch("schema-t.bin");
    let out = repro_threads(
        &["--json", "figure-6", "--trace", path.to_str().unwrap()],
        "1",
    );
    assert!(out.status.success());
    let bytes = std::fs::read(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);

    let trace = ucore_obs::Trace::decode(&bytes).expect("trace decodes");
    // The name table is sorted bytewise at freeze, so its contents and
    // order are part of the format contract.
    assert_eq!(
        trace.names,
        vec![
            "engine.node_point".to_string(),
            "engine.optimize".to_string(),
            "project.sweep".to_string(),
        ]
    );
    assert_eq!(trace.dropped, 0, "figure 6 fits the default ring");
    // 1 sweep + 120 node points + 120 optimizer calls, enter + exit each.
    assert_eq!(trace.events.len(), 2 * (1 + 120 + 120));
    let enters = trace.events.iter().filter(|e| e.kind == SpanKind::Enter).count();
    let exits = trace.events.iter().filter(|e| e.kind == SpanKind::Exit).count();
    assert_eq!(enters, exits);
    // Single-threaded, the freeze order is the record order: ticks are
    // strictly increasing and the first/last events bracket the sweep.
    for pair in trace.events.windows(2) {
        assert!(pair[0].tick < pair[1].tick, "ticks strictly increase at 1 thread");
    }
    assert_eq!(trace.name(trace.events[0].name), "project.sweep");
    assert_eq!(trace.events[0].kind, SpanKind::Enter);
    let last = trace.events.last().unwrap();
    assert_eq!(trace.name(last.name), "project.sweep");
    assert_eq!(last.kind, SpanKind::Exit);
}

// ---------------------------------------------------------------------
// --profile
// ---------------------------------------------------------------------

#[test]
fn profile_prints_a_phase_table_on_stderr_only() {
    let plain = repro(&["--json", "figure-6"]);
    let profiled = repro(&["--json", "figure-6", "--profile"]);
    assert!(profiled.status.success());
    assert_eq!(plain.stdout, profiled.stdout, "profile never touches stdout");
    let err = String::from_utf8(profiled.stderr).unwrap();
    assert!(err.contains("--- repro --profile ---"), "{err}");
    assert!(err.contains("phase"), "table header: {err}");
    assert!(err.contains("project.sweep"), "{err}");
    assert!(err.contains("engine.node_point"), "{err}");
    assert!(err.contains("engine.optimize"), "{err}");
    assert!(err.contains("folded stacks"), "{err}");
    assert!(
        err.contains("project.sweep;engine.node_point;engine.optimize"),
        "nested folded stack: {err}"
    );
}

// ---------------------------------------------------------------------
// --stats reads one coherent snapshot (regression for the old
// counter-by-counter reads)
// ---------------------------------------------------------------------

#[test]
fn stats_lines_are_mutually_consistent_from_one_snapshot() {
    let out = repro_with_fault(
        &["--stats", "--max-failures", "9", "--figure", "6"],
        "panic@3",
    );
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    // All three stats lines below render the same snapshot, so their
    // numbers must agree exactly — the old implementation re-read live
    // atomics per line and could not promise that.
    assert!(err.contains("points: 119 ok, 0 infeasible, 1 failed"), "{err}");
    assert!(err.contains("evaluations run: 119"), "{err}");
    assert!(err.contains("cache: 0 hits, 119 misses, 119 entries"), "{err}");
    assert!(err.contains("failure log: 1 retained"), "{err}");
}

#[test]
fn failure_policing_reads_the_same_snapshot_as_stats() {
    let out = repro_with_fault(&["--stats", "--figure", "6"], "panic@3");
    assert_eq!(out.status.code(), Some(2), "threshold breach uses exit code 2");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("points: 119 ok, 0 infeasible, 1 failed"), "{err}");
    assert!(err.contains("points_failed: 1"), "{err}");
}

// ---------------------------------------------------------------------
// flag surface
// ---------------------------------------------------------------------

#[test]
fn obs_flags_validate_and_suggest() {
    for (flag, want) in [
        ("--metrisc", "did you mean --metrics?"),
        ("--profiel", "did you mean --profile?"),
        ("--trase", "did you mean --trace?"),
    ] {
        let out = repro(&[flag, "6"]);
        assert!(!out.status.success(), "{flag}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(want), "{flag}: {err}");
    }
    for flag in ["--metrics", "--trace"] {
        let out = repro(&["--json", "figure-6", flag]);
        assert!(!out.status.success(), "{flag}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(&format!("{flag} needs a value")), "{flag}: {err}");
    }
    let out = repro(&["--help"]);
    let text = String::from_utf8(out.stdout).unwrap();
    for flag in ["--metrics PATH", "--trace PATH", "--profile"] {
        assert!(text.contains(flag), "usage mentions {flag}: {text}");
    }
}
