//! Byte-identity of the rendered paper artifacts across worker thread
//! counts.
//!
//! `ucore-project` pins the serialized `FigureData` JSON; this binary
//! pins the *human-rendered* tables and figures the `repro` CLI ships:
//! the exact text of Figures 5–11 and Tables 1/5 must not depend on
//! `UCORE_SWEEP_THREADS`. This is the contract the bench trajectory
//! relies on — `sweep/parallel` may only be faster than
//! `sweep/sequential`, never different.
//!
//! Lives in its own integration-test binary because it owns the
//! `UCORE_SWEEP_THREADS` process environment variable for its duration.

use ucore_bench::{figures, tables};

fn render(threads: &str) -> Vec<(&'static str, String)> {
    std::env::set_var("UCORE_SWEEP_THREADS", threads);
    let must = |name: &str, r: Result<String, Box<dyn std::error::Error>>| -> String {
        r.unwrap_or_else(|e| panic!("{name} failed to render: {e}"))
    };
    let out = vec![
        ("table1", must("table1", tables::table1())),
        ("table5", must("table5", tables::table5())),
        ("figure5", figures::figure5()),
        ("figure6", must("figure6", figures::figure6())),
        ("figure7", must("figure7", figures::figure7())),
        ("figure8", must("figure8", figures::figure8())),
        ("figure9", must("figure9", figures::figure9())),
        ("figure10", must("figure10", figures::figure10())),
        ("figure11", must("figure11", figures::figure11())),
    ];
    std::env::remove_var("UCORE_SWEEP_THREADS");
    out
}

#[test]
fn rendered_artifacts_are_byte_identical_across_thread_counts() {
    let reference = render("1");
    for threads in ["2", "4", "8"] {
        let rendered = render(threads);
        for ((name, text), (_, expected)) in rendered.iter().zip(reference.iter()) {
            assert_eq!(text, expected, "{name} at {threads} threads");
        }
    }
}
