//! Integration tests of the bench-trajectory CLI: `--bench-snapshot`
//! recording and the `--bench-check` comparator — schema stability,
//! determinism modulo timing, exit codes, and tolerance-breach
//! diagnostics, all through the real `repro` binary.

use std::process::Command;
use ucore_bench::snapshot::{BenchSnapshot, SCHEMA_VERSION};

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        // Keep measurement cheap: these tests check plumbing, not speed.
        .env("UCORE_BENCH_BUDGET_MS", "10")
        .output()
        .expect("repro binary runs")
}

/// A scratch directory under the system temp dir, created fresh.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ucore-bench-cli-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path).expect("scratch dir creates");
    path
}

fn read_snapshot(path: &std::path::Path) -> BenchSnapshot {
    BenchSnapshot::from_slice(&std::fs::read(path).expect("snapshot file exists"))
        .expect("snapshot parses")
}

/// The ids every kernels snapshot must carry, in bench order.
const KERNEL_IDS: [&str; 14] = [
    "kernels/mmm/naive/64",
    "kernels/mmm/blocked/64",
    "kernels/mmm/parallel4/64",
    "kernels/mmm/strassen/64",
    "kernels/mmm/naive/128",
    "kernels/mmm/blocked/128",
    "kernels/mmm/parallel4/128",
    "kernels/mmm/strassen/128",
    "kernels/fft/256",
    "kernels/fft/split_radix/256",
    "kernels/fft/4096",
    "kernels/fft/split_radix/4096",
    "kernels/black_scholes/serial",
    "kernels/black_scholes/parallel4",
];

const SWEEP_IDS: [&str; 7] = [
    "sweep/sequential",
    "sweep/parallel",
    "sweep/cached",
    "optimize/exhaustive",
    "optimize/pruned",
    "portfolio/allocate",
    "portfolio/exhaustive",
];

#[test]
fn snapshot_writes_both_topics_with_stable_schema() {
    let dir = scratch_dir("snapshot-all");
    let out = repro(&["--bench-snapshot", "all", "--bench-dir", dir.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stdout.is_empty(), "snapshot reports on stderr only");

    let kernels = read_snapshot(&dir.join("BENCH_kernels.json"));
    assert_eq!(kernels.schema_version, SCHEMA_VERSION);
    assert_eq!(kernels.topic, "kernels");
    assert_eq!(kernels.time_unit, "ns");
    let ids: Vec<&str> = kernels.entries.iter().map(|e| e.id.as_str()).collect();
    assert_eq!(ids, KERNEL_IDS, "ids and order are part of the schema");
    for e in &kernels.entries {
        assert!(e.median_ns > 0.0, "{} must have a positive median", e.id);
        assert!(e.iters >= 1 && e.samples >= 3, "{} calibrated", e.id);
    }

    let sweep = read_snapshot(&dir.join("BENCH_sweep.json"));
    assert_eq!(sweep.topic, "sweep");
    let ids: Vec<&str> = sweep.entries.iter().map(|e| e.id.as_str()).collect();
    assert_eq!(ids, SWEEP_IDS);
}

#[test]
fn snapshot_json_is_deterministic_modulo_timing_fields() {
    // Two independent captures must agree on everything except the
    // measured numbers: key order, ids, entry order, units, version.
    let dir = scratch_dir("determinism");
    let first = repro(&["--bench-snapshot", "kernels", "--bench-dir", dir.to_str().unwrap()]);
    assert!(first.status.success());
    let a = std::fs::read_to_string(dir.join("BENCH_kernels.json")).unwrap();
    let second = repro(&["--bench-snapshot", "kernels", "--bench-dir", dir.to_str().unwrap()]);
    assert!(second.status.success());
    let b = std::fs::read_to_string(dir.join("BENCH_kernels.json")).unwrap();

    let strip = |s: &str| -> String {
        s.lines()
            .filter(|l| {
                let l = l.trim_start();
                !(l.starts_with("\"median_ns\"")
                    || l.starts_with("\"iters\"")
                    || l.starts_with("\"samples\""))
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a), strip(&b), "only timing fields may differ");
    // And the key order within the file is the declared order.
    let pos =
        |s: &str, key: &str| s.find(key).unwrap_or_else(|| panic!("{key} missing"));
    assert!(pos(&a, "schema_version") < pos(&a, "\"topic\""));
    assert!(pos(&a, "\"topic\"") < pos(&a, "time_unit"));
    assert!(pos(&a, "time_unit") < pos(&a, "\"entries\""));
}

#[test]
fn check_passes_against_a_generous_baseline() {
    // A baseline with huge medians can never be breached: exit 0 and a
    // pass line on stdout.
    let dir = scratch_dir("check-pass");
    let out = repro(&["--bench-snapshot", "kernels", "--bench-dir", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let path = dir.join("BENCH_kernels.json");
    let mut snap = read_snapshot(&path);
    for e in &mut snap.entries {
        e.median_ns *= 1e6;
    }
    std::fs::write(&path, snap.to_json().unwrap()).unwrap();

    let out = repro(&["--bench-check", "kernels", "--bench-dir", dir.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("bench-check kernels: ok"), "{stdout}");
}

#[test]
fn check_fails_with_exit_2_on_injected_regression() {
    // Doctoring the baseline to absurdly small medians simulates a
    // regression in every benchmark; the comparator must exit 2 and
    // name each breach with its ratio and tolerance.
    let dir = scratch_dir("check-fail");
    let out = repro(&["--bench-snapshot", "kernels", "--bench-dir", dir.to_str().unwrap()]);
    assert!(out.status.success());
    let path = dir.join("BENCH_kernels.json");
    let mut snap = read_snapshot(&path);
    for e in &mut snap.entries {
        e.median_ns = 0.001;
    }
    std::fs::write(&path, snap.to_json().unwrap()).unwrap();

    let out = repro(&["--bench-check", "kernels", "--bench-dir", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "tolerance breach is a policy failure");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("bench regression: kernels/mmm/naive/64"), "{err}");
    assert!(err.contains("> x2.00"), "default tolerance is 2.0: {err}");
    assert!(err.contains("bench-check failed: 14 benchmark(s)"), "{err}");
}

#[test]
fn check_compares_recorded_files_without_measuring() {
    // --bench-against + --bench-current make the comparator pure file
    // vs file, so exit codes can be pinned without timing noise.
    let dir = scratch_dir("file-vs-file");
    let mk = |name: &str, ns: f64| -> std::path::PathBuf {
        let snap = BenchSnapshot {
            schema_version: SCHEMA_VERSION,
            topic: "kernels".to_string(),
            time_unit: "ns".to_string(),
            entries: vec![ucore_bench::snapshot::BenchEntry {
                id: "kernels/mmm/naive/64".to_string(),
                median_ns: ns,
                iters: 1,
                samples: 3,
            }],
        };
        let path = dir.join(name);
        std::fs::write(&path, snap.to_json().unwrap()).unwrap();
        path
    };
    let base = mk("base.json", 100.0);
    let slower = mk("slower.json", 190.0);
    let breach = mk("breach.json", 500.0);

    // 1.9x slower passes at the default 2.0 tolerance...
    let out = repro(&[
        "--bench-check", "kernels",
        "--bench-against", base.to_str().unwrap(),
        "--bench-current", slower.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // ...but fails once the tolerance is tightened below the ratio.
    let out = repro(&[
        "--bench-check", "kernels",
        "--bench-against", base.to_str().unwrap(),
        "--bench-current", slower.to_str().unwrap(),
        "--bench-tolerance", "1.5",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("x1.90 > x1.50"), "{err}");

    // A 5x slowdown breaches the default tolerance.
    let out = repro(&[
        "--bench-check", "kernels",
        "--bench-against", base.to_str().unwrap(),
        "--bench-current", breach.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("500 ns vs baseline 100 ns"), "{err}");
}

#[test]
fn check_refuses_mismatched_schema_versions() {
    let dir = scratch_dir("schema-mismatch");
    let mk = |name: &str, version: u32| -> std::path::PathBuf {
        let snap = BenchSnapshot {
            schema_version: version,
            topic: "kernels".to_string(),
            time_unit: "ns".to_string(),
            entries: vec![],
        };
        let path = dir.join(name);
        std::fs::write(&path, snap.to_json().unwrap()).unwrap();
        path
    };
    let base = mk("base.json", SCHEMA_VERSION);
    let future = mk("future.json", SCHEMA_VERSION + 1);
    let out = repro(&[
        "--bench-check", "kernels",
        "--bench-against", base.to_str().unwrap(),
        "--bench-current", future.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "meaningless comparison is an error, not a breach");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("schema mismatch"), "{err}");
}

#[test]
fn usage_errors_are_clean() {
    // Unknown topic.
    let out = repro(&["--bench-snapshot", "nonsense"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("kernels|sweep|all"), "{err}");

    // Baseline/current overrides without a single-topic check.
    let out = repro(&["--bench-against", "x.json", "--bench-snapshot", "kernels"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--bench-against"), "{err}");
    let out = repro(&["--bench-check", "all", "--bench-current", "x.json"]);
    assert_eq!(out.status.code(), Some(1));

    // Tolerance below 1.0 makes no sense (faster-is-fine by design).
    let out = repro(&["--bench-check", "kernels", "--bench-tolerance", "0.5"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--bench-tolerance"), "{err}");

    // Typo'd bench flag gets a did-you-mean hint.
    let out = repro(&["--bench-snapshots", "kernels"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("did you mean --bench-snapshot?"), "{err}");

    // Missing baseline file is an IO error (1), not a breach (2).
    let dir = scratch_dir("missing-baseline");
    let out = repro(&["--bench-check", "sweep", "--bench-dir", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}
