//! Integration tests of the `repro` binary's sharded execution mode:
//! `--shards N` orchestration, `--shard i/n` workers, crash/stall
//! tolerance, argument validation, and signal-flushed journals.
//!
//! The load-bearing contract: at every shard count — including runs
//! where a worker is killed or stalled mid-sweep and its lease is
//! reassigned — the rendered stdout is byte-identical to the
//! single-process run.

use std::process::Command;
use std::time::{Duration, Instant};

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn repro_with_fault(args: &[&str], spec: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("UCORE_FAULT_INJECT", spec)
        .output()
        .expect("repro binary runs")
}

/// A scratch path under the system temp dir, removed (with any shard
/// siblings) before use.
fn scratch(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ucore-shard-cli-{}-{tag}",
        std::process::id()
    ));
    cleanup(&path);
    path
}

/// Remove a merged journal and every shard sibling it may have grown.
fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    for i in 0..16 {
        let _ = std::fs::remove_file(format!("{}.shard{i}", path.display()));
        let _ = std::fs::remove_file(format!("{}.shard{i}.log", path.display()));
    }
}

/// `--shards N` output is byte-identical to the single-process run at
/// every supported shard count, including the degenerate N = 1.
#[test]
fn sharded_output_is_byte_identical_at_all_shard_counts() {
    let baseline = repro(&["--json", "figure-6"]);
    assert!(baseline.status.success());

    for shards in ["1", "2", "4", "8"] {
        let journal = scratch(&format!("ident-{shards}.jsonl"));
        let out = repro(&[
            "--shards", shards,
            "--journal", journal.to_str().unwrap(),
            "--json", "figure-6",
        ]);
        assert!(out.status.success(), "--shards {shards}");
        assert_eq!(
            out.stdout, baseline.stdout,
            "--shards {shards} must render the exact single-process bytes"
        );
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("shards: merged"), "merge summary (--shards {shards}): {err}");
        cleanup(&journal);
    }
}

/// A worker killed mid-sweep gets its lease reassigned; the reassigned
/// worker (spawned without the one-shot fault environment) finishes the
/// lease and the merged output is still byte-identical.
#[test]
fn killed_worker_lease_is_reassigned_and_output_unchanged() {
    let baseline = repro(&["--json", "figure-6"]);
    assert!(baseline.status.success());

    let journal = scratch("kill.jsonl");
    let out = repro_with_fault(
        &[
            "--shards", "4",
            "--journal", journal.to_str().unwrap(),
            "--stats",
            "--json", "figure-6",
        ],
        "kill@50",
    );
    assert!(out.status.success(), "the fleet survives a worker kill");
    assert_eq!(out.stdout, baseline.stdout, "output unchanged after reassignment");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("reassigning its lease"), "{err}");
    assert!(err.contains("sharding:"), "shard stats block: {err}");
    assert!(err.contains("shard merge:"), "merge stats line: {err}");
    assert!(err.contains("crashed"), "{err}");
    cleanup(&journal);
}

/// A worker that stops journaling is detected by the heartbeat monitor,
/// killed, and its lease reassigned — the run still completes with
/// byte-identical output.
#[test]
fn stalled_worker_is_killed_and_lease_reassigned() {
    let baseline = repro(&["--json", "figure-6"]);
    assert!(baseline.status.success());

    let journal = scratch("stall.jsonl");
    let out = repro_with_fault(
        &[
            "--shards", "4",
            "--shard-stall-ms", "1500",
            "--journal", journal.to_str().unwrap(),
            "--json", "figure-6",
        ],
        "stall@50",
    );
    assert!(out.status.success(), "the fleet survives a stalled worker");
    assert_eq!(out.stdout, baseline.stdout);
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("made no journal progress"), "{err}");
    assert!(err.contains("reassigning its lease"), "{err}");
    cleanup(&journal);
}

/// Worker mode (`--shard i/n`) journals exactly its lease of the grid —
/// the balanced contiguous split of the full journal's record count.
#[test]
fn worker_mode_journals_exactly_its_lease() {
    // Size the lease from a full single-process journal rather than a
    // hard-coded grid size.
    let full = scratch("full.jsonl");
    let out = repro(&["--journal", full.to_str().unwrap(), "--json", "figure-6"]);
    assert!(out.status.success());
    let total = std::fs::read_to_string(&full).unwrap().lines().count();
    assert!(total > 0);
    cleanup(&full);

    let journal = scratch("worker.jsonl");
    let out = repro(&[
        "--shard", "1/4",
        "--journal", journal.to_str().unwrap(),
        "--json", "figure-6",
    ]);
    assert!(out.status.success(), "worker mode is an ordinary run");
    let records = std::fs::read_to_string(&journal).unwrap().lines().count();
    let (base, rem) = (total / 4, total % 4);
    assert_eq!(
        records,
        base + usize::from(1 < rem),
        "shard 1/4 journals its balanced lease of {total} points"
    );
    cleanup(&journal);
}

#[test]
fn shard_flags_are_validated() {
    for (args, needle) in [
        (vec!["--shards", "4", "--json", "figure-6"], "--shards requires --journal"),
        (vec!["--shards", "0", "--journal", "/tmp/x", "--json", "figure-6"], "--shards"),
        (
            vec!["--shards", "2", "--shard", "0/2", "--journal", "/tmp/x", "--json", "figure-6"],
            "mutually exclusive",
        ),
        (
            vec!["--shards", "2", "--journal", "/tmp/x", "--resume", "--json", "figure-6"],
            "--resume",
        ),
        (vec!["--shard", "4/4", "--journal", "/tmp/x", "--json", "figure-6"], "--shard"),
        (vec!["--shard", "1of4", "--journal", "/tmp/x", "--json", "figure-6"], "--shard"),
        (vec!["--shard", "0/2", "--json", "figure-6"], "--shard requires --journal"),
        (
            vec!["--shards", "2", "--journal", "/tmp/x", "--bench-snapshot", "kernels"],
            "rendering command",
        ),
    ] {
        let out = repro(&args);
        assert_eq!(out.status.code(), Some(1), "{args:?} is a usage error");
        assert!(out.stdout.is_empty(), "{args:?} renders nothing");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage"), "{args:?}: {err}");
    }
}

/// SIGTERM flushes the journal before exiting 143, and the flushed
/// journal resumes to byte-identical output — the contract the
/// orchestrator's stall-kill path (and any operator Ctrl-C) relies on.
#[cfg(unix)]
#[test]
fn sigterm_flushes_the_journal_and_the_run_resumes() {
    let baseline = repro(&["--json", "figure-6"]);
    assert!(baseline.status.success());

    let journal = scratch("sigterm.jsonl");
    // stall@100 parks the run after ~100 journaled points so the TERM
    // lands mid-run deterministically.
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--journal", journal.to_str().unwrap(), "--json", "figure-6"])
        .env("UCORE_FAULT_INJECT", "stall@100")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("repro binary spawns");

    // Wait for the journal to reach its pre-stall plateau: a nonzero
    // size that holds still across two polls.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last = 0u64;
    loop {
        std::thread::sleep(Duration::from_millis(150));
        let len = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
        if len > 0 && len == last {
            break;
        }
        last = len;
        assert!(Instant::now() < deadline, "journal never plateaued");
    }

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let status = child.wait().expect("child reaped");
    assert_eq!(status.code(), Some(143), "SIGTERM exits 128 + 15");

    let records = std::fs::read_to_string(&journal).unwrap().lines().count();
    assert!(records > 0, "the handler flushed completed points");

    let resumed = repro(&[
        "--journal", journal.to_str().unwrap(),
        "--resume",
        "--json", "figure-6",
    ]);
    assert!(resumed.status.success());
    assert_eq!(resumed.stdout, baseline.stdout, "resume is byte-identical");
    let err = String::from_utf8(resumed.stderr).unwrap();
    assert!(err.contains("resume: replayed"), "{err}");
    cleanup(&journal);
}
