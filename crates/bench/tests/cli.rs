//! Integration tests of the `repro` binary itself — argument handling,
//! exit codes, and the shape of its output.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn table_five_prints_the_grid() {
    let out = repro(&["--table", "5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table 5"));
    assert!(text.contains("ASIC"));
    assert!(text.contains("FFT-16384"));
}

#[test]
fn figures_and_scenarios_render() {
    for args in [
        ["--figure", "5"],
        ["--figure", "6"],
        ["--figure", "10"],
        ["--scenario", "2"],
    ] {
        let out = repro(&args);
        assert!(out.status.success(), "{args:?}");
        assert!(!out.stdout.is_empty(), "{args:?}");
    }
}

#[test]
fn json_export_parses() {
    let out = repro(&["--json", "figure-8"]);
    assert!(out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(parsed["id"], "figure-8");
    assert!(parsed["panels"].as_array().unwrap().len() == 2);
}

#[test]
fn json_export_is_deterministic_and_well_formed() {
    // Two independent processes — separate caches, separate sweeps —
    // must print byte-identical JSON for every exported figure, with
    // the id/panels/series/points schema the downstream tooling diffs.
    for which in [
        "figure-6", "figure-7", "figure-8", "figure-9", "figure-10", "figure-11",
    ] {
        let first = repro(&["--json", which]);
        let second = repro(&["--json", which]);
        assert!(first.status.success(), "{which}");
        assert_eq!(first.stdout, second.stdout, "{which} json must be deterministic");

        let parsed: serde_json::Value = serde_json::from_slice(&first.stdout).unwrap();
        assert_eq!(parsed["id"], which);
        assert!(parsed["title"].is_string(), "{which} has a title");
        let panels = parsed["panels"].as_array().unwrap();
        assert!(!panels.is_empty(), "{which} has panels");
        for panel in panels {
            assert!(panel["f"].is_number(), "{which} panel carries its f");
            let series = panel["series"].as_array().unwrap();
            assert!(!series.is_empty(), "{which} panel has series");
            for s in series {
                assert!(s["label"].is_string());
                for point in s["points"].as_array().unwrap() {
                    assert!(point["node"].is_string(), "{which} point names its node");
                    assert!(point["speedup"].is_number());
                    assert!(point["limiter"].is_string());
                }
            }
        }
    }
}

#[test]
fn stats_flag_reports_counters_on_stderr_only() {
    let plain = repro(&["--figure", "6"]);
    let with_stats = repro(&["--stats", "--figure", "6"]);
    assert!(with_stats.status.success());
    // stdout is untouched: tools diffing repro output may not care
    // whether --stats was on.
    assert_eq!(plain.stdout, with_stats.stdout);

    let err = String::from_utf8(with_stats.stderr).unwrap();
    assert!(err.contains("repro --stats"), "stats header: {err}");
    assert!(err.contains("sweep phase 0:"), "per-sweep phase lines: {err}");
    assert!(err.contains("evaluations run:"), "evaluation count: {err}");
    assert!(err.contains("hit rate"), "cache summary: {err}");
    assert!(err.contains("total wall time"), "wall clock: {err}");
}

#[test]
fn stats_flag_composes_in_any_position() {
    let out = repro(&["--json", "figure-7", "--stats"]);
    assert!(out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(parsed["id"], "figure-7");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("repro --stats"), "{err}");
}

#[test]
fn csv_export_has_headers_and_rows() {
    let out = repro(&["--csv", "figure-10"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "figure,f,design,node,speedup,energy,limiter"
    );
    assert!(lines.count() > 50, "expected a row per (f, design, node)");
}

#[test]
fn experiments_export_includes_comparisons() {
    let out = repro(&["--experiments"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("### Table 5: paper vs derived"));
    assert!(text.contains("Crossovers"));
}

fn repro_with_fault(args: &[&str], spec: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("UCORE_FAULT_INJECT", spec)
        .output()
        .expect("repro binary runs")
}

#[test]
fn unknown_flag_suggests_the_nearest_known_one() {
    let out = repro(&["--figrue", "6"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown flag \"--figrue\""), "{err}");
    assert!(err.contains("did you mean --figure?"), "{err}");
    assert!(err.contains("usage"), "{err}");

    let out = repro(&["--stat"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("did you mean --stats?"), "{err}");
}

#[test]
fn max_failures_value_is_validated() {
    let out = repro(&["--max-failures", "lots", "--figure", "6"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--max-failures"), "{err}");
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn injected_fault_breaches_the_default_threshold() {
    // A forced panic at point 3 is contained: the figure still renders,
    // but the run exits nonzero with a structured diagnostic because the
    // default --max-failures is 0.
    let out = repro_with_fault(&["--figure", "6"], "panic@3");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2), "threshold breach uses exit code 2");
    assert!(!out.stdout.is_empty(), "figure renders despite the fault");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("sweep failures exceeded --max-failures"), "{err}");
    assert!(err.contains("points_failed: 1"), "{err}");
    assert!(err.contains("max_failures: 0"), "{err}");
    assert!(err.contains("failure at point 3"), "{err}");
    assert!(err.contains("injected panic at point 3"), "{err}");
}

#[test]
fn injected_fault_is_tolerated_with_max_failures_one() {
    let out = repro_with_fault(&["--max-failures", "1", "--figure", "6"], "panic@3");
    assert!(out.status.success(), "one failure is within --max-failures 1");
    assert!(!out.stdout.is_empty());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(!err.contains("exceeded"), "{err}");
}

#[test]
fn stats_report_outcome_counters() {
    let out = repro_with_fault(&["--stats", "--max-failures", "9", "--figure", "6"], "panic@3");
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("1 failed"), "per-phase failed count: {err}");
    assert!(err.contains("points:"), "global outcome totals: {err}");
}

#[test]
fn bad_arguments_fail_with_usage() {
    for args in [
        vec!["--table", "9"],
        vec!["--figure", "1"],
        vec!["--scenario", "7"],
        vec!["--json", "figure-2"],
        vec!["--nonsense"],
        vec!["--table"],
        vec!["--timeout-ms", "0"],
        vec!["--timeout-ms", "soon"],
        vec!["--retries", "-1"],
        vec!["--journal"],
        vec!["--out"],
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        // Every failure explains itself: the usage line or a specific
        // out-of-range message.
        assert!(
            err.contains("usage") || err.contains("not one of"),
            "{args:?}: {err}"
        );
    }
}

// ---------------------------------------------------------------------
// Durability: journals, resume, watchdog, retries, atomic artifacts
// ---------------------------------------------------------------------

/// A scratch path under the system temp dir, removed before use.
fn scratch(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ucore-cli-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn resume_without_journal_is_a_clean_usage_error() {
    let out = repro(&["--resume", "--json", "figure-6"]);
    assert_eq!(out.status.code(), Some(1), "usage error, not a crash");
    assert!(out.stdout.is_empty(), "nothing rendered");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--resume requires --journal"), "{err}");
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn resume_from_a_missing_journal_is_a_clean_error() {
    let path = scratch("missing.jsonl");
    let out = repro(&["--journal", path.to_str().unwrap(), "--resume", "--figure", "6"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("does not exist"), "{err}");
}

/// The end-to-end kill-and-resume contract: a run aborted by `kill@i`
/// leaves a journal; resuming it (without the fault) replays the
/// completed points and produces stdout byte-identical to a run that
/// was never interrupted.
#[test]
fn killed_run_resumes_to_byte_identical_output() {
    let baseline = repro(&["--json", "figure-6"]);
    assert!(baseline.status.success());

    let journal = scratch("kill.jsonl");
    let journal = journal.to_str().unwrap();
    let dead = repro_with_fault(&["--journal", journal, "--json", "figure-6"], "kill@40");
    assert!(!dead.status.success(), "kill@40 aborts the process");
    assert!(dead.stdout.is_empty(), "the aborted run rendered nothing");
    let journaled = std::fs::read_to_string(journal).unwrap();
    let records = journaled.lines().count();
    assert!(records > 0, "completed points were journaled before the abort");
    assert!(records < 120, "the run died before finishing");

    // Resume — at several thread counts — must reproduce the baseline
    // exactly and re-evaluate only the missing points. Each iteration
    // resumes from its own copy of the truncated journal: resuming
    // completes the journal in place, so reusing it would replay all
    // 120 points on the second pass.
    for threads in ["1", "2", "4", "8"] {
        let copy = scratch(&format!("kill-t{threads}.jsonl"));
        std::fs::copy(journal, &copy).unwrap();
        let resumed = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["--journal", copy.to_str().unwrap(), "--resume"])
            .args(["--stats", "--json", "figure-6"])
            .env("UCORE_SWEEP_THREADS", threads)
            .output()
            .expect("repro binary runs");
        let _ = std::fs::remove_file(&copy);
        assert!(resumed.status.success(), "threads = {threads}");
        assert_eq!(
            resumed.stdout, baseline.stdout,
            "resumed output must be byte-identical (threads = {threads})"
        );
        let err = String::from_utf8(resumed.stderr).unwrap();
        assert!(err.contains(&format!("resume: replayed {records} journaled")), "{err}");
        assert!(
            err.contains(&format!("durability: {records} journal hits")),
            "only missing points re-evaluate (threads = {threads}): {err}"
        );
    }
    let _ = std::fs::remove_file(journal);
}

#[test]
fn out_flag_writes_the_exact_stdout_bytes_atomically() {
    let baseline = repro(&["--json", "figure-7"]);
    assert!(baseline.status.success());

    let artifact = scratch("fig7.json");
    let out = repro(&["--json", "figure-7", "--out", artifact.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "--out redirects stdout to the file");
    assert_eq!(
        std::fs::read(&artifact).unwrap(),
        baseline.stdout,
        "artifact bytes match stdout bytes exactly"
    );
    // And overwriting is atomic-replace, not append.
    let again = repro(&["--json", "figure-7", "--out", artifact.to_str().unwrap()]);
    assert!(again.status.success());
    assert_eq!(std::fs::read(&artifact).unwrap(), baseline.stdout);
    let _ = std::fs::remove_file(&artifact);
}

#[test]
fn stalled_point_is_released_by_the_watchdog_within_budget() {
    let start = std::time::Instant::now();
    let out = repro_with_fault(
        &["--timeout-ms", "200", "--max-failures", "1", "--stats", "--figure", "6"],
        "stall@3",
    );
    let elapsed = start.elapsed();
    assert!(out.status.success(), "one timeout within --max-failures 1");
    assert!(
        elapsed < std::time::Duration::from_secs(20),
        "the stall must not hang the run ({elapsed:?})"
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("1 failed"), "the stalled point failed: {err}");
}

#[test]
fn stalled_point_breaches_default_tolerance_with_timeout_diagnostic() {
    let out = repro_with_fault(
        &["--timeout-ms", "150", "--figure", "6"],
        "stall@3",
    );
    assert_eq!(out.status.code(), Some(2), "a timed-out point is a failure");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("watchdog timeout: point 3 exceeded its 150 ms deadline"),
        "{err}"
    );
}

#[test]
fn transient_fault_is_recovered_by_retries() {
    // Without retries the transient fault breaches the default
    // tolerance...
    let out = repro_with_fault(&["--figure", "6"], "panic@3x1");
    assert_eq!(out.status.code(), Some(2));
    // ...with --retries 2 the second attempt succeeds and the run is
    // clean, its output identical to an unfaulted run.
    let baseline = repro(&["--json", "figure-6"]);
    let recovered = repro_with_fault(
        &["--retries", "2", "--stats", "--json", "figure-6"],
        "panic@3x1",
    );
    assert!(recovered.status.success(), "retry recovered the point");
    // The recovered figure data is identical; the health block honestly
    // reports the one retry it took, so normalize that field before
    // comparing.
    let recovered_json = String::from_utf8(recovered.stdout).unwrap();
    let baseline_json = String::from_utf8(baseline.stdout).unwrap();
    assert!(recovered_json.contains("\"retries\": 1"), "{recovered_json}");
    assert_eq!(
        recovered_json.replace("\"retries\": 1", "\"retries\": 0"),
        baseline_json,
        "recovered output is identical up to the retry count"
    );
    let err = String::from_utf8(recovered.stderr).unwrap();
    assert!(err.contains("1 retries"), "retry accounting in --stats: {err}");
}

#[test]
fn stats_surface_dropped_failures_beyond_the_log_cap() {
    // 70 injected panics overflow the 64-entry failure log; the
    // overflow must be visible, not silent.
    let spec: Vec<String> = (0..70).map(|i| format!("panic@{i}")).collect();
    let out = repro_with_fault(
        &["--max-failures", "100", "--stats", "--figure", "6"],
        &spec.join(","),
    );
    assert!(out.status.success(), "70 failures within --max-failures 100");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("70 failed"), "{err}");
    assert!(err.contains("failure log: 64 retained (cap 64), 6 dropped"), "{err}");
}
