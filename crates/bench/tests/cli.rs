//! Integration tests of the `repro` binary itself — argument handling,
//! exit codes, and the shape of its output.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn table_five_prints_the_grid() {
    let out = repro(&["--table", "5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table 5"));
    assert!(text.contains("ASIC"));
    assert!(text.contains("FFT-16384"));
}

#[test]
fn figures_and_scenarios_render() {
    for args in [
        ["--figure", "5"],
        ["--figure", "6"],
        ["--figure", "10"],
        ["--scenario", "2"],
    ] {
        let out = repro(&args);
        assert!(out.status.success(), "{args:?}");
        assert!(!out.stdout.is_empty(), "{args:?}");
    }
}

#[test]
fn json_export_parses() {
    let out = repro(&["--json", "figure-8"]);
    assert!(out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(parsed["id"], "figure-8");
    assert!(parsed["panels"].as_array().unwrap().len() == 2);
}

#[test]
fn csv_export_has_headers_and_rows() {
    let out = repro(&["--csv", "figure-10"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "figure,f,design,node,speedup,energy,limiter"
    );
    assert!(lines.count() > 50, "expected a row per (f, design, node)");
}

#[test]
fn experiments_export_includes_comparisons() {
    let out = repro(&["--experiments"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("### Table 5: paper vs derived"));
    assert!(text.contains("Crossovers"));
}

#[test]
fn bad_arguments_fail_with_usage() {
    for args in [
        vec!["--table", "9"],
        vec!["--figure", "1"],
        vec!["--scenario", "7"],
        vec!["--json", "figure-2"],
        vec!["--nonsense"],
        vec!["--table"],
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        // Every failure explains itself: the usage line or a specific
        // out-of-range message.
        assert!(
            err.contains("usage") || err.contains("not one of"),
            "{args:?}: {err}"
        );
    }
}
