//! Integration tests of the `repro` binary itself — argument handling,
//! exit codes, and the shape of its output.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn table_five_prints_the_grid() {
    let out = repro(&["--table", "5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Table 5"));
    assert!(text.contains("ASIC"));
    assert!(text.contains("FFT-16384"));
}

#[test]
fn figures_and_scenarios_render() {
    for args in [
        ["--figure", "5"],
        ["--figure", "6"],
        ["--figure", "10"],
        ["--scenario", "2"],
    ] {
        let out = repro(&args);
        assert!(out.status.success(), "{args:?}");
        assert!(!out.stdout.is_empty(), "{args:?}");
    }
}

#[test]
fn json_export_parses() {
    let out = repro(&["--json", "figure-8"]);
    assert!(out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(parsed["id"], "figure-8");
    assert!(parsed["panels"].as_array().unwrap().len() == 2);
}

#[test]
fn json_export_is_deterministic_and_well_formed() {
    // Two independent processes — separate caches, separate sweeps —
    // must print byte-identical JSON for every exported figure, with
    // the id/panels/series/points schema the downstream tooling diffs.
    for which in ["figure-6", "figure-7", "figure-8", "figure-9", "figure-10"] {
        let first = repro(&["--json", which]);
        let second = repro(&["--json", which]);
        assert!(first.status.success(), "{which}");
        assert_eq!(first.stdout, second.stdout, "{which} json must be deterministic");

        let parsed: serde_json::Value = serde_json::from_slice(&first.stdout).unwrap();
        assert_eq!(parsed["id"], which);
        assert!(parsed["title"].is_string(), "{which} has a title");
        let panels = parsed["panels"].as_array().unwrap();
        assert!(!panels.is_empty(), "{which} has panels");
        for panel in panels {
            assert!(panel["f"].is_number(), "{which} panel carries its f");
            let series = panel["series"].as_array().unwrap();
            assert!(!series.is_empty(), "{which} panel has series");
            for s in series {
                assert!(s["label"].is_string());
                for point in s["points"].as_array().unwrap() {
                    assert!(point["node"].is_string(), "{which} point names its node");
                    assert!(point["speedup"].is_number());
                    assert!(point["limiter"].is_string());
                }
            }
        }
    }
}

#[test]
fn stats_flag_reports_counters_on_stderr_only() {
    let plain = repro(&["--figure", "6"]);
    let with_stats = repro(&["--stats", "--figure", "6"]);
    assert!(with_stats.status.success());
    // stdout is untouched: tools diffing repro output may not care
    // whether --stats was on.
    assert_eq!(plain.stdout, with_stats.stdout);

    let err = String::from_utf8(with_stats.stderr).unwrap();
    assert!(err.contains("repro --stats"), "stats header: {err}");
    assert!(err.contains("sweep phase 0:"), "per-sweep phase lines: {err}");
    assert!(err.contains("evaluations run:"), "evaluation count: {err}");
    assert!(err.contains("hit rate"), "cache summary: {err}");
    assert!(err.contains("total wall time"), "wall clock: {err}");
}

#[test]
fn stats_flag_composes_in_any_position() {
    let out = repro(&["--json", "figure-7", "--stats"]);
    assert!(out.status.success());
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(parsed["id"], "figure-7");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("repro --stats"), "{err}");
}

#[test]
fn csv_export_has_headers_and_rows() {
    let out = repro(&["--csv", "figure-10"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let mut lines = text.lines();
    assert_eq!(
        lines.next().unwrap(),
        "figure,f,design,node,speedup,energy,limiter"
    );
    assert!(lines.count() > 50, "expected a row per (f, design, node)");
}

#[test]
fn experiments_export_includes_comparisons() {
    let out = repro(&["--experiments"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("### Table 5: paper vs derived"));
    assert!(text.contains("Crossovers"));
}

fn repro_with_fault(args: &[&str], spec: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env("UCORE_FAULT_INJECT", spec)
        .output()
        .expect("repro binary runs")
}

#[test]
fn unknown_flag_suggests_the_nearest_known_one() {
    let out = repro(&["--figrue", "6"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown flag \"--figrue\""), "{err}");
    assert!(err.contains("did you mean --figure?"), "{err}");
    assert!(err.contains("usage"), "{err}");

    let out = repro(&["--stat"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("did you mean --stats?"), "{err}");
}

#[test]
fn max_failures_value_is_validated() {
    let out = repro(&["--max-failures", "lots", "--figure", "6"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--max-failures"), "{err}");
    assert!(err.contains("usage"), "{err}");
}

#[test]
fn injected_fault_breaches_the_default_threshold() {
    // A forced panic at point 3 is contained: the figure still renders,
    // but the run exits nonzero with a structured diagnostic because the
    // default --max-failures is 0.
    let out = repro_with_fault(&["--figure", "6"], "panic@3");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2), "threshold breach uses exit code 2");
    assert!(!out.stdout.is_empty(), "figure renders despite the fault");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("sweep failures exceeded --max-failures"), "{err}");
    assert!(err.contains("points_failed: 1"), "{err}");
    assert!(err.contains("max_failures: 0"), "{err}");
    assert!(err.contains("failure at point 3"), "{err}");
    assert!(err.contains("injected panic at point 3"), "{err}");
}

#[test]
fn injected_fault_is_tolerated_with_max_failures_one() {
    let out = repro_with_fault(&["--max-failures", "1", "--figure", "6"], "panic@3");
    assert!(out.status.success(), "one failure is within --max-failures 1");
    assert!(!out.stdout.is_empty());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(!err.contains("exceeded"), "{err}");
}

#[test]
fn stats_report_outcome_counters() {
    let out = repro_with_fault(&["--stats", "--max-failures", "9", "--figure", "6"], "panic@3");
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("1 failed"), "per-phase failed count: {err}");
    assert!(err.contains("points:"), "global outcome totals: {err}");
}

#[test]
fn bad_arguments_fail_with_usage() {
    for args in [
        vec!["--table", "9"],
        vec!["--figure", "1"],
        vec!["--scenario", "7"],
        vec!["--json", "figure-2"],
        vec!["--nonsense"],
        vec!["--table"],
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        // Every failure explains itself: the usage line or a specific
        // out-of-range message.
        assert!(
            err.contains("usage") || err.contains("not one of"),
            "{args:?}: {err}"
        );
    }
}
