//! Figure 9 bench: FFT-1024 under the 1 TB/s bandwidth scenario.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::figures;
use ucore_project::figures::figure9;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(20);
    group.bench_function("terabyte_projection", |b| {
        b.iter(|| black_box(figure9().expect("projection succeeds")))
    });
    group.finish();
    println!("{}", figures::figure9().expect("projection succeeds"));
}

criterion_group!(benches, bench);
criterion_main!(benches);
