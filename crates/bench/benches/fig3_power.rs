//! Figure 3 bench: power breakdowns and the uncore-subtraction
//! methodology across the FFT sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::figures;
use ucore_devices::DeviceId;
use ucore_simdev::{PowerModel, SimLab};

fn bench(c: &mut Criterion) {
    let lab = SimLab::paper();
    c.bench_function("fig3/breakdown_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for device in DeviceId::ALL {
                for m in lab.fft_sweep(device) {
                    acc += m.breakdown.total();
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("fig3/uncore_subtraction", |b| {
        let model = PowerModel::for_device(DeviceId::Gtx285);
        b.iter(|| {
            let mut acc = 0.0;
            for traffic in 0..200 {
                let breakdown = model.breakdown(66.8, traffic as f64);
                acc += model.subtract_uncore(breakdown.total(), traffic as f64);
            }
            black_box(acc)
        })
    });
    println!("{}", figures::figure3());
}

criterion_group!(benches, bench);
criterion_main!(benches);
