//! Table 4 bench: the simulated lab's MMM and Black-Scholes measurement
//! sweeps, plus the printed reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::tables;
use ucore_simdev::SimLab;
use ucore_workloads::WorkloadKind;

fn bench(c: &mut Criterion) {
    let lab = SimLab::paper();
    c.bench_function("table4/measure_mmm_and_bs", |b| {
        b.iter(|| {
            let mmm = lab.table4(WorkloadKind::Mmm);
            let bs = lab.table4(WorkloadKind::BlackScholes);
            black_box((mmm.len(), bs.len()))
        })
    });
    println!("{}", tables::table4());
}

criterion_group!(benches, bench);
criterion_main!(benches);
