//! Figure 8 bench: the Black-Scholes projection.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::figures;
use ucore_project::figures::figure8;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    group.bench_function("bs_projection", |b| {
        b.iter(|| black_box(figure8().expect("projection succeeds")))
    });
    group.finish();
    println!("{}", figures::figure8().expect("projection succeeds"));
}

criterion_group!(benches, bench);
criterion_main!(benches);
