//! Table 5 bench: the full calibration pipeline (measure every cell,
//! derive every `(µ, φ)`), plus the printed reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::tables;
use ucore_calibrate::Table5;

fn bench(c: &mut Criterion) {
    c.bench_function("table5/full_derivation", |b| {
        b.iter(|| black_box(Table5::derive().expect("calibration succeeds")))
    });
    println!("{}", tables::table5().expect("calibration succeeds"));
}

criterion_group!(benches, bench);
criterion_main!(benches);
