//! Figure 2 bench: the FFT performance sweep — both the simulated-lab
//! series and the *real* Rust FFT kernel at representative sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ucore_bench::figures;
use ucore_devices::DeviceId;
use ucore_simdev::SimLab;
use ucore_workloads::fft::{Complex, Direction, Fft};
use ucore_workloads::gen::random_signal;

fn bench(c: &mut Criterion) {
    let lab = SimLab::paper();
    c.bench_function("fig2/lab_sweep_all_devices", |b| {
        b.iter(|| {
            let mut points = 0usize;
            for device in DeviceId::ALL {
                points += lab.fft_sweep(device).len();
            }
            black_box(points)
        })
    });

    let mut group = c.benchmark_group("fig2/real_fft_kernel");
    for log2 in [6u32, 10, 14] {
        let n = 1usize << log2;
        let plan = Fft::new(n).expect("power of two");
        let signal = random_signal(n, 1);
        let flops = 5.0 * n as f64 * f64::from(log2);
        group.throughput(Throughput::Elements(flops as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut buf: Vec<Complex> = signal.clone();
            b.iter(|| {
                buf.copy_from_slice(&signal);
                plan.transform(&mut buf, Direction::Forward).expect("sized");
                black_box(buf[0])
            })
        });
    }
    group.finish();

    println!("{}", figures::figure2());
}

criterion_group!(benches, bench);
criterion_main!(benches);
