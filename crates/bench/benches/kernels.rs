//! Real-kernel throughput benches: the Rust MMM / FFT / Black-Scholes
//! implementations the reproduction ships instead of MKL / CUFFT /
//! PARSEC.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ucore_workloads::blackscholes::batch;
use ucore_workloads::fft::{Direction, Fft};
use ucore_workloads::gen::{random_matrix, random_portfolio, random_signal};
use ucore_workloads::fft::splitradix::SplitRadixFft;
use ucore_workloads::fft::Direction as FftDirection;
use ucore_workloads::mmm::{blocked, naive, parallel, strassen};

fn bench_mmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/mmm");
    for n in [64usize, 128] {
        let a = random_matrix(n, n, 1);
        let b_m = random_matrix(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive::multiply(&a, &b_m).expect("conformable")))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |b, _| {
            b.iter(|| black_box(blocked::multiply(&a, &b_m, 32).expect("conformable")))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), &n, |b, _| {
            b.iter(|| black_box(parallel::multiply(&a, &b_m, 32, 4).expect("conformable")))
        });
        group.bench_with_input(BenchmarkId::new("strassen", n), &n, |b, _| {
            b.iter(|| black_box(strassen::multiply(&a, &b_m).expect("conformable")))
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/fft");
    for log2 in [8u32, 12] {
        let n = 1usize << log2;
        let plan = Fft::new(n).expect("power of two");
        let signal = random_signal(n, 3);
        group.throughput(Throughput::Elements((5 * n as u64) * u64::from(log2)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut buf = signal.clone();
            b.iter(|| {
                buf.copy_from_slice(&signal);
                plan.transform(&mut buf, Direction::Forward).expect("sized");
                black_box(buf[0])
            })
        });
        let split = SplitRadixFft::new(n).expect("power of two");
        group.bench_with_input(BenchmarkId::new("split_radix", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    split
                        .transform(&signal, FftDirection::Forward)
                        .expect("sized"),
                )
            })
        });
    }
    group.finish();
}

fn bench_bs(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/black_scholes");
    let portfolio = random_portfolio(4096, 5);
    group.throughput(Throughput::Elements(portfolio.len() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| black_box(batch::price_all(&portfolio)))
    });
    group.bench_function("parallel4", |b| {
        b.iter(|| black_box(batch::price_all_parallel(&portfolio, 4).expect("threads > 0")))
    });
    group.finish();
}

criterion_group!(benches, bench_mmm, bench_fft, bench_bs);
criterion_main!(benches);
