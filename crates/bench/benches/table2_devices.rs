//! Table 2 bench: catalog construction and area normalization, plus the
//! printed reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::tables;
use ucore_devices::{Catalog, DeviceId};

fn bench(c: &mut Criterion) {
    c.bench_function("table2/catalog_build", |b| {
        b.iter(|| black_box(Catalog::paper()))
    });
    let catalog = Catalog::paper();
    c.bench_function("table2/area_normalization", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for id in DeviceId::ALL {
                if let Ok(area) = catalog.normalized_core_area(id) {
                    acc += area;
                }
            }
            black_box(acc)
        })
    });
    println!("{}", tables::table2());
}

criterion_group!(benches, bench);
criterion_main!(benches);
