//! Ablation benches for the design choices DESIGN.md calls out: each
//! group evaluates the projection under a variant and prints the key
//! deltas, so a bench run doubles as a sensitivity study.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_core::{
    Budgets, ChipSpec, Optimizer, ParallelFraction, PollackLaw, SerialPowerLaw, UCore,
};

fn f(v: f64) -> ParallelFraction {
    ParallelFraction::new(v).expect("valid fraction")
}

/// A representative design point: the ASIC FFT u-core at 22 nm budgets.
fn spec(alpha: f64, pollack: f64) -> ChipSpec {
    ChipSpec::heterogeneous(UCore::new(489.0, 4.96).expect("valid"))
        .with_power_law(SerialPowerLaw::new(alpha).expect("valid"))
        .with_law(PollackLaw::new(pollack).expect("valid"))
}

fn budgets() -> Budgets {
    Budgets::new(75.0, 17.5, 59.0).expect("valid")
}

fn bench_alpha(c: &mut Criterion) {
    let opt = Optimizer::paper_default();
    let b = budgets();
    c.bench_function("ablation/alpha", |bch| {
        bch.iter(|| {
            let mild = opt.optimize(&spec(1.75, 0.5), &b, f(0.9)).expect("feasible");
            let harsh = opt.optimize(&spec(2.25, 0.5), &b, f(0.9)).expect("feasible");
            black_box((mild.evaluation.speedup, harsh.evaluation.speedup))
        })
    });
    let mild = opt.optimize(&spec(1.75, 0.5), &b, f(0.9)).expect("feasible");
    let harsh = opt.optimize(&spec(2.25, 0.5), &b, f(0.9)).expect("feasible");
    println!(
        "ablation/alpha: speedup {} (alpha=1.75) vs {} (alpha=2.25)",
        mild.evaluation.speedup, harsh.evaluation.speedup
    );
}

fn bench_rmax(c: &mut Criterion) {
    let b = budgets();
    c.bench_function("ablation/r_max", |bch| {
        bch.iter(|| {
            let capped = Optimizer::paper_default()
                .optimize(&spec(1.75, 0.5), &b, f(0.5))
                .expect("feasible");
            let uncapped = Optimizer::new(1.0, 64.0, 1.0)
                .expect("valid sweep")
                .optimize(&spec(1.75, 0.5), &b, f(0.5))
                .expect("feasible");
            black_box((capped.evaluation.r, uncapped.evaluation.r))
        })
    });
    let capped = Optimizer::paper_default()
        .optimize(&spec(1.75, 0.5), &b, f(0.5))
        .expect("feasible");
    let uncapped = Optimizer::new(1.0, 64.0, 1.0)
        .expect("valid sweep")
        .optimize(&spec(1.75, 0.5), &b, f(0.5))
        .expect("feasible");
    println!(
        "ablation/r_max: optimal r {} (cap 16) vs {} (cap 64); speedup {} vs {}",
        capped.evaluation.r,
        uncapped.evaluation.r,
        capped.evaluation.speedup,
        uncapped.evaluation.speedup
    );
}

fn bench_r_granularity(c: &mut Criterion) {
    let b = budgets();
    c.bench_function("ablation/r_granularity", |bch| {
        bch.iter(|| {
            let coarse = Optimizer::new(1.0, 16.0, 1.0)
                .expect("valid")
                .optimize(&spec(1.75, 0.5), &b, f(0.9))
                .expect("feasible");
            let fine = Optimizer::new(1.0, 16.0, 0.125)
                .expect("valid")
                .optimize(&spec(1.75, 0.5), &b, f(0.9))
                .expect("feasible");
            black_box((coarse.evaluation.speedup, fine.evaluation.speedup))
        })
    });
}

fn bench_pollack(c: &mut Criterion) {
    let b = budgets();
    let opt = Optimizer::paper_default();
    c.bench_function("ablation/pollack_exponent", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for exp in [0.4, 0.5, 0.6] {
                let best = opt.optimize(&spec(1.75, exp), &b, f(0.9)).expect("feasible");
                acc += best.evaluation.speedup.get();
            }
            black_box(acc)
        })
    });
    for exp in [0.4, 0.5, 0.6] {
        let best = opt.optimize(&spec(1.75, exp), &b, f(0.9)).expect("feasible");
        println!(
            "ablation/pollack: exponent {exp} -> speedup {} (r = {})",
            best.evaluation.speedup, best.evaluation.r
        );
    }
}

fn bench_bw_scaling(c: &mut Criterion) {
    // Linear vs sublinear traffic scaling: how much of the FFT bandwidth
    // wall is an artifact of the linear assumption?
    let b = budgets();
    let opt = Optimizer::paper_default();
    c.bench_function("ablation/bw_scaling", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for e in [1.0, 0.75, 0.5] {
                let spec = spec(1.75, 0.5).with_bandwidth_exponent(e);
                let best = opt.optimize(&spec, &b, f(0.99)).expect("feasible");
                acc += best.evaluation.speedup.get();
            }
            black_box(acc)
        })
    });
    for e in [1.0, 0.75, 0.5] {
        let s = spec(1.75, 0.5).with_bandwidth_exponent(e);
        let best = opt.optimize(&s, &b, f(0.99)).expect("feasible");
        println!(
            "ablation/bw_scaling: exponent {e} -> speedup {} ({}-limited)",
            best.evaluation.speedup, best.evaluation.limiter
        );
    }
}

criterion_group!(
    benches,
    bench_alpha,
    bench_rmax,
    bench_r_granularity,
    bench_pollack,
    bench_bw_scaling
);
criterion_main!(benches);
