//! Figure 10 bench: the MMM energy projection.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::figures;
use ucore_project::figures::figure10;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(20);
    group.bench_function("energy_projection", |b| {
        b.iter(|| black_box(figure10().expect("projection succeeds")))
    });
    group.finish();
    println!("{}", figures::figure10().expect("projection succeeds"));
}

criterion_group!(benches, bench);
criterion_main!(benches);
