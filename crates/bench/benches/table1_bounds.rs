//! Table 1 bench: bound computation and the limiter classification,
//! swept across sequential-core sizes — plus the printed reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::tables;
use ucore_core::{BoundSet, Budgets, ChipSpec, UCore};

fn bench(c: &mut Criterion) {
    let budgets = Budgets::new(298.0, 34.9, 475.0).expect("valid");
    let specs = [
        ChipSpec::symmetric(),
        ChipSpec::asymmetric_offload(),
        ChipSpec::heterogeneous(UCore::new(27.4, 0.79).expect("valid")),
    ];
    c.bench_function("table1/bound_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for spec in &specs {
                for r in 1..=16 {
                    if let Ok(bounds) = BoundSet::compute(spec, &budgets, r as f64) {
                        acc += bounds.n_max();
                    }
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("table1/render", |b| b.iter(|| black_box(tables::table1())));

    // Regenerate the table once so the bench run leaves the artifact in
    // its log, as the harness contract requires.
    println!("{}", tables::table1().expect("table 1 renders"));
}

criterion_group!(benches, bench);
criterion_main!(benches);
