//! Sweep-engine benchmarks: sequential vs parallel vs memoized.
//!
//! One Figure 6-sized batch (4 parallel fractions × 6 designs × 5
//! nodes) evaluated three ways:
//!
//! * `sequential` — one thread, cache disabled: the pre-sweep-engine
//!   code path's cost;
//! * `parallel` — all cores, cache disabled: pure fan-out speedup;
//! * `cached` — all cores against a pre-warmed cache: the steady-state
//!   cost when figures and scenarios share design points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use ucore_calibrate::WorkloadColumn;
use ucore_core::EvalCache;
use ucore_project::sweep::{figure_points, sweep, SweepConfig, SweepPoint};
use ucore_project::{DesignId, ProjectionEngine, Scenario};

fn figure6_batch(engine: &ProjectionEngine) -> Vec<SweepPoint> {
    let designs = DesignId::for_column(engine.table5(), WorkloadColumn::Fft1024);
    figure_points(engine, &designs, WorkloadColumn::Fft1024, &[0.5, 0.9, 0.99, 0.999])
        .expect("baseline figure batch builds")
}

fn bench_sweep(c: &mut Criterion) {
    // A private cache isolates the bench from the process-global one.
    let engine =
        ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
            .expect("baseline engine builds");
    let points = figure6_batch(&engine);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points.len() as u64));

    group.bench_with_input(
        BenchmarkId::from_parameter("sequential"),
        &points,
        |b, points| {
            let config = SweepConfig { threads: Some(1), use_cache: false };
            b.iter(|| sweep(&engine, points.clone(), &config))
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("parallel"),
        &points,
        |b, points| {
            let config = SweepConfig { threads: None, use_cache: false };
            b.iter(|| sweep(&engine, points.clone(), &config))
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("cached"),
        &points,
        |b, points| {
            let config = SweepConfig { threads: None, use_cache: true };
            // Warm the memo table so the measured iterations hit it.
            sweep(&engine, points.clone(), &config);
            b.iter(|| sweep(&engine, points.clone(), &config))
        },
    );

    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
