//! Table 6 bench: roadmap construction and the scenario derivations,
//! plus the printed reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::tables;
use ucore_itrs::Roadmap;

fn bench(c: &mut Criterion) {
    c.bench_function("table6/roadmap_and_scenarios", |b| {
        b.iter(|| {
            let base = Roadmap::itrs_2009();
            let variants = [
                base.with_bandwidth_gb_s(90.0),
                base.with_bandwidth_gb_s(1000.0),
                base.with_core_area_mm2(216.0),
                base.with_power_budget_w(200.0),
                base.with_power_budget_w(10.0),
            ];
            black_box(variants.iter().map(|r| r.nodes().len()).sum::<usize>())
        })
    });
    println!("{}", tables::table6());
}

criterion_group!(benches, bench);
criterion_main!(benches);
