//! Figure 6 bench: the full FFT-1024 projection (four panels, six
//! designs, five nodes, r swept to 16).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::figures;
use ucore_project::figures::figure6;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(20);
    group.bench_function("fft1024_projection", |b| {
        b.iter(|| black_box(figure6().expect("projection succeeds")))
    });
    group.finish();
    println!("{}", figures::figure6().expect("projection succeeds"));
}

criterion_group!(benches, bench);
criterion_main!(benches);
