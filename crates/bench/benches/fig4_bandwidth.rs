//! Figure 4 bench: energy-efficiency series and the bandwidth-counter
//! sweep with the on-chip capacity transition.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::figures;
use ucore_devices::DeviceId;
use ucore_simdev::counters;

fn bench(c: &mut Criterion) {
    c.bench_function("fig4/bandwidth_counter_sweep", |b| {
        b.iter(|| {
            let sweep = counters::fft_bandwidth_sweep(DeviceId::Gtx285, true);
            black_box(sweep.len())
        })
    });
    println!("{}", figures::figure4());
}

criterion_group!(benches, bench);
criterion_main!(benches);
