//! Figure 7 bench: the MMM projection (seven designs, ASIC exempt from
//! the bandwidth bound).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::figures;
use ucore_project::figures::figure7;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(20);
    group.bench_function("mmm_projection", |b| {
        b.iter(|| black_box(figure7().expect("projection succeeds")))
    });
    group.finish();
    println!("{}", figures::figure7().expect("projection succeeds"));
}

criterion_group!(benches, bench);
criterion_main!(benches);
