//! Figure 5 bench: ITRS trend-series construction and interpolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::figures;
use ucore_itrs::{Trend, TrendSeries};

fn bench(c: &mut Criterion) {
    c.bench_function("fig5/trend_series", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for trend in Trend::ALL {
                let series = TrendSeries::itrs_2009(trend);
                for year in 2011..=2022 {
                    acc += series.at(year).unwrap_or(0.0);
                }
            }
            black_box(acc)
        })
    });
    println!("{}", figures::figure5());
}

criterion_group!(benches, bench);
criterion_main!(benches);
