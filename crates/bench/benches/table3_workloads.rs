//! Table 3 bench: workload characterization (FLOP counts, intensities),
//! plus the printed reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucore_bench::tables;
use ucore_workloads::Workload;

fn bench(c: &mut Criterion) {
    c.bench_function("table3/characterize_all", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for log2 in 4..=20 {
                let fft = Workload::fft(1usize << log2).expect("power of two");
                acc += fft.arithmetic_intensity() + fft.flops_per_unit();
            }
            for n in [64usize, 128, 512, 2048] {
                let mmm = Workload::mmm(n).expect("non-zero");
                acc += mmm.bytes_per_flop();
            }
            acc += Workload::black_scholes().compulsory_bytes_per_unit();
            black_box(acc)
        })
    });
    println!("{}", tables::table3());
}

criterion_group!(benches, bench);
criterion_main!(benches);
