//! # ucore-bench — the reproduction harness
//!
//! One rendering function per table and figure of the paper, consumed by
//! the `repro` binary (`cargo run -p ucore-bench --bin repro -- --all`)
//! and timed by the Criterion benches under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom: model code returns typed errors; `unwrap`/`expect`
// stay legal in `#[cfg(test)]` code only (ucore-lint enforces the same
// contract at the token level).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod experiments;
pub mod figures;
pub mod render;
pub mod scenarios;
pub mod snapshot;
pub mod tables;

pub use render::{Rendered, RenderError, Target};

/// Renders every table and figure in order, as the `--all` flag does.
///
/// # Errors
///
/// Propagates any projection/calibration error as a boxed error (none
/// occur with the shipped calibration data).
pub fn render_all() -> Result<String, Box<dyn std::error::Error>> {
    let mut out = String::new();
    out.push_str(&tables::table1()?);
    out.push('\n');
    for render in [
        tables::table2,
        tables::table3,
        tables::table4,
        tables::table6,
    ] {
        out.push_str(&render());
        out.push('\n');
    }
    out.push_str(&tables::table5()?);
    out.push('\n');
    for render in [
        figures::figure2 as fn() -> String,
        figures::figure3,
        figures::figure4,
        figures::figure5,
    ] {
        out.push_str(&render());
        out.push('\n');
    }
    out.push_str(&figures::figure6()?);
    out.push_str(&figures::figure7()?);
    out.push_str(&figures::figure8()?);
    out.push_str(&figures::figure9()?);
    out.push_str(&figures::figure10()?);
    out.push_str(&figures::figure11()?);
    for n in 1..=6 {
        out.push_str(&scenarios::scenario(n)?);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_all_mentions_every_artifact() {
        let all = super::render_all().unwrap();
        for needle in [
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
            "Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
            "Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
            "Scenario 1", "Scenario 6",
        ] {
            assert!(all.contains(needle), "missing {needle}");
        }
    }
}
