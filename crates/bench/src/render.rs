//! One shared rendering path for every deliverable artifact.
//!
//! The `repro` CLI and the `ucore-serve` daemon answer the same
//! questions — "give me table 5", "give me figure-6 as JSON" — and the
//! differential contract between them is *byte identity*: a served
//! response body must equal the bytes `repro` writes to stdout for the
//! same target. The only way to keep that guarantee honest as targets
//! grow is to render both from one function, so this module owns the
//! target → bytes mapping and both front ends delegate to it.
//!
//! Errors are *typed* here ([`RenderError`]), without the CLI usage
//! banner: `repro` appends its usage text to bad-target errors (its
//! historical stderr bytes), while the server maps the same variants to
//! taxonomy-coded JSON error responses.

use crate::{figures, scenarios, tables};
use std::fmt;

/// A renderable artifact, addressed the way both front ends spell it
/// (`repro --table 5` / `GET /table/5`; `repro --json figure-6` /
/// `GET /json/figure-6`). Values are kept as the caller's raw strings
/// so error messages echo exactly what was asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A paper table, `"1"`-`"6"`.
    Table(String),
    /// An ASCII-rendered figure, `"2"`-`"11"`.
    Figure(String),
    /// A §6.2 scenario, `"1"`-`"6"`.
    Scenario(String),
    /// A projection figure as pretty-printed JSON, `"figure-6"` -
    /// `"figure-11"`.
    Json(String),
    /// A projection figure as CSV, `"figure-6"` - `"figure-11"`.
    Csv(String),
}

/// The rendered bytes plus the health the render observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rendered {
    /// The exact bytes `repro` would write to stdout for this target
    /// (trailing newline included).
    pub body: String,
    /// Contained sweep failures inside this render, for projection
    /// targets (`Json`/`Csv`, whose [`ucore_project::FigureData`]
    /// carries health). `None` for targets without per-render health.
    pub points_failed: Option<u64>,
}

/// Why a render failed.
#[derive(Debug)]
pub enum RenderError {
    /// The table number is not `1`-`6`.
    UnknownTable(String),
    /// The figure number is not `2`-`11`.
    UnknownFigure(String),
    /// The scenario number is not `1`-`6`.
    UnknownScenario(String),
    /// The JSON/CSV target is not `figure-6`-`figure-11`.
    UnknownProjection(String),
    /// The model itself failed (projection, calibration, or
    /// serialization) — already stringified so the error is `Send`.
    Model(String),
}

impl RenderError {
    /// Whether the failure is a bad *target* (the caller asked for
    /// something that does not exist) as opposed to a model failure.
    /// `repro` appends its usage banner to these; the server answers
    /// 404.
    pub fn is_bad_target(&self) -> bool {
        !matches!(self, RenderError::Model(_))
    }
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::UnknownTable(n) => {
                write!(f, "table {n} is not one of 1-6")
            }
            RenderError::UnknownFigure(n) => {
                write!(f, "figure {n} is not one of 2-11")
            }
            RenderError::UnknownScenario(n) => {
                write!(f, "scenario {n:?} is not one of 1-6")
            }
            RenderError::UnknownProjection(t) => {
                write!(f, "unknown projection target {t}")
            }
            RenderError::Model(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for RenderError {}

/// Stringifies a model-layer failure into the `Send`-able variant.
fn model_error(e: impl fmt::Display) -> RenderError {
    RenderError::Model(e.to_string())
}

/// The projection data behind a `figure-N` JSON/CSV target.
///
/// # Errors
///
/// [`RenderError::UnknownProjection`] for a target outside
/// `figure-6`-`figure-11`, [`RenderError::Model`] for projection
/// failures.
pub fn projection(which: &str) -> Result<ucore_project::FigureData, RenderError> {
    match which {
        "figure-6" => ucore_project::figures::figure6().map_err(model_error),
        "figure-7" => ucore_project::figures::figure7().map_err(model_error),
        "figure-8" => ucore_project::figures::figure8().map_err(model_error),
        "figure-9" => ucore_project::figures::figure9().map_err(model_error),
        "figure-10" => ucore_project::figures::figure10().map_err(model_error),
        "figure-11" => ucore_project::figures::figure11().map_err(model_error),
        other => Err(RenderError::UnknownProjection(other.to_string())),
    }
}

/// Renders one target to the exact stdout bytes `repro` prints for it.
///
/// # Errors
///
/// The `Unknown*` variants for a target that does not exist;
/// [`RenderError::Model`] when the projection, calibration, or JSON
/// serialization fails.
pub fn render(target: &Target) -> Result<Rendered, RenderError> {
    let no_health = |body: String| Rendered { body, points_failed: None };
    match target {
        Target::Table(n) => {
            let body = match n.as_str() {
                "1" => tables::table1().map_err(model_error)?,
                "2" => tables::table2(),
                "3" => tables::table3(),
                "4" => tables::table4(),
                "5" => tables::table5().map_err(model_error)?,
                "6" => tables::table6(),
                other => return Err(RenderError::UnknownTable(other.to_string())),
            };
            Ok(no_health(format!("{body}\n")))
        }
        Target::Figure(n) => {
            let body = match n.as_str() {
                "2" => figures::figure2(),
                "3" => figures::figure3(),
                "4" => figures::figure4(),
                "5" => figures::figure5(),
                "6" => figures::figure6().map_err(model_error)?,
                "7" => figures::figure7().map_err(model_error)?,
                "8" => figures::figure8().map_err(model_error)?,
                "9" => figures::figure9().map_err(model_error)?,
                "10" => figures::figure10().map_err(model_error)?,
                "11" => figures::figure11().map_err(model_error)?,
                other => return Err(RenderError::UnknownFigure(other.to_string())),
            };
            Ok(no_health(format!("{body}\n")))
        }
        Target::Scenario(n) => {
            let num: u8 = n
                .parse()
                .map_err(|_| RenderError::UnknownScenario(n.clone()))?;
            let body = scenarios::scenario(num).map_err(model_error)?;
            Ok(no_health(format!("{body}\n")))
        }
        Target::Json(which) => {
            let fig = projection(which)?;
            let json = serde_json::to_string_pretty(&fig).map_err(model_error)?;
            Ok(Rendered {
                body: format!("{json}\n"),
                points_failed: Some(fig.health.points_failed as u64),
            })
        }
        Target::Csv(which) => {
            let fig = projection(which)?;
            Ok(Rendered {
                body: format!("{}\n", figures::figure_csv(&fig)),
                points_failed: Some(fig.health.points_failed as u64),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_targets_are_typed_and_usage_worthy() {
        let cases: [(Target, &str); 4] = [
            (Target::Table("7".into()), "table 7 is not one of 1-6"),
            (Target::Figure("12".into()), "figure 12 is not one of 2-11"),
            (Target::Scenario("x".into()), "scenario \"x\" is not one of 1-6"),
            (
                Target::Json("figure-2".into()),
                "unknown projection target figure-2",
            ),
        ];
        for (target, msg) in cases {
            let err = render(&target).unwrap_err();
            assert!(err.is_bad_target(), "{target:?}");
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn json_target_reports_health_and_trailing_newline() {
        let r = render(&Target::Json("figure-6".into())).unwrap();
        assert_eq!(r.points_failed, Some(0));
        assert!(r.body.ends_with('\n'));
        assert!(!r.body.ends_with("\n\n"));
        assert!(r.body.starts_with('{'));
    }

    #[test]
    fn table_and_scenario_bodies_match_their_renderers() {
        let t5 = render(&Target::Table("5".into())).unwrap();
        assert_eq!(t5.body, format!("{}\n", tables::table5().unwrap()));
        assert_eq!(t5.points_failed, None);
        let s1 = render(&Target::Scenario("1".into())).unwrap();
        assert_eq!(s1.body, format!("{}\n", scenarios::scenario(1).unwrap()));
    }
}
