//! Figure renderers: the measured-baseline figures (2–4), the ITRS
//! trends (5), and the projections (6–10).

use ucore_devices::{DeviceId, TechNode};
use ucore_itrs::{Trend, TrendSeries};
use ucore_project::{figures as proj, FigureData};
use ucore_report::Chart;
use ucore_simdev::{counters, SimLab};

/// The devices plotted in the FFT baseline figures.
const FFT_DEVICES: [(DeviceId, char); 5] = [
    (DeviceId::CoreI7_960, 'i'),
    (DeviceId::V6Lx760, 'L'),
    (DeviceId::Gtx285, '2'),
    (DeviceId::Gtx480, '4'),
    (DeviceId::Asic, 'A'),
];

fn fft_size_labels() -> Vec<String> {
    (4..=20).map(|l| l.to_string()).collect()
}

/// Figure 2: FFT performance, raw and area-normalized (log y).
pub fn figure2() -> String {
    let lab = SimLab::paper();
    let mut raw = Chart::new(
        "Figure 2a: FFT performance (pseudo-GFLOP/s, log scale; x = log2 N)",
        fft_size_labels(),
        68,
        16,
    );
    raw.log_y();
    let mut norm = Chart::new(
        "Figure 2b: area-normalized FFT performance at 40nm (per mm2, log scale)",
        fft_size_labels(),
        68,
        16,
    );
    norm.log_y();
    for (device, glyph) in FFT_DEVICES {
        let sweep = lab.fft_sweep(device);
        if sweep.is_empty() {
            continue;
        }
        raw.series(
            device.label(),
            glyph,
            sweep.iter().map(|m| Some(m.perf)).collect(),
        );
        norm.series(
            device.label(),
            glyph,
            sweep.iter().map(|m| Some(m.perf_per_mm2)).collect(),
        );
    }
    format!("{raw}\n{norm}")
}

/// Figure 3: the FFT power breakdown at three representative sizes.
pub fn figure3() -> String {
    let lab = SimLab::paper();
    let mut out = String::from(
        "Figure 3: FFT power consumption breakdown (watts; sizes 2^6, 2^10, 2^14)\n",
    );
    let mut table = ucore_report::Table::new(vec![
        "device".into(),
        "log2N".into(),
        "core dyn".into(),
        "core leak".into(),
        "uncore stat".into(),
        "uncore dyn".into(),
        "unknown".into(),
        "total".into(),
    ]);
    for col in 1..=7 {
        table.align(col, ucore_report::Align::Right);
    }
    const FFT_SIZES: [(u32, ucore_workloads::Workload); 3] = [
        (6, ucore_workloads::Workload::fft_const::<64>()),
        (10, ucore_workloads::Workload::fft_const::<1024>()),
        (14, ucore_workloads::Workload::fft_const::<16384>()),
    ];
    for (device, _) in FFT_DEVICES {
        for (log2, workload) in FFT_SIZES {
            let Ok(m) = lab.measure(device, workload) else {
                continue;
            };
            let b = m.breakdown;
            table.row(vec![
                device.label().into(),
                log2.to_string(),
                format!("{:.1}", b.core_dynamic),
                format!("{:.1}", b.core_leakage),
                format!("{:.1}", b.uncore_static),
                format!("{:.1}", b.uncore_dynamic),
                format!("{:.1}", b.unknown),
                format!("{:.1}", b.total()),
            ]);
        }
    }
    out.push_str(&table.to_string());
    out
}

/// Figure 4: FFT energy efficiency (top) and the GTX285
/// compulsory-vs-measured bandwidth sweep (bottom).
pub fn figure4() -> String {
    let lab = SimLab::paper();
    let mut eff = Chart::new(
        "Figure 4a: FFT energy efficiency at 40nm (pseudo-GFLOP/J, log scale)",
        fft_size_labels(),
        68,
        14,
    );
    eff.log_y();
    for (device, glyph) in FFT_DEVICES {
        let sweep = lab.fft_sweep(device);
        if sweep.is_empty() {
            continue;
        }
        eff.series(
            device.label(),
            glyph,
            sweep.iter().map(|m| Some(m.perf_per_joule)).collect(),
        );
    }

    let mut bw = Chart::new(
        "Figure 4b: GTX285 FFT bandwidth (GB/s): compulsory vs measured",
        fft_size_labels(),
        68,
        14,
    );
    let sweep = counters::fft_bandwidth_sweep(DeviceId::Gtx285, true);
    bw.series(
        "compulsory",
        'c',
        sweep.iter().map(|r| Some(r.compulsory_gb_s)).collect(),
    );
    bw.series(
        "measured",
        'm',
        sweep.iter().map(|r| Some(r.measured_gb_s)).collect(),
    );
    format!("{eff}\n{bw}")
}

/// Figure 5: the ITRS 2009 normalized trends.
pub fn figure5() -> String {
    let years: Vec<String> = (2011u32..=2022).map(|y| (y % 100).to_string()).collect();
    let mut chart = Chart::new(
        "Figure 5: ITRS 2009 scaling projections (normalized to 2011; x = year '11-'22)",
        years,
        60,
        14,
    );
    for (trend, glyph) in [
        (Trend::PackagePins, 'p'),
        (Trend::Vdd, 'v'),
        (Trend::GateCapacitance, 'g'),
        (Trend::CombinedPowerReduction, 'C'),
    ] {
        let series = TrendSeries::itrs_2009(trend);
        chart.series(
            trend.label(),
            glyph,
            series.points().iter().map(|p| Some(p.value)).collect(),
        );
    }
    chart.to_string()
}

/// Renders any projection figure with a linear y-axis — the generic
/// entry point used by the scenario renderers.
pub fn render_figure(fig: &FigureData) -> String {
    render_projection(fig, false)
}

/// Exports a projection figure as CSV: one row per
/// `(f, design, node)` point with the speedup, energy and limiter.
pub fn figure_csv(fig: &FigureData) -> String {
    let mut w = ucore_report::CsvWriter::new(vec![
        "figure".into(),
        "f".into(),
        "design".into(),
        "node".into(),
        "speedup".into(),
        "energy".into(),
        "limiter".into(),
    ]);
    for panel in &fig.panels {
        for series in &panel.series {
            for p in &series.points {
                w.row(vec![
                    fig.id.clone(),
                    panel.f.to_string(),
                    series.label.clone(),
                    p.node.to_string(),
                    format!("{:.6}", p.speedup),
                    format!("{:.6}", p.energy),
                    format!("{:?}", p.limiter).to_lowercase(),
                ]);
            }
        }
    }
    w.finish()
}

/// Renders a projection figure as one chart per panel.
fn render_projection(fig: &FigureData, log_y: bool) -> String {
    let nodes: Vec<String> = TechNode::PROJECTION.iter().map(|n| n.to_string()).collect();
    let mut out = format!("{} ({})\n", fig.title, fig.id);
    out.push_str("(limiters per point are in the JSON export: area / power=dashed / bandwidth=solid)\n");
    for panel in &fig.panels {
        let mut chart = Chart::new(&format!("f = {}", panel.f), nodes.clone(), 56, 14);
        if log_y {
            chart.log_y();
        }
        for series in &panel.series {
            let glyph = series
                .label
                .chars()
                .nth(1)
                .unwrap_or('?');
            let values: Vec<Option<f64>> = TechNode::PROJECTION
                .iter()
                .map(|node| {
                    series.points.iter().find(|p| p.node == *node).map(|p| {
                        match fig.metric {
                            ucore_project::results::Metric::Speedup => p.speedup,
                            ucore_project::results::Metric::Energy => p.energy,
                        }
                    })
                })
                .collect();
            chart.series(&series.label, glyph, values);
        }
        out.push_str(&chart.to_string());
        out.push('\n');
    }
    out
}

/// Figure 6: the FFT-1024 projection.
///
/// # Errors
///
/// Propagates projection errors (none with the shipped data).
pub fn figure6() -> Result<String, Box<dyn std::error::Error>> {
    let fig = proj::figure6()?;
    Ok(format!("Figure 6: {}", render_projection(&fig, false)))
}

/// Figure 7: the MMM projection.
///
/// # Errors
///
/// Propagates projection errors.
pub fn figure7() -> Result<String, Box<dyn std::error::Error>> {
    let fig = proj::figure7()?;
    Ok(format!("Figure 7: {}", render_projection(&fig, true)))
}

/// Figure 8: the Black-Scholes projection.
///
/// # Errors
///
/// Propagates projection errors.
pub fn figure8() -> Result<String, Box<dyn std::error::Error>> {
    let fig = proj::figure8()?;
    Ok(format!("Figure 8: {}", render_projection(&fig, false)))
}

/// Figure 9: FFT-1024 at 1 TB/s.
///
/// # Errors
///
/// Propagates projection errors.
pub fn figure9() -> Result<String, Box<dyn std::error::Error>> {
    let fig = proj::figure9()?;
    Ok(format!("Figure 9: {}", render_projection(&fig, false)))
}

/// Figure 10: the MMM energy projection.
///
/// # Errors
///
/// Propagates projection errors.
pub fn figure10() -> Result<String, Box<dyn std::error::Error>> {
    let fig = proj::figure10()?;
    Ok(format!("Figure 10: {}", render_projection(&fig, false)))
}

/// Figure 11: the composite-workload portfolio projection (shared
/// U-cores vs Multi-Amdahl split portfolios).
///
/// # Errors
///
/// Propagates projection errors.
pub fn figure11() -> Result<String, Box<dyn std::error::Error>> {
    let fig = proj::figure11()?;
    Ok(format!("Figure 11: {}", render_projection(&fig, true)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_figures_render() {
        assert!(figure2().contains("ASIC"));
        assert!(figure3().contains("uncore"));
        assert!(figure4().contains("compulsory"));
        assert!(figure5().contains("Package pins"));
    }

    #[test]
    fn projection_figures_render() {
        let f6 = figure6().unwrap();
        assert!(f6.contains("f = 0.999"));
        assert!(f6.contains("ASIC"));
        let f10 = figure10().unwrap();
        assert!(f10.contains("f = 0.99"));
    }
}
