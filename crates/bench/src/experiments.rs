//! Machine-generated EXPERIMENTS.md-style records: paper-published
//! values vs this reproduction's, as markdown.

use ucore_calibrate::{Table5, WorkloadColumn};
use ucore_core::ParallelFraction;
use ucore_devices::{DeviceId, TechNode};
use ucore_project::{figures, DesignId, ProjectionEngine, Scenario};
use ucore_report::MarkdownTable;

/// The published Table 5, used as the comparison baseline.
fn published_table5() -> Vec<(DeviceId, WorkloadColumn, f64, f64)> {
    use DeviceId::*;
    use WorkloadColumn::*;
    vec![
        (Gtx285, Mmm, 3.41, 0.74),
        (Gtx285, Bs, 17.0, 0.57),
        (Gtx285, Fft64, 2.42, 0.59),
        (Gtx285, Fft1024, 2.88, 0.63),
        (Gtx285, Fft16384, 3.75, 0.89),
        (Gtx480, Mmm, 1.83, 0.77),
        (Gtx480, Fft64, 1.56, 0.39),
        (Gtx480, Fft1024, 2.20, 0.47),
        (Gtx480, Fft16384, 2.83, 0.66),
        (R5870, Mmm, 8.47, 1.27),
        (V6Lx760, Mmm, 0.75, 0.31),
        (V6Lx760, Bs, 5.68, 0.26),
        (V6Lx760, Fft64, 2.81, 0.29),
        (V6Lx760, Fft1024, 2.02, 0.29),
        (V6Lx760, Fft16384, 3.02, 0.37),
        (Asic, Mmm, 27.4, 0.79),
        (Asic, Bs, 482.0, 4.75),
        (Asic, Fft64, 733.0, 5.34),
        (Asic, Fft1024, 489.0, 4.96),
        (Asic, Fft16384, 689.0, 6.38),
    ]
}

/// A markdown comparison of every published Table 5 cell against the
/// derived value, with the relative error.
///
/// # Errors
///
/// Propagates calibration failures (none with the shipped data).
pub fn table5_comparison() -> Result<String, Box<dyn std::error::Error>> {
    let derived = Table5::derive()?;
    let mut t = MarkdownTable::new(vec![
        "device".into(),
        "workload".into(),
        "mu (paper)".into(),
        "mu (derived)".into(),
        "mu err".into(),
        "phi (paper)".into(),
        "phi (derived)".into(),
        "phi err".into(),
    ]);
    let mut worst: f64 = 0.0;
    for (device, column, mu_pub, phi_pub) in published_table5() {
        let u = derived
            .ucore(device, column)
            .ok_or_else(|| format!("missing cell {device:?} {column}"))?;
        let mu_err = (u.mu() - mu_pub).abs() / mu_pub;
        let phi_err = (u.phi() - phi_pub).abs() / phi_pub;
        worst = worst.max(mu_err).max(phi_err);
        t.row(vec![
            device.label().into(),
            column.label().into(),
            format!("{mu_pub}"),
            format!("{:.3}", u.mu()),
            format!("{:.2}%", mu_err * 100.0),
            format!("{phi_pub}"),
            format!("{:.3}", u.phi()),
            format!("{:.2}%", phi_err * 100.0),
        ]);
    }
    Ok(format!(
        "### Table 5: paper vs derived\n\n{t}\nWorst relative error: {:.2}%\n",
        worst * 100.0
    ))
}

/// A markdown record of the projection-figure ceilings (the numbers the
/// EXPERIMENTS.md shape checks quote).
///
/// # Errors
///
/// Propagates projection failures.
pub fn figure_ceilings() -> Result<String, Box<dyn std::error::Error>> {
    let fig6 = figures::figure6()?;
    let fig7 = figures::figure7()?;
    let fig8 = figures::figure8()?;
    let mut t = MarkdownTable::new(vec![
        "figure".into(),
        "f".into(),
        "design".into(),
        "11nm speedup".into(),
        "paper's axis scale".into(),
    ]);
    let mut push = |fig: &ucore_project::FigureData,
                    f: f64,
                    label: &str,
                    paper: &str| {
        if let Some(v) = fig.value(f, label, TechNode::N11) {
            t.row(vec![
                fig.id.clone(),
                f.to_string(),
                label.into(),
                format!("{v:.1}"),
                paper.into(),
            ]);
        }
    };
    push(&fig6, 0.999, "ASIC", "~65-70");
    push(&fig6, 0.99, "ASIC", "~55-60");
    push(&fig7, 0.999, "ASIC", "~900-1000");
    push(&fig7, 0.999, "R5870", "~150-250");
    push(&fig8, 0.9, "ASIC", "~30-35");
    Ok(format!("### Projection ceilings: paper vs reproduced\n\n{t}"))
}

/// The §6.2 scenario verdicts, evaluated live.
///
/// # Errors
///
/// Propagates projection failures.
pub fn scenario_verdicts() -> Result<String, Box<dyn std::error::Error>> {
    let f99 = ParallelFraction::new(0.99)?;
    let baseline = ProjectionEngine::new(Scenario::baseline())?;
    let ten_watt = ProjectionEngine::new(Scenario::s5_low_power())?;
    let asic = DesignId::Het(DeviceId::Asic);
    let gpu = DesignId::Het(DeviceId::Gtx480);
    let col = WorkloadColumn::Fft1024;

    let keep = |e: &ProjectionEngine, d: DesignId| {
        e.speedup_at(d, col, TechNode::N11, f99).unwrap_or(f64::NAN)
    };
    let mut t = MarkdownTable::new(vec![
        "claim".into(),
        "quantity".into(),
        "holds".into(),
    ]);
    let asic_keep = keep(&ten_watt, asic) / keep(&baseline, asic);
    let gpu_keep = keep(&ten_watt, gpu) / keep(&baseline, gpu);
    t.row(vec![
        "at 10 W only the ASIC stays near its 100 W performance".into(),
        format!("ASIC keeps {:.0}%, GTX480 keeps {:.0}%", asic_keep * 100.0, gpu_keep * 100.0),
        (asic_keep > 2.0 * gpu_keep).to_string(),
    ]);
    Ok(format!("### Scenario spot-checks\n\n{t}"))
}

/// The paper's headline crossovers, located live and rendered.
///
/// # Errors
///
/// Propagates projection failures.
pub fn crossovers() -> Result<String, Box<dyn std::error::Error>> {
    let engine = ProjectionEngine::new(Scenario::baseline())?;
    let mut t = MarkdownTable::new(vec!["crossover".into(), "located at".into()]);
    for record in ucore_project::paper_crossovers(&engine)? {
        t.row(vec![
            record.description,
            record
                .value
                .map(|v| format!("{v:.4}"))
                .unwrap_or_else(|| "not reached".into()),
        ]);
    }
    Ok(format!("### Crossovers, located programmatically\n\n{t}"))
}

/// The full `--experiments` export.
///
/// # Errors
///
/// Propagates any generation failure.
pub fn render() -> Result<String, Box<dyn std::error::Error>> {
    Ok(format!(
        "# Reproduction record (generated by `repro --experiments`)\n\n{}\n{}\n{}\n{}",
        table5_comparison()?,
        figure_ceilings()?,
        scenario_verdicts()?,
        crossovers()?
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn export_contains_all_sections_and_small_errors() {
        let report = super::render().unwrap();
        assert!(report.contains("### Table 5"));
        assert!(report.contains("### Projection ceilings"));
        assert!(report.contains("### Scenario spot-checks"));
        assert!(report.contains("true"));
        // The worst Table 5 error stays within rounding tolerance.
        let worst_line = report
            .lines()
            .find(|l| l.starts_with("Worst relative error"))
            .unwrap();
        let pct: f64 = worst_line
            .trim_start_matches("Worst relative error: ")
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct < 2.0, "worst error {pct}%");
    }
}
