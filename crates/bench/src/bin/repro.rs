//! The reproduction driver: prints any table or figure of the paper.
//!
//! ```text
//! repro --all                  # everything, in paper order
//! repro --table 5              # one table (1-6)
//! repro --figure 6             # one figure (2-10)
//! repro --scenario 3           # one 6.2 scenario (1-6)
//! repro --json figure-6        # machine-readable figure data
//! repro --stats --figure 6     # + sweep/cache counters on stderr
//! repro --max-failures 1 ...   # tolerate one contained sweep failure
//! ```
//!
//! `--stats` composes with any other flag. The counters go to stderr so
//! that stdout stays byte-identical with and without the flag (the
//! `--json` exports are consumed by tools that diff them).
//!
//! Sweep evaluation is fault-contained: a panicking design point
//! degrades that one point instead of aborting the figure. `repro`
//! polices the damage: if more points failed than `--max-failures`
//! allows (default 0 — goldens stay strict), it prints a structured
//! diagnostic to stderr and exits nonzero even though output was
//! rendered.

use std::process::ExitCode;
use std::time::{Duration, Instant};
use ucore_bench::{figures, scenarios, tables};

fn usage() -> &'static str {
    "usage: repro [--stats] [--max-failures N] [--all | --experiments | --table N | --figure N | --scenario N | --json figure-N | --csv figure-N]\n\
     tables: 1-6; figures: 2-10; scenarios: 1-6; json/csv: figures 6-10\n\
     --stats: print evaluation/cache/sweep counters to stderr\n\
     --max-failures N: exit nonzero if more than N sweep points fail (default 0)"
}

/// Every flag the driver understands, for the "did you mean" hint.
const KNOWN_FLAGS: &[&str] = &[
    "--all",
    "--csv",
    "--experiments",
    "--figure",
    "--help",
    "--json",
    "--max-failures",
    "--scenario",
    "--stats",
    "--table",
];

/// Edit distance between two flags, for near-miss suggestions.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest known flag, when close enough to be a plausible typo.
fn did_you_mean(flag: &str) -> Option<&'static str> {
    KNOWN_FLAGS
        .iter()
        .map(|&k| (levenshtein(flag, k), k))
        .min()
        .filter(|&(d, _)| d <= 3)
        .map(|(_, k)| k)
}

/// What the driver was asked to print.
enum Command {
    All,
    Experiments,
    Help,
    Table(String),
    Figure(String),
    Scenario(String),
    Json(String),
    Csv(String),
}

struct Cli {
    stats: bool,
    max_failures: u64,
    command: Command,
}

fn parse(args: Vec<String>) -> Result<Cli, String> {
    let mut stats = false;
    let mut max_failures: u64 = 0;
    let mut command: Option<Command> = None;
    let set = |slot: &mut Option<Command>, c: Command| -> Result<(), String> {
        if slot.is_some() {
            return Err(format!("only one command per invocation\n{}", usage()));
        }
        *slot = Some(c);
        Ok(())
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--stats" => stats = true,
            "--help" | "-h" => set(&mut command, Command::Help)?,
            "--all" => set(&mut command, Command::All)?,
            "--experiments" => set(&mut command, Command::Experiments)?,
            "--max-failures" => {
                let v = value_for("--max-failures")?;
                max_failures = v.parse().map_err(|_| {
                    format!(
                        "--max-failures value {v:?} is not a non-negative integer\n{}",
                        usage()
                    )
                })?;
            }
            "--table" => {
                let v = value_for("--table")?;
                set(&mut command, Command::Table(v))?;
            }
            "--figure" => {
                let v = value_for("--figure")?;
                set(&mut command, Command::Figure(v))?;
            }
            "--scenario" => {
                let v = value_for("--scenario")?;
                set(&mut command, Command::Scenario(v))?;
            }
            "--json" => {
                let v = value_for("--json")?;
                set(&mut command, Command::Json(v))?;
            }
            "--csv" => {
                let v = value_for("--csv")?;
                set(&mut command, Command::Csv(v))?;
            }
            other => {
                let kind = if other.starts_with('-') { "flag" } else { "argument" };
                let hint = did_you_mean(other)
                    .map(|s| format!(" (did you mean {s}?)"))
                    .unwrap_or_default();
                return Err(format!("unknown {kind} {other:?}{hint}\n{}", usage()));
            }
        }
    }
    Ok(Cli {
        stats,
        max_failures,
        command: command.unwrap_or(Command::All),
    })
}

fn projection(which: &str) -> Result<ucore_project::FigureData, Box<dyn std::error::Error>> {
    Ok(match which {
        "figure-6" => ucore_project::figures::figure6()?,
        "figure-7" => ucore_project::figures::figure7()?,
        "figure-8" => ucore_project::figures::figure8()?,
        "figure-9" => ucore_project::figures::figure9()?,
        "figure-10" => ucore_project::figures::figure10()?,
        other => return Err(format!("unknown projection target {other}\n{}", usage()).into()),
    })
}

fn print_stats(total: Duration) {
    let cache = ucore_core::EvalCache::global().stats();
    let totals = ucore_project::outcome_totals();
    eprintln!("--- repro --stats ---");
    for (i, s) in ucore_project::sweep::drain_phase_log().iter().enumerate() {
        eprintln!(
            "sweep phase {i}: {} points ({} ok, {} infeasible, {} failed) on {} threads, \
             {} cache hits, {} misses, {:.3} ms",
            s.points,
            s.points_ok,
            s.points_infeasible,
            s.points_failed,
            s.threads,
            s.cache_hits,
            s.cache_misses,
            s.wall.as_secs_f64() * 1e3,
        );
    }
    eprintln!(
        "points: {} ok, {} infeasible, {} failed",
        totals.ok, totals.infeasible, totals.failed,
    );
    eprintln!("evaluations run: {}", cache.misses);
    eprintln!(
        "cache: {} hits, {} misses, {} entries, {:.1}% hit rate",
        cache.hits,
        cache.misses,
        cache.entries,
        cache.hit_rate() * 100.0,
    );
    eprintln!("total wall time: {:.3} ms", total.as_secs_f64() * 1e3);
}

/// The structured diagnostic printed when contained failures exceed the
/// `--max-failures` threshold.
fn print_failure_diagnostic(max_failures: u64) {
    let totals = ucore_project::outcome_totals();
    eprintln!("error: sweep failures exceeded --max-failures");
    eprintln!("  points_failed: {}", totals.failed);
    eprintln!("  max_failures: {max_failures}");
    eprintln!("  points_ok: {}", totals.ok);
    eprintln!("  points_infeasible: {}", totals.infeasible);
    for d in ucore_project::failure_diagnostics() {
        eprintln!("  failure at point {}: {}", d.index, d.panic_msg);
    }
}

fn run(command: &Command) -> Result<(), Box<dyn std::error::Error>> {
    let out = match command {
        Command::Help => {
            println!("{}", usage());
            return Ok(());
        }
        Command::All => {
            print!("{}", ucore_bench::render_all()?);
            return Ok(());
        }
        Command::Experiments => {
            print!("{}", ucore_bench::experiments::render()?);
            return Ok(());
        }
        Command::Table(n) => match n.as_str() {
            "1" => tables::table1(),
            "2" => tables::table2(),
            "3" => tables::table3(),
            "4" => tables::table4(),
            "5" => tables::table5()?,
            "6" => tables::table6(),
            other => {
                return Err(format!("table {other} is not one of 1-6\n{}", usage()).into())
            }
        },
        Command::Figure(n) => match n.as_str() {
            "2" => figures::figure2(),
            "3" => figures::figure3(),
            "4" => figures::figure4(),
            "5" => figures::figure5(),
            "6" => figures::figure6()?,
            "7" => figures::figure7()?,
            "8" => figures::figure8()?,
            "9" => figures::figure9()?,
            "10" => figures::figure10()?,
            other => {
                return Err(format!("figure {other} is not one of 2-10\n{}", usage()).into())
            }
        },
        Command::Scenario(n) => {
            let n: u8 = n
                .parse()
                .map_err(|_| format!("scenario {n:?} is not one of 1-6\n{}", usage()))?;
            scenarios::scenario(n)?
        }
        Command::Json(which) => serde_json::to_string_pretty(&projection(which)?)?,
        Command::Csv(which) => figures::figure_csv(&projection(which)?),
    };
    println!("{out}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let start = Instant::now();
    let outcome = run(&cli.command);
    if cli.stats {
        print_stats(start.elapsed());
    }
    let code = match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    };
    // Fault-containment accounting: rendering succeeded point-by-point,
    // but the run as a whole is only healthy if contained failures stay
    // within the caller's tolerance.
    let failed = ucore_project::outcome_totals().failed;
    if failed > cli.max_failures {
        print_failure_diagnostic(cli.max_failures);
        return ExitCode::from(2);
    }
    code
}
