//! The reproduction driver: prints any table or figure of the paper.
//!
//! ```text
//! repro --all                  # everything, in paper order
//! repro --table 5              # one table (1-6)
//! repro --figure 6             # one figure (2-11)
//! repro --scenario 3           # one 6.2 scenario (1-6)
//! repro --json figure-6        # machine-readable figure data
//! repro --stats --figure 6     # + sweep/cache counters on stderr
//! repro --max-failures 1 ...   # tolerate one contained sweep failure
//! repro --json figure-6 --out fig6.json   # crash-safe artifact write
//! repro --journal run.jsonl --json figure-6   # durable run
//! repro --journal run.jsonl --resume --json figure-6   # resume it
//! repro --timeout-ms 500 --retries 2 ...   # watchdog + retry policy
//! ```
//!
//! `--stats` composes with any other flag. The counters go to stderr so
//! that stdout stays byte-identical with and without the flag (the
//! `--json` exports are consumed by tools that diff them).
//!
//! Sweep evaluation is fault-contained: a panicking design point
//! degrades that one point instead of aborting the figure. `repro`
//! polices the damage: if more points failed than `--max-failures`
//! allows (default 0 — goldens stay strict), it prints a structured
//! diagnostic to stderr and exits nonzero even though output was
//! rendered.
//!
//! Runs are *durable* on request: `--journal PATH` streams every
//! completed sweep point to an append-only, checksummed journal, and
//! `--resume` replays that journal so a killed run re-evaluates only
//! the missing points — the resumed output is byte-identical to an
//! uninterrupted run. `--out PATH` writes the rendered output through
//! an atomic temp-file+fsync+rename, so an artifact on disk is never
//! half-written.
//!
//! Observability composes the same way `--stats` does: `--metrics PATH`
//! writes a Prometheus-style snapshot of the process metrics registry,
//! `--trace PATH` records structured spans into a bounded ring buffer
//! and writes the binary trace, and `--profile` reduces that trace to a
//! per-phase self/total table on stderr. None of the three perturbs
//! stdout: the rendered figure bytes are identical with and without
//! them, at any thread count.
//!
//! Runs shard across *processes* on request: `--shards N --journal
//! PATH` spawns N worker copies of `repro` (each running with `--shard
//! i/N` against its own `PATH.shard<i>` journal), watches their
//! journal-growth heartbeats, reassigns a crashed or stalled worker's
//! index-range lease with bounded backoff, merges the shard journals
//! deterministically into `PATH`, and renders the figure by replaying
//! the merged journal — byte-identical to a single-process run, even
//! when workers were killed mid-sweep. SIGINT/SIGTERM fsync the active
//! journal before exiting (codes 130/143), so an interrupted worker is
//! always resumable.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use ucore_bench::snapshot;
use ucore_obs::MetricsSnapshot;
use ucore_project::durability::{self, DurabilityConfig, DurabilityGuard};
use ucore_project::faultinject::{self, FaultPlan};
use ucore_project::shard::{self, OrchestratorConfig, ShardSpec};

fn usage() -> &'static str {
    "usage: repro [--stats] [--max-failures N] [--journal PATH] [--resume] \
     [--timeout-ms N] [--retries N] [--out PATH] \
     [--shards N | --shard I/N] [--shard-stall-ms N] [--shard-retries N] \
     [--metrics PATH] [--trace PATH] [--profile] \
     [--bench-dir DIR] [--bench-against PATH] [--bench-current PATH] [--bench-tolerance X] \
     [--all | --experiments | --table N | --figure N | --scenario N | --json figure-N | --csv figure-N \
     | --bench-snapshot TOPIC | --bench-check TOPIC]\n\
     tables: 1-6; figures: 2-11; scenarios: 1-6; json/csv: figures 6-11; bench topics: kernels|sweep|all\n\
     --stats: print evaluation/cache/sweep/durability counters to stderr\n\
     --max-failures N: exit nonzero if more than N sweep points fail (default 0)\n\
     --journal PATH: stream completed sweep points to an append-only checksummed journal\n\
     --resume: replay the journal first; only missing points are re-evaluated (requires --journal)\n\
     --timeout-ms N: per-point watchdog deadline; stuck points become Failed{timeout}\n\
     --retries N: retry failed points up to N times with deterministic backoff (default 0)\n\
     --shards N: orchestrate the run across N worker processes sharing --journal (requires --journal)\n\
     --shard I/N: worker mode — evaluate and journal only shard I's index-range lease (requires --journal)\n\
     --shard-stall-ms N: kill and reassign a worker whose journal stops growing for N ms (default 30000)\n\
     --shard-retries N: reassign a failed lease up to N times before abandoning it (default 3)\n\
     --out PATH: write stdout output to PATH via atomic temp+fsync+rename\n\
     --metrics PATH: write a Prometheus-style metrics snapshot to PATH (atomic)\n\
     --trace PATH: record structured spans and write the binary trace to PATH (atomic)\n\
     --profile: print a per-phase span profile (self/total time) to stderr\n\
     --bench-snapshot TOPIC: measure the topic's benches and write BENCH_<topic>.json (atomic)\n\
     --bench-check TOPIC: re-measure and compare against the recorded BENCH_<topic>.json;\n\
         exits 2 when any bench ran more than the tolerance slower than its baseline\n\
     --bench-dir DIR: directory holding BENCH_*.json files (default .)\n\
     --bench-against PATH: baseline snapshot for --bench-check (single topic only)\n\
     --bench-current PATH: compare this recorded snapshot instead of re-measuring (single topic only)\n\
     --bench-tolerance X: slowdown ratio treated as a regression (default 2.0)"
}

/// Every flag the driver understands, for the "did you mean" hint.
const KNOWN_FLAGS: &[&str] = &[
    "--all",
    "--bench-against",
    "--bench-check",
    "--bench-current",
    "--bench-dir",
    "--bench-snapshot",
    "--bench-tolerance",
    "--csv",
    "--experiments",
    "--figure",
    "--help",
    "--journal",
    "--json",
    "--max-failures",
    "--metrics",
    "--out",
    "--profile",
    "--resume",
    "--retries",
    "--scenario",
    "--shard",
    "--shard-retries",
    "--shard-stall-ms",
    "--shards",
    "--stats",
    "--table",
    "--timeout-ms",
    "--trace",
];

/// Edit distance between two flags, for near-miss suggestions.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest known flag, when close enough to be a plausible typo.
fn did_you_mean(flag: &str) -> Option<&'static str> {
    KNOWN_FLAGS
        .iter()
        .map(|&k| (levenshtein(flag, k), k))
        .min()
        .filter(|&(d, _)| d <= 3)
        .map(|(_, k)| k)
}

/// What the driver was asked to print.
enum Command {
    All,
    Experiments,
    Help,
    Table(String),
    Figure(String),
    Scenario(String),
    Json(String),
    Csv(String),
    BenchSnapshot(String),
    BenchCheck(String),
}

struct Cli {
    stats: bool,
    max_failures: u64,
    journal: Option<PathBuf>,
    resume: bool,
    timeout_ms: Option<u64>,
    retries: u32,
    shards: Option<usize>,
    shard: Option<ShardSpec>,
    shard_stall_ms: u64,
    shard_retries: u32,
    out: Option<PathBuf>,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    profile: bool,
    bench_dir: PathBuf,
    bench_against: Option<PathBuf>,
    bench_current: Option<PathBuf>,
    bench_tolerance: f64,
    command: Command,
}

fn parse(args: Vec<String>) -> Result<Cli, String> {
    let mut stats = false;
    let mut max_failures: u64 = 0;
    let mut journal: Option<PathBuf> = None;
    let mut resume = false;
    let mut timeout_ms: Option<u64> = None;
    let mut retries: u32 = 0;
    let mut shards: Option<usize> = None;
    let mut shard: Option<ShardSpec> = None;
    let mut shard_stall_ms: u64 = shard::DEFAULT_STALL_TIMEOUT.as_millis() as u64;
    let mut shard_retries: u32 = shard::DEFAULT_LEASE_RETRIES;
    let mut out: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut profile = false;
    let mut bench_dir = PathBuf::from(".");
    let mut bench_against: Option<PathBuf> = None;
    let mut bench_current: Option<PathBuf> = None;
    let mut bench_tolerance = ucore_bench::snapshot::DEFAULT_TOLERANCE;
    let mut command: Option<Command> = None;
    let set = |slot: &mut Option<Command>, c: Command| -> Result<(), String> {
        if slot.is_some() {
            return Err(format!("only one command per invocation\n{}", usage()));
        }
        *slot = Some(c);
        Ok(())
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--stats" => stats = true,
            "--resume" => resume = true,
            "--profile" => profile = true,
            "--help" | "-h" => set(&mut command, Command::Help)?,
            "--all" => set(&mut command, Command::All)?,
            "--experiments" => set(&mut command, Command::Experiments)?,
            "--max-failures" => {
                let v = value_for("--max-failures")?;
                max_failures = v.parse().map_err(|_| {
                    format!(
                        "--max-failures value {v:?} is not a non-negative integer\n{}",
                        usage()
                    )
                })?;
            }
            "--journal" => {
                journal = Some(PathBuf::from(value_for("--journal")?));
            }
            "--out" => {
                out = Some(PathBuf::from(value_for("--out")?));
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(value_for("--metrics")?));
            }
            "--trace" => {
                trace = Some(PathBuf::from(value_for("--trace")?));
            }
            "--timeout-ms" => {
                let v = value_for("--timeout-ms")?;
                let ms: u64 = v.parse().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                    format!(
                        "--timeout-ms value {v:?} is not a positive integer\n{}",
                        usage()
                    )
                })?;
                timeout_ms = Some(ms);
            }
            "--retries" => {
                let v = value_for("--retries")?;
                retries = v.parse().map_err(|_| {
                    format!(
                        "--retries value {v:?} is not a non-negative integer\n{}",
                        usage()
                    )
                })?;
            }
            "--shards" => {
                let v = value_for("--shards")?;
                let n: usize = v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--shards value {v:?} is not a positive integer\n{}", usage())
                })?;
                shards = Some(n);
            }
            "--shard" => {
                let v = value_for("--shard")?;
                shard = Some(
                    ShardSpec::parse(&v).map_err(|e| format!("{e}\n{}", usage()))?,
                );
            }
            "--shard-stall-ms" => {
                let v = value_for("--shard-stall-ms")?;
                shard_stall_ms = v.parse().ok().filter(|&ms| ms > 0).ok_or_else(|| {
                    format!(
                        "--shard-stall-ms value {v:?} is not a positive integer\n{}",
                        usage()
                    )
                })?;
            }
            "--shard-retries" => {
                let v = value_for("--shard-retries")?;
                shard_retries = v.parse().map_err(|_| {
                    format!(
                        "--shard-retries value {v:?} is not a non-negative integer\n{}",
                        usage()
                    )
                })?;
            }
            "--table" => {
                let v = value_for("--table")?;
                set(&mut command, Command::Table(v))?;
            }
            "--figure" => {
                let v = value_for("--figure")?;
                set(&mut command, Command::Figure(v))?;
            }
            "--scenario" => {
                let v = value_for("--scenario")?;
                set(&mut command, Command::Scenario(v))?;
            }
            "--json" => {
                let v = value_for("--json")?;
                set(&mut command, Command::Json(v))?;
            }
            "--csv" => {
                let v = value_for("--csv")?;
                set(&mut command, Command::Csv(v))?;
            }
            "--bench-snapshot" => {
                let v = value_for("--bench-snapshot")?;
                set(&mut command, Command::BenchSnapshot(v))?;
            }
            "--bench-check" => {
                let v = value_for("--bench-check")?;
                set(&mut command, Command::BenchCheck(v))?;
            }
            "--bench-dir" => {
                bench_dir = PathBuf::from(value_for("--bench-dir")?);
            }
            "--bench-against" => {
                bench_against = Some(PathBuf::from(value_for("--bench-against")?));
            }
            "--bench-current" => {
                bench_current = Some(PathBuf::from(value_for("--bench-current")?));
            }
            "--bench-tolerance" => {
                let v = value_for("--bench-tolerance")?;
                bench_tolerance =
                    v.parse().ok().filter(|&t: &f64| t.is_finite() && t >= 1.0).ok_or_else(
                        || {
                            format!(
                                "--bench-tolerance value {v:?} is not a finite ratio >= 1.0\n{}",
                                usage()
                            )
                        },
                    )?;
            }
            other => {
                let kind = if other.starts_with('-') { "flag" } else { "argument" };
                let hint = did_you_mean(other)
                    .map(|s| format!(" (did you mean {s}?)"))
                    .unwrap_or_default();
                return Err(format!("unknown {kind} {other:?}{hint}\n{}", usage()));
            }
        }
    }
    if resume && journal.is_none() {
        return Err(format!("--resume requires --journal PATH\n{}", usage()));
    }
    if shards.is_some() && shard.is_some() {
        return Err(format!(
            "--shards (orchestrator) and --shard (worker) are mutually exclusive\n{}",
            usage()
        ));
    }
    if shards.is_some() && journal.is_none() {
        return Err(format!(
            "--shards requires --journal PATH (shard journals merge into it)\n{}",
            usage()
        ));
    }
    if shard.is_some() && journal.is_none() {
        return Err(format!(
            "--shard requires --journal PATH (a worker's results live in its journal)\n{}",
            usage()
        ));
    }
    if shards.is_some() && resume {
        return Err(format!(
            "--shards cannot be combined with --resume \
             (the orchestrator always replays the merged journal)\n{}",
            usage()
        ));
    }
    if shards.is_some() || shard.is_some() {
        match &command {
            None
            | Some(
                Command::All
                | Command::Experiments
                | Command::Table(_)
                | Command::Figure(_)
                | Command::Scenario(_)
                | Command::Json(_)
                | Command::Csv(_),
            ) => {}
            Some(Command::Help | Command::BenchSnapshot(_) | Command::BenchCheck(_)) => {
                return Err(format!(
                    "--shards/--shard need a rendering command \
                     (a table, figure, scenario, json or csv target)\n{}",
                    usage()
                ))
            }
        }
    }
    if bench_against.is_some() || bench_current.is_some() {
        match &command {
            Some(Command::BenchCheck(topic)) if topic != "all" => {}
            _ => {
                return Err(format!(
                    "--bench-against/--bench-current require --bench-check with a \
                     single topic (kernels|sweep)\n{}",
                    usage()
                ))
            }
        }
    }
    Ok(Cli {
        stats,
        max_failures,
        journal,
        resume,
        timeout_ms,
        retries,
        shards,
        shard,
        shard_stall_ms,
        shard_retries,
        out,
        metrics,
        trace,
        profile,
        bench_dir,
        bench_against,
        bench_current,
        bench_tolerance,
        command: command.unwrap_or(Command::All),
    })
}

/// Expands a bench topic argument into concrete topics.
fn bench_topics(topic: &str) -> Result<Vec<&'static str>, String> {
    match topic {
        "all" => Ok(snapshot::TOPICS.to_vec()),
        other => snapshot::TOPICS
            .iter()
            .find(|&&t| t == other)
            .map(|&t| vec![t])
            .ok_or_else(|| {
                format!("bench topic {other:?} is not one of kernels|sweep|all\n{}", usage())
            }),
    }
}

fn read_snapshot(path: &std::path::Path) -> Result<snapshot::BenchSnapshot, String> {
    let bytes = std::fs::read(path)
        .map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
    snapshot::BenchSnapshot::from_slice(&bytes)
        .map_err(|e| format!("snapshot {}: {e}", path.display()))
}

/// `--bench-snapshot`: measure each topic and record it, atomically.
fn run_bench_snapshot(cli: &Cli, topic: &str) -> Result<(), String> {
    let budget = snapshot::budget_from_env();
    for t in bench_topics(topic)? {
        let snap = snapshot::capture(t, budget).map_err(|e| e.to_string())?;
        let path = cli.bench_dir.join(snapshot::file_name(t));
        let json = snap.to_json().map_err(|e| e.to_string())?;
        ucore_project::atomic_write(&path, json.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("bench-snapshot: wrote {} ({} entries)", path.display(), snap.entries.len());
    }
    Ok(())
}

/// `--bench-check`: compare (fresh or recorded) measurements against the
/// recorded baseline. Returns the number of tolerance breaches.
fn run_bench_check(cli: &Cli, topic: &str) -> Result<usize, String> {
    let budget = snapshot::budget_from_env();
    let mut breaches_total = 0usize;
    for t in bench_topics(topic)? {
        let baseline_path = cli
            .bench_against
            .clone()
            .unwrap_or_else(|| cli.bench_dir.join(snapshot::file_name(t)));
        let baseline = read_snapshot(&baseline_path)?;
        let current = match &cli.bench_current {
            Some(path) => read_snapshot(path)?,
            None => snapshot::capture(t, budget).map_err(|e| e.to_string())?,
        };
        let breaches = snapshot::compare(&baseline, &current, cli.bench_tolerance)
            .map_err(|e| e.to_string())?;
        if breaches.is_empty() {
            println!(
                "bench-check {t}: ok ({} entries within x{:.2} of {})",
                baseline.entries.len(),
                cli.bench_tolerance,
                baseline_path.display()
            );
        } else {
            for breach in &breaches {
                eprintln!("{breach}");
            }
            breaches_total += breaches.len();
        }
    }
    Ok(breaches_total)
}

/// Activates the durability layer when any of its flags were given.
/// Returns the guard keeping it active (`None` when the run is not
/// durable), after reporting what a resume replayed.
fn activate_durability(cli: &Cli) -> Result<Option<DurabilityGuard>, String> {
    let wanted = cli.journal.is_some()
        || cli.resume
        || cli.timeout_ms.is_some()
        || cli.retries > 0
        || cli.shard.is_some();
    if !wanted {
        return Ok(None);
    }
    let config = DurabilityConfig {
        journal: cli.journal.clone(),
        resume: cli.resume,
        timeout: cli.timeout_ms.map(Duration::from_millis),
        retries: cli.retries,
        shard: cli.shard,
    };
    let (guard, report) = durability::activate(config).map_err(|e| e.to_string())?;
    if cli.resume {
        let path = cli.journal.as_deref().unwrap_or_else(|| std::path::Path::new("?"));
        eprintln!(
            "resume: replayed {} journaled outcome(s) from {}",
            report.records,
            path.display()
        );
        if report.torn_tail {
            eprintln!(
                "warning: journal {} ended in a torn (partially written) record; \
                 it was skipped and that point will be re-evaluated",
                path.display()
            );
        }
        if report.duplicates > 0 {
            eprintln!(
                "note: journal contained {} superseded record(s) (kept the latest)",
                report.duplicates
            );
        }
    }
    Ok(Some(guard))
}

/// The command-line tail handed to every shard worker after the
/// generated `--shard i/n --journal PATH [--resume]` prefix: the
/// rendering command plus the forwarded per-point policy flags.
fn worker_args(cli: &Cli) -> Result<Vec<String>, String> {
    let mut args: Vec<String> = Vec::new();
    match &cli.command {
        Command::All => args.push("--all".into()),
        Command::Experiments => args.push("--experiments".into()),
        Command::Table(n) => args.extend(["--table".into(), n.clone()]),
        Command::Figure(n) => args.extend(["--figure".into(), n.clone()]),
        Command::Scenario(n) => args.extend(["--scenario".into(), n.clone()]),
        Command::Json(which) => args.extend(["--json".into(), which.clone()]),
        Command::Csv(which) => args.extend(["--csv".into(), which.clone()]),
        Command::Help | Command::BenchSnapshot(_) | Command::BenchCheck(_) => {
            return Err(format!(
                "--shards needs a rendering command\n{}",
                usage()
            ))
        }
    }
    if let Some(ms) = cli.timeout_ms {
        args.extend(["--timeout-ms".into(), ms.to_string()]);
    }
    if cli.retries > 0 {
        args.extend(["--retries".into(), cli.retries.to_string()]);
    }
    Ok(args)
}

/// `--shards N`: run the worker fleet to completion and merge the shard
/// journals into `cli.journal`. The caller then renders by replaying
/// the merged journal, so worker crashes and abandoned leases cost
/// wall time, never output bytes.
fn run_shard_fleet(cli: &Cli, shards: usize) -> Result<(), String> {
    let merged = cli
        .journal
        .clone()
        .ok_or_else(|| format!("--shards requires --journal PATH\n{}", usage()))?;
    let program = std::env::current_exe()
        .map_err(|e| format!("cannot locate the repro executable: {e}"))?;
    let mut cfg = OrchestratorConfig::new(shards, merged, program, worker_args(cli)?);
    cfg.stall_timeout = Duration::from_millis(cli.shard_stall_ms);
    cfg.lease_retries = cli.shard_retries;
    let report = shard::orchestrate(&cfg).map_err(|e| e.to_string())?;
    for outcome in &report.shards {
        let mut notes: Vec<String> = Vec::new();
        if outcome.crashes > 0 {
            notes.push(format!("{} crash(es)", outcome.crashes));
        }
        if outcome.stalls > 0 {
            notes.push(format!("{} stall(s)", outcome.stalls));
        }
        if !outcome.completed {
            notes.push(String::from("lease abandoned"));
        }
        let notes = if notes.is_empty() {
            String::new()
        } else {
            format!(" [{}]", notes.join(", "))
        };
        eprintln!(
            "shard {}/{}: {} journaled record(s) in {} attempt(s){notes}",
            outcome.shard, shards, outcome.records, outcome.attempts
        );
    }
    eprintln!(
        "shards: merged {} record(s) ({} duplicate(s), {} rejected, {} torn tail(s), \
         {} missing journal(s)) into {}",
        report.merge.records,
        report.merge.duplicates,
        report.merge.rejected,
        report.merge.torn_tails,
        report.merge.missing,
        cfg.merged_journal.display(),
    );
    Ok(())
}

/// Renders one shared-module target, restoring the CLI's historical
/// error bytes: bad targets get the usage banner appended, model
/// failures pass through verbatim.
fn target_bytes(target: &ucore_bench::Target) -> Result<String, Box<dyn std::error::Error>> {
    match ucore_bench::render::render(target) {
        Ok(rendered) => Ok(rendered.body),
        Err(e) if e.is_bad_target() => Err(format!("{e}\n{}", usage()).into()),
        Err(e) => Err(e.to_string().into()),
    }
}

/// Renders `--stats` from one coherent [`MetricsSnapshot`], taken after
/// every sweep worker has joined. The old implementation read each
/// atomic counter independently (and some twice), so the cache line and
/// the points line could disagree mid-run; a single snapshot cannot.
fn print_stats(snapshot: &MetricsSnapshot, total: Duration) {
    let cache_hits = snapshot.counter("cache.hits");
    let cache_misses = snapshot.counter("cache.misses");
    let cache_lookups = snapshot.counter("cache.lookups");
    let cache_entries = snapshot.gauge("cache.entries").unwrap_or(0.0) as u64;
    let hit_rate = if cache_lookups == 0 {
        0.0
    } else {
        cache_hits as f64 / cache_lookups as f64
    };
    eprintln!("--- repro --stats ---");
    for (i, s) in ucore_project::sweep::drain_phase_log().iter().enumerate() {
        // The lease note appears only for shard workers, so unsharded
        // runs keep the exact historical phase-line bytes.
        let lease_note = if s.points_skipped > 0 {
            format!(", {} lease-skipped", s.points_skipped)
        } else {
            String::new()
        };
        eprintln!(
            "sweep phase {i}: {} points ({} ok, {} infeasible, {} failed) on {} threads, \
             {} cache hits, {} misses, {} journal hits, {} retries{lease_note}, {:.3} ms",
            s.points,
            s.points_ok,
            s.points_infeasible,
            s.points_failed,
            s.threads,
            s.cache_hits,
            s.cache_misses,
            s.journal_hits,
            s.retries,
            s.wall.as_secs_f64() * 1e3,
        );
    }
    eprintln!(
        "points: {} ok, {} infeasible, {} failed",
        snapshot.counter("points.ok"),
        snapshot.counter("points.infeasible"),
        snapshot.counter("points.failed"),
    );
    eprintln!("evaluations run: {cache_misses}");
    eprintln!(
        "cache: {} hits, {} misses, {} entries, {:.1}% hit rate",
        cache_hits,
        cache_misses,
        cache_entries,
        hit_rate * 100.0,
    );
    eprintln!(
        "durability: {} journal hits, {} stale journal records, {} retries",
        snapshot.counter("journal.hits"),
        snapshot.counter("journal.stale"),
        snapshot.counter("points.retries"),
    );
    // Shard lines appear only when sharding was actually exercised, so
    // every pre-existing --stats consumer sees unchanged bytes.
    if snapshot.counter("shard.workers_spawned") > 0 {
        eprintln!(
            "sharding: {} workers spawned ({} ok, {} crashed, {} stalled), \
             {} leases reassigned, {} abandoned",
            snapshot.counter("shard.workers_spawned"),
            snapshot.counter("shard.workers_ok"),
            snapshot.counter("shard.workers_crashed"),
            snapshot.counter("shard.workers_stalled"),
            snapshot.counter("shard.leases_reassigned"),
            snapshot.counter("shard.leases_abandoned"),
        );
        eprintln!(
            "shard merge: {} records ({} duplicates deduped, {} rejected on \
             fingerprint mismatch)",
            snapshot.counter("shard.merge_records"),
            snapshot.counter("shard.merge_duplicates"),
            snapshot.counter("shard.merge_rejected"),
        );
    }
    if snapshot.counter("shard.points_skipped") > 0 {
        eprintln!(
            "shard lease: {} out-of-lease points skipped",
            snapshot.counter("shard.points_skipped"),
        );
    }
    eprintln!(
        "failure log: {} retained (cap {}), {} dropped",
        ucore_project::failure_diagnostics().len(),
        ucore_project::MAX_RETAINED_FAILURES,
        snapshot.counter("failures.dropped"),
    );
    eprintln!("total wall time: {:.3} ms", total.as_secs_f64() * 1e3);
}

/// The structured diagnostic printed when contained failures exceed the
/// `--max-failures` threshold.
fn print_failure_diagnostic(snapshot: &MetricsSnapshot, max_failures: u64) {
    eprintln!("error: sweep failures exceeded --max-failures");
    eprintln!("  points_failed: {}", snapshot.counter("points.failed"));
    eprintln!("  max_failures: {max_failures}");
    eprintln!("  points_ok: {}", snapshot.counter("points.ok"));
    eprintln!("  points_infeasible: {}", snapshot.counter("points.infeasible"));
    for d in ucore_project::failure_diagnostics() {
        eprintln!("  failure at point {}: {}", d.index, d.panic_msg);
    }
    let dropped = snapshot.counter("failures.dropped");
    if dropped > 0 {
        eprintln!(
            "  ({dropped} further failure(s) beyond the {}-entry log were dropped)",
            ucore_project::MAX_RETAINED_FAILURES
        );
    }
}

/// Renders the requested command to the exact bytes that would go to
/// stdout — so `--out` can write the identical artifact atomically.
/// Target rendering is delegated to [`ucore_bench::render`], the module
/// the `ucore-serve` daemon also answers from, so CLI and served bytes
/// can never drift apart.
fn render(command: &Command) -> Result<String, Box<dyn std::error::Error>> {
    use ucore_bench::Target;
    let out = match command {
        Command::Help => format!("{}\n", usage()),
        Command::All => ucore_bench::render_all()?,
        Command::Experiments => ucore_bench::experiments::render()?,
        Command::Table(n) => target_bytes(&Target::Table(n.clone()))?,
        Command::Figure(n) => target_bytes(&Target::Figure(n.clone()))?,
        Command::Scenario(n) => target_bytes(&Target::Scenario(n.clone()))?,
        Command::Json(which) => target_bytes(&Target::Json(which.clone()))?,
        Command::Csv(which) => target_bytes(&Target::Csv(which.clone()))?,
        // Handled in main before render is reached.
        Command::BenchSnapshot(_) | Command::BenchCheck(_) => String::new(),
    };
    Ok(out)
}

fn run(command: &Command, out: Option<&std::path::Path>) -> Result<(), Box<dyn std::error::Error>> {
    let rendered = render(command)?;
    match out {
        Some(path) => {
            ucore_project::atomic_write(path, rendered.as_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// Writes the `--metrics` / `--trace` artifacts and prints the
/// `--profile` report, all from state captured after the run.
fn write_observability(cli: &Cli, snapshot: &MetricsSnapshot) -> Result<(), String> {
    if let Some(path) = &cli.metrics {
        ucore_project::atomic_write(path, snapshot.render_prometheus().as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if cli.trace.is_some() || cli.profile {
        let trace = ucore_obs::trace::snapshot().unwrap_or_default();
        if let Some(path) = &cli.trace {
            ucore_project::atomic_write(path, &trace.encode())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        if cli.profile {
            let report = ucore_obs::profile::reduce(&trace);
            eprintln!("--- repro --profile ---");
            eprint!("{}", report.render());
            let folded = ucore_obs::profile::folded_stacks(&trace);
            if !folded.is_empty() {
                eprintln!("folded stacks (flamegraph.pl input):");
                eprint!("{folded}");
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    // Installed before any journal can open: SIGINT/SIGTERM fsync the
    // active journal and exit 130/143, so an interrupted worker's
    // journal tail is durable and the run is always resumable.
    signals::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = match parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Bench commands are measurement, not rendering: they bypass the
    // durability/observability plumbing and the figure pipeline. Exit
    // codes match the driver's convention — 1 for usage/IO errors, 2
    // for a policy breach (here: a bench past its tolerance).
    match &cli.command {
        Command::BenchSnapshot(topic) => {
            return match run_bench_snapshot(&cli, topic) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            };
        }
        Command::BenchCheck(topic) => {
            return match run_bench_check(&cli, topic) {
                Ok(0) => ExitCode::SUCCESS,
                Ok(n) => {
                    eprintln!(
                        "bench-check failed: {n} benchmark(s) breached the x{:.2} tolerance",
                        cli.bench_tolerance
                    );
                    ExitCode::from(2)
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            };
        }
        _ => {}
    }
    // Orchestrator mode: run the worker fleet first, then fall through
    // to the ordinary render path in *resume* mode against the merged
    // journal — replay makes the output byte-identical to a
    // single-process run, and any points an abandoned lease never
    // journaled are simply evaluated here, in-process.
    let mut _shard_quiet = None;
    if let Some(shards) = cli.shards {
        if let Err(e) = run_shard_fleet(&cli, shards) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        // The workers inherited any UCORE_FAULT_INJECT plan and already
        // honored it; an empty active plan keeps the orchestrator's own
        // replay-render from re-triggering the same fault.
        _shard_quiet = Some(faultinject::activate(FaultPlan::new()));
        cli.resume = true;
    }
    let cli = cli;
    // Keep the journal alive (and fsync'd) for the whole render.
    let _durability_guard = match activate_durability(&cli) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Span recording is guard-scoped: armed only when the run will
    // consume the buffer. Metrics counters are always live (they are
    // plain atomics), so `--metrics`/`--stats` need no arming.
    let _trace_guard = (cli.trace.is_some() || cli.profile)
        .then(|| ucore_obs::trace::start(ucore_obs::trace::DEFAULT_CAPACITY));
    let start = Instant::now();
    let outcome = run(&cli.command, cli.out.as_deref());
    // One coherent registry snapshot after all sweep workers have
    // joined; every consumer below (stats, metrics file, failure
    // policing) reads this snapshot, never the live counters.
    let snapshot = ucore_obs::registry().snapshot();
    if cli.stats {
        print_stats(&snapshot, start.elapsed());
    }
    let mut code = match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    };
    if let Err(e) = write_observability(&cli, &snapshot) {
        eprintln!("{e}");
        code = ExitCode::FAILURE;
    }
    // Fault-containment accounting: rendering succeeded point-by-point,
    // but the run as a whole is only healthy if contained failures stay
    // within the caller's tolerance. Shard *workers* skip this policing
    // — their journaled Failed records replay in the orchestrator,
    // which polices the whole merged run once.
    if cli.shard.is_none() && snapshot.counter("points.failed") > cli.max_failures {
        print_failure_diagnostic(&snapshot, cli.max_failures);
        return ExitCode::from(2);
    }
    code
}

/// SIGINT/SIGTERM handling: fsync the active journal and exit with the
/// conventional `128 + signum` code (130 for SIGINT, 143 for SIGTERM),
/// distinct from 1 (error) and 2 (policy breach), so callers can tell
/// "interrupted but resumable" apart from "failed". Everything in the
/// handler is async-signal-safe: one atomic load, `fsync(2)`,
/// `_exit(2)` — no allocation, no locks, no Rust I/O.
#[cfg(unix)]
mod signals {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn fsync(fd: i32) -> i32;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn flush_and_exit(signum: i32) {
        let fd = ucore_project::durability::active_journal_fd();
        if fd >= 0 {
            // SAFETY: fsync(2) is async-signal-safe; a stale or closed
            // descriptor returns EBADF, which is ignored.
            unsafe { fsync(fd) };
        }
        // SAFETY: _exit(2) is async-signal-safe and never returns.
        unsafe { _exit(128 + signum) }
    }

    pub fn install() {
        for sig in [SIGINT, SIGTERM] {
            // SAFETY: signal(2) installing a handler that only performs
            // async-signal-safe operations (see flush_and_exit).
            unsafe { signal(sig, flush_and_exit) };
        }
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
}
