//! The reproduction driver: prints any table or figure of the paper.
//!
//! ```text
//! repro --all                  # everything, in paper order
//! repro --table 5              # one table (1-6)
//! repro --figure 6             # one figure (2-10)
//! repro --scenario 3           # one 6.2 scenario (1-6)
//! repro --json figure-6        # machine-readable figure data
//! repro --stats --figure 6     # + sweep/cache counters on stderr
//! ```
//!
//! `--stats` composes with any other flag. The counters go to stderr so
//! that stdout stays byte-identical with and without the flag (the
//! `--json` exports are consumed by tools that diff them).

use std::process::ExitCode;
use std::time::{Duration, Instant};
use ucore_bench::{figures, scenarios, tables};

fn usage() -> &'static str {
    "usage: repro [--stats] [--all | --experiments | --table N | --figure N | --scenario N | --json figure-N | --csv figure-N]\n\
     tables: 1-6; figures: 2-10; scenarios: 1-6; json/csv: figures 6-10\n\
     --stats: print evaluation/cache/sweep counters to stderr"
}

fn projection(which: &str) -> Result<ucore_project::FigureData, Box<dyn std::error::Error>> {
    Ok(match which {
        "figure-6" => ucore_project::figures::figure6()?,
        "figure-7" => ucore_project::figures::figure7()?,
        "figure-8" => ucore_project::figures::figure8()?,
        "figure-9" => ucore_project::figures::figure9()?,
        "figure-10" => ucore_project::figures::figure10()?,
        other => return Err(format!("unknown projection target {other}\n{}", usage()).into()),
    })
}

fn print_stats(total: Duration) {
    let cache = ucore_core::EvalCache::global().stats();
    eprintln!("--- repro --stats ---");
    for (i, s) in ucore_project::sweep::drain_phase_log().iter().enumerate() {
        eprintln!(
            "sweep phase {i}: {} points on {} threads, {} cache hits, {} misses, {:.3} ms",
            s.points,
            s.threads,
            s.cache_hits,
            s.cache_misses,
            s.wall.as_secs_f64() * 1e3,
        );
    }
    eprintln!("evaluations run: {}", cache.misses);
    eprintln!(
        "cache: {} hits, {} misses, {} entries, {:.1}% hit rate",
        cache.hits,
        cache.misses,
        cache.entries,
        cache.hit_rate() * 100.0,
    );
    eprintln!("total wall time: {:.3} ms", total.as_secs_f64() * 1e3);
}

fn run(args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    match args.as_slice() {
        [] | [_] if args.first().map(String::as_str) == Some("--all") || args.is_empty() => {
            print!("{}", ucore_bench::render_all()?);
            Ok(())
        }
        [flag] if flag == "--experiments" => {
            print!("{}", ucore_bench::experiments::render()?);
            Ok(())
        }
        [flag, value] => {
            let out = match (flag.as_str(), value.as_str()) {
                ("--table", "1") => tables::table1(),
                ("--table", "2") => tables::table2(),
                ("--table", "3") => tables::table3(),
                ("--table", "4") => tables::table4(),
                ("--table", "5") => tables::table5()?,
                ("--table", "6") => tables::table6(),
                ("--figure", "2") => figures::figure2(),
                ("--figure", "3") => figures::figure3(),
                ("--figure", "4") => figures::figure4(),
                ("--figure", "5") => figures::figure5(),
                ("--figure", "6") => figures::figure6()?,
                ("--figure", "7") => figures::figure7()?,
                ("--figure", "8") => figures::figure8()?,
                ("--figure", "9") => figures::figure9()?,
                ("--figure", "10") => figures::figure10()?,
                ("--scenario", n) => {
                    let n: u8 = n.parse().map_err(|_| usage().to_string())?;
                    scenarios::scenario(n)?
                }
                ("--json", which) => serde_json::to_string_pretty(&projection(which)?)?,
                ("--csv", which) => figures::figure_csv(&projection(which)?),
                _ => return Err(usage().into()),
            };
            println!("{out}");
            Ok(())
        }
        _ => Err(usage().into()),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats = args.iter().any(|a| a == "--stats");
    args.retain(|a| a != "--stats");
    let start = Instant::now();
    let outcome = run(args);
    if stats {
        print_stats(start.elapsed());
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
