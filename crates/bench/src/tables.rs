//! Table renderers.

use ucore_calibrate::{Table5, WorkloadColumn};
use ucore_core::{BoundSet, Budgets, ChipSpec, UCore};
use ucore_devices::{Catalog, DeviceId};
use ucore_itrs::Roadmap;
use ucore_report::{Align, Table};
use ucore_simdev::SimLab;
use ucore_workloads::{Workload, WorkloadKind};

fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Table 1: the bounds on `n` and `r`, shown symbolically and evaluated
/// at a worked example (`A = 100`, `P = 10`, `B = 20`, `r = 4`,
/// `µ = 5`, `φ = 0.5`).
///
/// # Errors
///
/// Propagates model errors from the worked example (none occur with
/// these constants).
pub fn table1() -> Result<String, Box<dyn std::error::Error>> {
    let mut t = Table::new(vec![
        "bound".into(),
        "Symmetric".into(),
        "Asym-offload".into(),
        "Heterogeneous".into(),
    ]);
    t.row(vec![
        "area".into(),
        "n <= A".into(),
        "n <= A".into(),
        "n <= A".into(),
    ]);
    t.row(vec![
        "parallel power".into(),
        "n <= P*r^(1-a/2)".into(),
        "n <= P + r".into(),
        "n <= P/phi + r".into(),
    ]);
    t.row(vec![
        "serial power".into(),
        "r^(a/2) <= P".into(),
        "r^(a/2) <= P".into(),
        "r^(a/2) <= P".into(),
    ]);
    t.row(vec![
        "parallel bandwidth".into(),
        "n <= B*sqrt(r)".into(),
        "n <= B + r".into(),
        "n <= B/mu + r".into(),
    ]);
    t.row(vec![
        "serial bandwidth".into(),
        "r <= B^2".into(),
        "r <= B^2".into(),
        "r <= B^2".into(),
    ]);

    // The numeric cross-check.
    let budgets = Budgets::new(100.0, 10.0, 20.0)?;
    let u = UCore::new(5.0, 0.5)?;
    let specs = [
        ("Symmetric", ChipSpec::symmetric()),
        ("Asym-offload", ChipSpec::asymmetric_offload()),
        ("Heterogeneous", ChipSpec::heterogeneous(u)),
    ];
    let mut numeric = Table::new(vec![
        "model".into(),
        "n_area".into(),
        "n_power".into(),
        "n_bandwidth".into(),
        "n_max".into(),
        "limiter".into(),
    ]);
    for col in 1..=4 {
        numeric.align(col, Align::Right);
    }
    for (name, spec) in specs {
        let b = BoundSet::compute(&spec, &budgets, 4.0)?;
        numeric.row(vec![
            name.into(),
            fmt(b.n_area(), 1),
            fmt(b.n_power(), 2),
            fmt(b.n_bandwidth(), 2),
            fmt(b.n_max(), 2),
            b.limiter().to_string(),
        ]);
    }
    Ok(format!(
        "Table 1: bounds on area, power, and bandwidth\n{t}\n\
         Worked example (A=100, P=10, B=20, r=4, mu=5, phi=0.5):\n{numeric}"
    ))
}

/// Table 2: the device summary.
pub fn table2() -> String {
    let catalog = Catalog::paper();
    let mut t = Table::new(vec![
        "attribute".into(),
        "Core i7-960".into(),
        "GTX285".into(),
        "GTX480".into(),
        "R5870".into(),
        "V6-LX760".into(),
        "ASIC".into(),
    ]);
    let dev = |id| catalog.device(id).clone();
    let devices: Vec<_> = DeviceId::ALL.iter().map(|&id| dev(id)).collect();
    let opt = |v: Option<f64>, digits: usize| {
        v.map(|x| fmt(x, digits)).unwrap_or_else(|| "-".into())
    };
    let mut push = |label: &str, cells: Vec<String>| {
        let mut row = vec![label.to_string()];
        row.extend(cells);
        t.row(row);
    };
    push("year", devices.iter().map(|d| d.year().to_string()).collect());
    push(
        "node",
        devices
            .iter()
            .map(|d| format!("{}/{}", d.foundry(), d.node()))
            .collect(),
    );
    push(
        "die area (mm2)",
        devices.iter().map(|d| opt(d.die_area_mm2(), 0)).collect(),
    );
    push(
        "core area (mm2)",
        devices.iter().map(|d| opt(d.core_area_mm2(), 1)).collect(),
    );
    push(
        "clock (GHz)",
        devices.iter().map(|d| opt(d.clock_ghz(), 3)).collect(),
    );
    push(
        "voltage (V)",
        devices
            .iter()
            .map(|d| {
                let (lo, hi) = d.voltage_range_v();
                if (lo - hi).abs() < 1e-9 {
                    format!("{lo}")
                } else {
                    format!("{lo}-{hi}")
                }
            })
            .collect(),
    );
    push(
        "memory",
        devices
            .iter()
            .map(|d| d.memory().unwrap_or("-").to_string())
            .collect(),
    );
    push(
        "bandwidth (GB/s)",
        devices.iter().map(|d| opt(d.bandwidth_gb_s(), 1)).collect(),
    );
    format!("Table 2: summary of devices\n{t}")
}

/// Table 3: the workload summary.
pub fn table3() -> String {
    let mut t = Table::new(vec![
        "workload".into(),
        "paper implementations".into(),
        "this reproduction".into(),
        "unit".into(),
        "arithmetic intensity".into(),
    ]);
    t.row(vec![
        "MMM".into(),
        "MKL / CUBLAS / CAL++ / Bluespec".into(),
        "naive + blocked + threaded Rust kernels".into(),
        "GFLOP/s".into(),
        "N/4 flops/byte (blocked)".into(),
    ]);
    t.row(vec![
        "FFT".into(),
        "Spiral / CUFFT / Spiral-RTL".into(),
        "radix-2 / radix-4 planned FFT".into(),
        "pseudo-GFLOP/s (5N log2 N)".into(),
        "0.3125 log2 N flops/byte".into(),
    ]);
    t.row(vec![
        "Black-Scholes".into(),
        "PARSEC+SSE / CUDA ref / generated RTL".into(),
        "A&S-CND closed-form batch pricer".into(),
        "Mopts/s".into(),
        "10 bytes/option".into(),
    ]);
    format!("Table 3: summary of workloads\n{t}")
}

/// Table 4: measured MMM and Black-Scholes results.
pub fn table4() -> String {
    let lab = SimLab::paper();
    let mut out = String::from("Table 4: summary of results for MMM and BS\n");
    for (kind, unit, per_mm2, per_j) in [
        (WorkloadKind::Mmm, "GFLOP/s", "(GFLOP/s)/mm2", "GFLOP/J"),
        (WorkloadKind::BlackScholes, "Mopts/s", "(Mopts/s)/mm2", "Mopts/J"),
    ] {
        let mut t = Table::new(vec![
            "device".into(),
            unit.into(),
            per_mm2.into(),
            per_j.into(),
        ]);
        for col in 1..=3 {
            t.align(col, Align::Right);
        }
        for m in lab.table4(kind) {
            t.row(vec![
                m.device.label().into(),
                fmt(m.perf, 0),
                fmt(m.perf_per_mm2, 2),
                fmt(m.perf_per_joule, 2),
            ]);
        }
        out.push_str(&format!("{kind:?}:\n{t}\n"));
    }
    out
}

/// Table 5: the derived U-core parameters.
///
/// # Errors
///
/// Propagates calibration failures (none with the shipped data).
pub fn table5() -> Result<String, Box<dyn std::error::Error>> {
    let table = Table5::derive()?;
    let mut t = Table::new(vec![
        "device".into(),
        "param".into(),
        "MMM".into(),
        "BS".into(),
        "FFT-64".into(),
        "FFT-1024".into(),
        "FFT-16384".into(),
    ]);
    for col in 2..=6 {
        t.align(col, Align::Right);
    }
    for device in [
        DeviceId::Gtx285,
        DeviceId::Gtx480,
        DeviceId::R5870,
        DeviceId::V6Lx760,
        DeviceId::Asic,
    ] {
        for (param, pick) in [
            ("phi", true),
            ("mu", false),
        ] {
            let mut row = vec![device.label().to_string(), param.into()];
            for column in WorkloadColumn::ALL {
                let cell = table
                    .ucore(device, column)
                    .map(|u| {
                        let v = if pick { u.phi() } else { u.mu() };
                        fmt(v, 2)
                    })
                    .unwrap_or_else(|| "-".into());
                row.push(cell);
            }
            t.row(row);
        }
    }
    Ok(format!(
        "Table 5: U-core parameters (phi = relative BCE power, mu = relative BCE performance)\n{t}"
    ))
}

/// Table 6: the technology-scaling parameters.
pub fn table6() -> String {
    let roadmap = Roadmap::itrs_2009();
    let mut t = Table::new(vec![
        "parameter".into(),
        "2011".into(),
        "2013".into(),
        "2016".into(),
        "2019".into(),
        "2022".into(),
    ]);
    for col in 1..=5 {
        t.align(col, Align::Right);
    }
    let nodes = roadmap.nodes();
    let mut push = |label: &str, values: Vec<String>| {
        let mut row = vec![label.to_string()];
        row.extend(values);
        t.row(row);
    };
    push("technology node", nodes.iter().map(|n| n.node.to_string()).collect());
    push(
        "core die budget (mm2)",
        nodes.iter().map(|n| fmt(n.core_die_budget_mm2, 0)).collect(),
    );
    push(
        "core power budget (W)",
        nodes.iter().map(|n| fmt(n.core_power_budget_w, 0)).collect(),
    );
    push(
        "bandwidth (GB/s)",
        nodes.iter().map(|n| fmt(n.bandwidth_gb_s, 0)).collect(),
    );
    push(
        "max area (BCE units)",
        nodes.iter().map(|n| fmt(n.max_area_bce, 0)).collect(),
    );
    push(
        "rel. power per transistor",
        nodes
            .iter()
            .map(|n| format!("{}X", fmt(n.rel_power_per_transistor, 2)))
            .collect(),
    );
    push(
        "rel. bandwidth",
        nodes.iter().map(|n| format!("{}X", fmt(n.rel_bandwidth, 1))).collect(),
    );
    format!("Table 6: parameters assumed in technology scaling\n{t}")
}

/// Extra: Black-Scholes is not in Table 4's MMM section but needs a
/// workload handle for exports; expose the column-to-workload mapping.
pub fn column_workload(column: WorkloadColumn) -> Workload {
    column.workload()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_bounds_and_example() {
        let t = table1().unwrap();
        assert!(t.contains("n <= P/phi + r"));
        assert!(t.contains("limiter"));
        assert!(t.contains("bandwidth")); // the het example is bw-limited
    }

    #[test]
    fn table2_contains_key_cells() {
        let t = table2();
        assert!(t.contains("263"));
        assert!(t.contains("GTX480"));
        assert!(t.contains("UMC/Samsung"));
        assert!(t.contains("177.4"));
    }

    #[test]
    fn table3_lists_all_kernels() {
        let t = table3();
        assert!(t.contains("MMM"));
        assert!(t.contains("FFT"));
        assert!(t.contains("Black-Scholes"));
        assert!(t.contains("0.3125 log2 N"));
    }

    #[test]
    fn table4_prints_published_numbers() {
        let t = table4();
        assert!(t.contains("1491"));
        assert!(t.contains("19.28"));
        assert!(t.contains("25532"));
        assert!(t.contains("642.5") || t.contains("642.50"));
    }

    #[test]
    fn table5_prints_mu_phi_grid() {
        let t = table5().unwrap();
        // Derived values land within rounding of the published 27.4/482.
        assert!(t.contains("27.2") || t.contains("27.3") || t.contains("27.4"));
        assert!(t.contains("482"));
        assert!(t.contains("733.00")); // an exact anchor inversion
        assert!(t.contains("-")); // missing cells stay dashes
    }

    #[test]
    fn table6_matches_roadmap() {
        let t = table6();
        assert!(t.contains("432"));
        assert!(t.contains("298"));
        assert!(t.contains("0.25X"));
    }
}
