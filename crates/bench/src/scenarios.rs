//! §6.2 alternative-scenario renderers.
//!
//! The paper discusses these six scenarios qualitatively; the renderers
//! print the quantitative projections behind each discussion, and the
//! tests in `tests/paper_claims.rs` assert the qualitative statements.

use ucore_calibrate::WorkloadColumn;
use ucore_project::{figures::scenario_figure, FigureData, Scenario};

/// A scenario plus the workload columns and fractions its discussion
/// focuses on, and a one-line summary.
type ScenarioPlan = (Scenario, Vec<(WorkloadColumn, Vec<f64>)>, &'static str);

/// Which workloads and fractions each scenario's discussion focuses on.
fn plan(n: u8) -> Option<ScenarioPlan> {
    match n {
        1 => Some((
            Scenario::s1_low_bandwidth(),
            vec![
                (WorkloadColumn::Fft1024, vec![0.99]),
                (WorkloadColumn::Bs, vec![0.9]),
            ],
            "90 GB/s starting bandwidth: flexible U-cores converge to the ASIC even earlier",
        )),
        2 => Some((
            Scenario::s2_high_bandwidth(),
            vec![(WorkloadColumn::Fft1024, vec![0.9, 0.999])],
            "1 TB/s (eDRAM / 3D stacking): designs go power-limited; the ASIC pulls ahead",
        )),
        3 => Some((
            Scenario::s3_half_area(),
            vec![
                (WorkloadColumn::Mmm, vec![0.99]),
                (WorkloadColumn::Fft1024, vec![0.99]),
            ],
            "216 mm2 core budget: early nodes area-limited, late nodes unchanged (power-bound)",
        )),
        4 => Some((
            Scenario::s4_high_power(),
            vec![(WorkloadColumn::Fft1024, vec![0.99])],
            "200 W: CMPs close the gap on the (bandwidth-limited) HETs",
        )),
        5 => Some((
            Scenario::s5_low_power(),
            vec![(WorkloadColumn::Fft1024, vec![0.99])],
            "10 W: only ASIC-based HETs approach bandwidth-limited performance",
        )),
        6 => Some((
            Scenario::s6_serial_power(),
            vec![(WorkloadColumn::Fft1024, vec![0.5, 0.9])],
            "alpha = 2.25: serial power caps the sequential core; low-f speedups collapse",
        )),
        _ => None,
    }
}

/// The projection data behind one scenario, one figure per focused
/// workload.
///
/// # Errors
///
/// Returns an error for scenario numbers outside 1–6 or on projection
/// failure.
pub fn scenario_data(n: u8) -> Result<Vec<FigureData>, Box<dyn std::error::Error>> {
    let (scenario, focus, _) =
        plan(n).ok_or_else(|| format!("scenario {n} is not one of 1-6"))?;
    let mut out = Vec::new();
    for (column, fs) in focus {
        out.push(scenario_figure(scenario.clone(), column, &fs)?);
    }
    Ok(out)
}

/// Renders one scenario as text.
///
/// # Errors
///
/// As [`scenario_data`].
pub fn scenario(n: u8) -> Result<String, Box<dyn std::error::Error>> {
    let (_, _, summary) = plan(n).ok_or_else(|| format!("scenario {n} is not one of 1-6"))?;
    let mut out = format!("Scenario {n}: {summary}\n");
    for fig in scenario_data(n)? {
        out.push_str(&crate::figures::render_figure(&fig));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_scenarios_render() {
        for n in 1..=6 {
            let s = scenario(n).unwrap();
            assert!(s.contains(&format!("Scenario {n}")));
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(scenario(0).is_err());
        assert!(scenario(7).is_err());
    }

    #[test]
    fn scenario_two_uses_terabyte_roadmap() {
        let figs = scenario_data(2).unwrap();
        assert!(figs[0].id.contains("1 TB/s"));
    }
}
