//! Bench-trajectory snapshots: the benches reduced to a stable JSON
//! schema, plus the comparator behind `repro --bench-check`.
//!
//! A snapshot is a deliberately *small* reduction of a bench run: one
//! `(id, median_ns)` pair per benchmark, in the fixed bench order, under
//! a schema version. Medians come from the same calibrate-then-sample
//! harness the vendored criterion uses, so `cargo bench` numbers and
//! snapshot numbers are directly comparable. Everything except the
//! timing fields (`median_ns`, `iters`, `samples`) is deterministic:
//! capturing the same topic twice yields the same ids in the same order
//! with the same units.
//!
//! The comparator ([`compare`]) is asymmetric by design: a current
//! median more than `tolerance`× **slower** than baseline is a breach;
//! being faster never is. The committed `BENCH_<topic>.json` files at
//! the repo root form the recorded trajectory; CI re-measures and
//! compares against them (warn at a tight tolerance, fail at a loose
//! one) so raw-speed regressions are caught while machine noise is not.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ucore_calibrate::WorkloadColumn;
use ucore_core::{Budgets, ChipSpec, EvalCache, Optimizer, ParallelFraction, UCore};
use ucore_project::sweep::{figure_points, sweep, SweepConfig};
use ucore_project::{DesignId, ProjectionEngine, Scenario};
use ucore_workloads::blackscholes::batch;
use ucore_workloads::fft::splitradix::SplitRadixFft;
use ucore_workloads::fft::{Direction, Fft};
use ucore_workloads::gen::{random_matrix, random_portfolio, random_signal};
use ucore_workloads::mmm::{blocked, naive, parallel, strassen};

/// Version of the snapshot JSON schema. Bump on any change to the
/// serialized shape; the comparator refuses to compare across versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Default per-benchmark wall-clock budget, matching the vendored
/// criterion harness.
pub const DEFAULT_BUDGET_MS: u64 = 200;

/// Environment variable overriding the per-benchmark budget (in ms).
pub const BUDGET_ENV: &str = "UCORE_BENCH_BUDGET_MS";

/// Default slowdown tolerance of the comparator: a current median more
/// than this many times the baseline median is a regression.
pub const DEFAULT_TOLERANCE: f64 = 2.0;

/// The snapshot topics `repro --bench-snapshot` knows, in render order.
pub const TOPICS: [&str; 2] = ["kernels", "sweep"];

/// The repo-root file name recording a topic's snapshot.
pub fn file_name(topic: &str) -> String {
    format!("BENCH_{topic}.json")
}

/// The per-benchmark budget: [`BUDGET_ENV`] in milliseconds when set and
/// parseable, [`DEFAULT_BUDGET_MS`] otherwise.
pub fn budget_from_env() -> Duration {
    let ms = std::env::var(BUDGET_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_BUDGET_MS);
    Duration::from_millis(ms)
}

/// One measured benchmark. Field order is the JSON key order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable benchmark id, mirroring the `cargo bench` label.
    pub id: String,
    /// Median seconds-per-iteration, in nanoseconds.
    pub median_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
    /// Samples taken within the budget.
    pub samples: u32,
}

/// A reduced bench run. Field order is the JSON key order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// The schema version that wrote this snapshot.
    pub schema_version: u32,
    /// Which bench suite this reduces (`kernels` or `sweep`).
    pub topic: String,
    /// Unit of the `median_ns` fields; always `"ns"` at version 1.
    pub time_unit: String,
    /// The measurements, in fixed bench order.
    pub entries: Vec<BenchEntry>,
}

impl BenchSnapshot {
    /// Serializes with stable key order (struct declaration order) and a
    /// trailing newline, ready for `atomic_write`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Parse`] if serialization fails (it does
    /// not with the shipped field types).
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        let mut out = serde_json::to_string_pretty(self)
            .map_err(|e| SnapshotError::Parse(e.to_string()))?;
        out.push('\n');
        Ok(out)
    }

    /// Parses a snapshot previously written by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Parse`] on malformed JSON.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, SnapshotError> {
        serde_json::from_slice(bytes).map_err(|e| SnapshotError::Parse(e.to_string()))
    }
}

/// Why a snapshot could not be captured or compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The two snapshots were written by different schema versions.
    SchemaVersion {
        /// Version of the baseline file.
        baseline: u32,
        /// Version of the current file.
        current: u32,
    },
    /// The two snapshots reduce different bench suites.
    TopicMismatch {
        /// Topic of the baseline file.
        baseline: String,
        /// Topic of the current file.
        current: String,
    },
    /// An unknown topic was requested.
    UnknownTopic(String),
    /// Constructing a bench workload failed (impossible with shipped data).
    Setup(String),
    /// A snapshot file failed to parse.
    Parse(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::SchemaVersion { baseline, current } => write!(
                f,
                "snapshot schema mismatch: baseline v{baseline} vs current v{current}"
            ),
            SnapshotError::TopicMismatch { baseline, current } => write!(
                f,
                "snapshot topic mismatch: baseline '{baseline}' vs current '{current}'"
            ),
            SnapshotError::UnknownTopic(t) => {
                write!(f, "unknown bench topic '{t}' (expected kernels|sweep|all)")
            }
            SnapshotError::Setup(msg) => write!(f, "bench setup failed: {msg}"),
            SnapshotError::Parse(msg) => write!(f, "snapshot parse failed: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One comparator finding for one benchmark id.
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// The benchmark id the finding is about.
    pub id: String,
    /// What went wrong.
    pub kind: BreachKind,
}

/// The kinds of comparator findings.
#[derive(Debug, Clone, PartialEq)]
pub enum BreachKind {
    /// Current median exceeds `tolerance` times the baseline median.
    Slower {
        /// Baseline median in nanoseconds.
        baseline_ns: f64,
        /// Current median in nanoseconds.
        current_ns: f64,
        /// `current_ns / baseline_ns`.
        ratio: f64,
        /// The tolerance that was exceeded.
        tolerance: f64,
    },
    /// The baseline has this id but the current snapshot does not.
    MissingInCurrent,
    /// The current snapshot has an id the baseline does not know.
    MissingInBaseline,
}

impl fmt::Display for Breach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            BreachKind::Slower { baseline_ns, current_ns, ratio, tolerance } => write!(
                f,
                "bench regression: {}: {current_ns:.0} ns vs baseline {baseline_ns:.0} ns \
                 (x{ratio:.2} > x{tolerance:.2})",
                self.id
            ),
            BreachKind::MissingInCurrent => {
                write!(f, "bench missing: {} is in the baseline but was not measured", self.id)
            }
            BreachKind::MissingInBaseline => {
                write!(f, "bench unknown: {} was measured but the baseline lacks it", self.id)
            }
        }
    }
}

/// Compares `current` against `baseline` under a slowdown `tolerance`.
///
/// Returns every finding, in baseline order followed by
/// baseline-unknown ids in current order. An empty vector means the
/// trajectory holds. Being *faster* than baseline is never a breach.
///
/// # Errors
///
/// Refuses mismatched schema versions or topics — those comparisons
/// would be meaningless, not merely failing.
pub fn compare(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    tolerance: f64,
) -> Result<Vec<Breach>, SnapshotError> {
    if baseline.schema_version != current.schema_version {
        return Err(SnapshotError::SchemaVersion {
            baseline: baseline.schema_version,
            current: current.schema_version,
        });
    }
    if baseline.topic != current.topic {
        return Err(SnapshotError::TopicMismatch {
            baseline: baseline.topic.clone(),
            current: current.topic.clone(),
        });
    }
    let mut breaches = Vec::new();
    for base in &baseline.entries {
        let Some(cur) = current.entries.iter().find(|e| e.id == base.id) else {
            breaches.push(Breach { id: base.id.clone(), kind: BreachKind::MissingInCurrent });
            continue;
        };
        let ratio = cur.median_ns / base.median_ns;
        if ratio > tolerance {
            breaches.push(Breach {
                id: base.id.clone(),
                kind: BreachKind::Slower {
                    baseline_ns: base.median_ns,
                    current_ns: cur.median_ns,
                    ratio,
                    tolerance,
                },
            });
        }
    }
    for cur in &current.entries {
        if !baseline.entries.iter().any(|e| e.id == cur.id) {
            breaches.push(Breach { id: cur.id.clone(), kind: BreachKind::MissingInBaseline });
        }
    }
    Ok(breaches)
}

/// Captures the snapshot for `topic` (`kernels` or `sweep`).
///
/// # Errors
///
/// [`SnapshotError::UnknownTopic`] for other topic strings;
/// [`SnapshotError::Setup`] if a bench workload cannot be constructed
/// (impossible with the shipped calibration data).
pub fn capture(topic: &str, budget: Duration) -> Result<BenchSnapshot, SnapshotError> {
    match topic {
        "kernels" => kernels_snapshot(budget),
        "sweep" => sweep_snapshot(budget),
        other => Err(SnapshotError::UnknownTopic(other.to_string())),
    }
}

/// Measures one closure the way the vendored criterion harness does:
/// calibrate the iteration count up by 4x until a sample takes ≥ 5 ms
/// (or 2^20 iterations), then sample within the budget and keep the
/// median.
fn measure<F: FnMut()>(id: &str, budget: Duration, mut f: F) -> BenchEntry {
    let mut iters: u64 = 1;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters *= 4;
    };
    let samples = ((budget.as_secs_f64() / (per_iter * iters as f64).max(1e-9)) as usize)
        .clamp(3, 25);
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    BenchEntry {
        id: id.to_string(),
        median_ns: times[times.len() / 2] * 1e9,
        iters,
        samples: samples as u32,
    }
}

fn setup<T, E: fmt::Display>(what: &str, r: Result<T, E>) -> Result<T, SnapshotError> {
    r.map_err(|e| SnapshotError::Setup(format!("{what}: {e}")))
}

/// The `kernels` topic: the numeric-core benches of
/// `benches/kernels.rs`, same ids, same order, same inputs.
fn kernels_snapshot(budget: Duration) -> Result<BenchSnapshot, SnapshotError> {
    use std::hint::black_box;
    let mut entries = Vec::new();

    for n in [64usize, 128] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        entries.push(measure(&format!("kernels/mmm/naive/{n}"), budget, || {
            if let Ok(c) = naive::multiply(&a, &b) {
                black_box(c);
            }
        }));
        entries.push(measure(&format!("kernels/mmm/blocked/{n}"), budget, || {
            if let Ok(c) = blocked::multiply(&a, &b, 32) {
                black_box(c);
            }
        }));
        entries.push(measure(&format!("kernels/mmm/parallel4/{n}"), budget, || {
            if let Ok(c) = parallel::multiply(&a, &b, 32, 4) {
                black_box(c);
            }
        }));
        entries.push(measure(&format!("kernels/mmm/strassen/{n}"), budget, || {
            if let Ok(c) = strassen::multiply(&a, &b) {
                black_box(c);
            }
        }));
    }

    for log2 in [8u32, 12] {
        let n = 1usize << log2;
        let plan = setup("fft plan", Fft::new(n))?;
        let split = setup("split-radix plan", SplitRadixFft::new(n))?;
        let signal = random_signal(n, 3);
        let mut buf = signal.clone();
        entries.push(measure(&format!("kernels/fft/{n}"), budget, || {
            buf.copy_from_slice(&signal);
            if plan.transform(&mut buf, Direction::Forward).is_ok() {
                black_box(buf[0]);
            }
        }));
        entries.push(measure(&format!("kernels/fft/split_radix/{n}"), budget, || {
            if let Ok(out) = split.transform(&signal, Direction::Forward) {
                black_box(out);
            }
        }));
    }

    let portfolio = random_portfolio(4096, 5);
    entries.push(measure("kernels/black_scholes/serial", budget, || {
        black_box(batch::price_all(&portfolio));
    }));
    entries.push(measure("kernels/black_scholes/parallel4", budget, || {
        if let Ok(prices) = batch::price_all_parallel(&portfolio, 4) {
            black_box(prices);
        }
    }));

    Ok(BenchSnapshot {
        schema_version: SCHEMA_VERSION,
        topic: "kernels".to_string(),
        time_unit: "ns".to_string(),
        entries,
    })
}

/// The `sweep` topic: the Figure-6-sized sweep batch of
/// `benches/sweep.rs` in its three configurations, plus the two
/// optimizer search strategies head to head on a paper-sized grid.
fn sweep_snapshot(budget: Duration) -> Result<BenchSnapshot, SnapshotError> {
    use std::hint::black_box;
    let engine = setup(
        "baseline engine",
        ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new())),
    )?;
    let designs = DesignId::for_column(engine.table5(), WorkloadColumn::Fft1024);
    let points = setup(
        "figure batch",
        figure_points(&engine, &designs, WorkloadColumn::Fft1024, &[0.5, 0.9, 0.99, 0.999]),
    )?;

    let mut entries = Vec::new();
    let sequential = SweepConfig { threads: Some(1), use_cache: false };
    entries.push(measure("sweep/sequential", budget, || {
        black_box(sweep(&engine, points.clone(), &sequential));
    }));
    let parallel_cfg = SweepConfig { threads: None, use_cache: false };
    entries.push(measure("sweep/parallel", budget, || {
        black_box(sweep(&engine, points.clone(), &parallel_cfg));
    }));
    let cached = SweepConfig { threads: None, use_cache: true };
    sweep(&engine, points.clone(), &cached);
    entries.push(measure("sweep/cached", budget, || {
        black_box(sweep(&engine, points.clone(), &cached));
    }));

    // Optimizer search strategies on a paper-sized heterogeneous grid.
    let opt = Optimizer::paper_default();
    let asic = setup("u-core", UCore::new(27.4, 0.79))?;
    let specs = [
        ChipSpec::symmetric(),
        ChipSpec::asymmetric_offload(),
        ChipSpec::heterogeneous(asic),
    ];
    let budgets = setup("budgets", Budgets::new(40.0, 12.0, 6.4))?;
    let fractions: Vec<ParallelFraction> = [0.5, 0.9, 0.99, 0.999]
        .iter()
        .map(|&v| setup("fraction", ParallelFraction::new(v)))
        .collect::<Result<_, _>>()?;
    entries.push(measure("optimize/exhaustive", budget, || {
        for spec in &specs {
            for &f in &fractions {
                black_box(opt.optimize_exhaustive(spec, &budgets, f).ok());
            }
        }
    }));
    entries.push(measure("optimize/pruned", budget, || {
        for spec in &specs {
            for &f in &fractions {
                black_box(opt.optimize(spec, &budgets, f).ok());
            }
        }
    }));

    // Portfolio allocation strategies on the composite three-kernel
    // workload: the closed-form KKT waterfiller against the exhaustive
    // grid oracle it is differentially tested against.
    let table5 = setup("table 5", ucore_calibrate::Table5::derive())?;
    let chip = {
        let f = setup("fraction", ParallelFraction::new(0.99))?;
        let workload = setup(
            "composite workload",
            ucore_calibrate::composite_workload(&table5, ucore_devices::DeviceId::Asic, f),
        )?;
        setup("portfolio chip", ucore_core::PortfolioChip::new(40.0, 4.0, workload))?
    };
    entries.push(measure("portfolio/allocate", budget, || {
        black_box(chip.allocate().ok());
    }));
    entries.push(measure("portfolio/exhaustive", budget, || {
        black_box(chip.allocate_exhaustive(64).ok());
    }));

    Ok(BenchSnapshot {
        schema_version: SCHEMA_VERSION,
        topic: "sweep".to_string(),
        time_unit: "ns".to_string(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(topic: &str, entries: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            schema_version: SCHEMA_VERSION,
            topic: topic.to_string(),
            time_unit: "ns".to_string(),
            entries: entries
                .iter()
                .map(|(id, ns)| BenchEntry {
                    id: id.to_string(),
                    median_ns: *ns,
                    iters: 16,
                    samples: 5,
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let s = snap("kernels", &[("a", 10.0), ("b", 20.5)]);
        let json = s.to_json().unwrap();
        assert_eq!(BenchSnapshot::from_slice(json.as_bytes()).unwrap(), s);
    }

    #[test]
    fn json_key_order_is_declaration_order() {
        let json = snap("kernels", &[("a", 10.0)]).to_json().unwrap();
        let schema = json.find("schema_version").unwrap();
        let topic = json.find("\"topic\"").unwrap();
        let unit = json.find("time_unit").unwrap();
        let entries = json.find("\"entries\"").unwrap();
        let id = json.find("\"id\"").unwrap();
        let median = json.find("median_ns").unwrap();
        let iters = json.find("\"iters\"").unwrap();
        let samples = json.find("\"samples\"").unwrap();
        assert!(schema < topic && topic < unit && unit < entries);
        assert!(entries < id && id < median && median < iters && iters < samples);
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn comparator_passes_within_tolerance_and_when_faster() {
        let base = snap("kernels", &[("a", 100.0), ("b", 100.0)]);
        let cur = snap("kernels", &[("a", 150.0), ("b", 10.0)]);
        assert_eq!(compare(&base, &cur, 2.0).unwrap(), vec![]);
    }

    #[test]
    fn comparator_flags_slowdowns_past_tolerance() {
        let base = snap("kernels", &[("a", 100.0), ("b", 100.0)]);
        let cur = snap("kernels", &[("a", 250.0), ("b", 100.0)]);
        let breaches = compare(&base, &cur, 2.0).unwrap();
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].id, "a");
        match &breaches[0].kind {
            BreachKind::Slower { ratio, tolerance, .. } => {
                assert!((ratio - 2.5).abs() < 1e-12);
                assert!((tolerance - 2.0).abs() < 1e-12);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let rendered = breaches[0].to_string();
        assert!(rendered.contains("bench regression: a"), "{rendered}");
        assert!(rendered.contains("x2.50 > x2.00"), "{rendered}");
    }

    #[test]
    fn comparator_flags_missing_ids_both_ways() {
        let base = snap("kernels", &[("a", 100.0), ("gone", 100.0)]);
        let cur = snap("kernels", &[("a", 100.0), ("new", 100.0)]);
        let breaches = compare(&base, &cur, 2.0).unwrap();
        assert_eq!(breaches.len(), 2);
        assert_eq!(
            (breaches[0].id.as_str(), breaches[0].kind.clone()),
            ("gone", BreachKind::MissingInCurrent)
        );
        assert_eq!(
            (breaches[1].id.as_str(), breaches[1].kind.clone()),
            ("new", BreachKind::MissingInBaseline)
        );
    }

    #[test]
    fn comparator_refuses_schema_and_topic_mismatch() {
        let base = snap("kernels", &[("a", 100.0)]);
        let mut v2 = base.clone();
        v2.schema_version = SCHEMA_VERSION + 1;
        assert!(matches!(
            compare(&base, &v2, 2.0),
            Err(SnapshotError::SchemaVersion { .. })
        ));
        let other = snap("sweep", &[("a", 100.0)]);
        assert!(matches!(
            compare(&base, &other, 2.0),
            Err(SnapshotError::TopicMismatch { .. })
        ));
    }

    #[test]
    fn unknown_topic_is_rejected() {
        assert!(matches!(
            capture("nonsense", Duration::from_millis(1)),
            Err(SnapshotError::UnknownTopic(_))
        ));
    }

    #[test]
    fn measure_produces_positive_median() {
        let entry = measure("t", Duration::from_millis(5), || {
            std::hint::black_box((0..100u64).sum::<u64>());
        });
        assert_eq!(entry.id, "t");
        assert!(entry.median_ns > 0.0);
        assert!(entry.iters >= 1);
        assert!((3..=25).contains(&(entry.samples as usize)));
    }
}
