//! Property-based invariants for the metrics registry (ISSUE 5
//! satellite): bucket counts sum to the recorded total, counter
//! identities hold once writers quiesce, and snapshots are monotone
//! across successive reads *while* a concurrent increment storm runs.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use ucore_obs::{Histogram, MetricsSnapshot, Registry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn histogram_bucket_counts_sum_to_total(
        values in prop::collection::vec(-1.0e6f64..=1.0e6, 64),
        bounds in prop::collection::vec(-100.0f64..=100.0, 4),
    ) {
        let h = Histogram::new(&bounds);
        for &v in &values {
            h.observe(v);
        }
        // Hostile extras: NaN and infinities must land in a bucket too.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            h.observe(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.total, values.len() as u64 + 3);
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), snap.total);
        prop_assert_eq!(snap.counts.len(), snap.bounds.len() + 1);
    }

    #[test]
    fn histogram_is_insensitive_to_observation_order(
        values in prop::collection::vec(0.0f64..=1.0, 48),
    ) {
        // The determinism contract for data-derived histograms: bucket
        // counts are order-independent, so any permutation (i.e. any
        // thread schedule) freezes to the same snapshot.
        let bounds = [0.25, 0.5, 0.75];
        let forward = Histogram::new(&bounds);
        let backward = Histogram::new(&bounds);
        for &v in &values {
            forward.observe(v);
        }
        for &v in values.iter().rev() {
            backward.observe(v);
        }
        prop_assert_eq!(forward.snapshot(), backward.snapshot());
    }

    #[test]
    fn storm_preserves_identities_and_snapshot_monotonicity(
        per_thread in 100usize..=400,
        threads in 2usize..=6,
    ) {
        let r = Registry::new();
        let hits = r.counter("cache.hits");
        let misses = r.counter("cache.misses");
        let lookups = r.counter("cache.lookups");
        let hist = r.histogram("storm.values", &[0.25, 0.5, 0.75]);
        let done = AtomicBool::new(false);
        let monotone = std::thread::scope(|scope| {
            for t in 0..threads {
                let (hits, misses, lookups, hist) = (&hits, &misses, &lookups, &hist);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        if (i + t) % 3 == 0 {
                            hits.inc();
                        } else {
                            misses.inc();
                        }
                        lookups.inc();
                        hist.observe((i % 100) as f64 / 100.0);
                    }
                });
            }
            // A racing reader: every counter must be non-decreasing
            // across successive snapshots taken mid-storm.
            let reader = scope.spawn(|| {
                let names = ["cache.hits", "cache.misses", "cache.lookups"];
                let mut previous = MetricsSnapshot::default();
                let mut monotone = true;
                while !done.load(Ordering::Relaxed) {
                    let snap = r.snapshot();
                    monotone &= names
                        .iter()
                        .all(|n| snap.counter(n) >= previous.counter(n));
                    monotone &= snap
                        .histogram("storm.values")
                        .map(|h| h.total)
                        .unwrap_or(0)
                        >= previous.histogram("storm.values").map(|h| h.total).unwrap_or(0);
                    previous = snap;
                }
                monotone
            });
            // Writer handles joined by scope exit ordering: spawn order
            // does not matter, the scope joins everything; signal the
            // reader once writers are done by polling the totals.
            let target = (threads * per_thread) as u64;
            while lookups.get() < target {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
            reader.join().unwrap_or(false)
        });
        prop_assert!(monotone, "a snapshot observed a counter decreasing");
        // Quiesced identities: exactly one of hits/misses plus one
        // lookup per iteration.
        let snap = r.snapshot();
        let total = (threads * per_thread) as u64;
        prop_assert_eq!(snap.counter("cache.lookups"), total);
        prop_assert_eq!(
            snap.counter("cache.hits") + snap.counter("cache.misses"),
            snap.counter("cache.lookups")
        );
        let h = snap.histogram("storm.values").cloned().unwrap_or_default();
        prop_assert_eq!(h.total, total);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), h.total);
    }
}
