//! Structured spans: an append-only binary ring buffer of enter/exit
//! events.
//!
//! Tracing is off by default and costs one relaxed atomic load per
//! [`span!`](crate::span) site when disabled. [`start`] installs a
//! process-wide ring buffer (guard-scoped, mirroring the workspace's
//! `faultinject`/`durability` activation pattern); every
//! [`SpanGuard::enter`] then records an *enter* event and its `Drop`
//! records the matching *exit*. Because the exit is emitted from
//! `Drop`, it runs during unwinding too: a contained worker panic
//! inside a span still closes it, so the buffer is never corrupted by
//! the sweep's `catch_unwind` containment boundary (the fault-injection
//! crossover suite asserts this).
//!
//! Events are keyed by `(sweep_seq, index, depth)` and carry two
//! timestamps from [`clock`](crate::clock): the global monotonic tick
//! (total order, deterministic structure) and wall-clock nanoseconds
//! (observability-only payload). When the buffer wraps, the oldest
//! events are overwritten and counted in [`Trace::dropped`] — profiles
//! over a wrapped buffer report their partiality instead of lying.
//!
//! # Binary format (version 1)
//!
//! Everything little-endian:
//!
//! ```text
//! magic  b"UOBS"
//! u16    version (1)
//! u16    name count        — names sorted bytewise, ids remapped, so
//!                            the table is deterministic even though
//!                            interning order races across threads
//! per name: u16 length + UTF-8 bytes
//! u64    dropped event count
//! u64    event count
//! per event (40 bytes):
//!   u8  kind (0 enter / 1 exit)   u8  depth
//!   u16 thread                    u16 name id      u16 reserved (0)
//!   u64 sweep_seq   u64 index   u64 tick   u64 wall_ns
//! ```

use crate::clock;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Magic bytes opening every encoded trace.
pub const TRACE_MAGIC: [u8; 4] = *b"UOBS";
/// Current binary format version.
pub const TRACE_VERSION: u16 = 1;
/// Bytes per encoded event record.
pub const EVENT_SIZE: usize = 40;

/// Enter or exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The span opened.
    Enter,
    /// The span closed (including via unwinding).
    Exit,
}

/// One decoded enter/exit event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Enter or exit.
    pub kind: SpanKind,
    /// Index into [`Trace::names`].
    pub name: u16,
    /// Recording thread (ids assigned in first-use order).
    pub thread: u16,
    /// Nesting depth on its thread at enter time (outermost = 0).
    pub depth: u8,
    /// The sweep sequence number the span belongs to (0 outside a
    /// durable sweep).
    pub sweep_seq: u64,
    /// The submission index of the point the span covers (0 when not
    /// point-scoped).
    pub index: u64,
    /// Global monotonic tick ([`clock::tick`]): total order across
    /// threads.
    pub tick: u64,
    /// Wall-clock nanoseconds ([`clock::wall_ns`]): observability-only.
    pub wall_ns: u64,
}

/// A decoded trace: the sorted name table, the events in recording
/// order, and how many events the ring buffer had to drop.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Span names, sorted bytewise; `SpanEvent::name` indexes here.
    pub names: Vec<String>,
    /// Events, oldest first.
    pub events: Vec<SpanEvent>,
    /// Events overwritten after the ring buffer wrapped.
    pub dropped: u64,
}

impl Trace {
    /// The span name for an event's `name` id (empty when out of
    /// range).
    pub fn name(&self, id: u16) -> &str {
        self.names.get(usize::from(id)).map(String::as_str).unwrap_or("")
    }

    /// Serializes the trace to the version-1 binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            16 + self.names.iter().map(|n| 2 + n.len()).sum::<usize>()
                + self.events.len() * EVENT_SIZE,
        );
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.names.len() as u16).to_le_bytes());
        for name in &self.names {
            let bytes = name.as_bytes();
            let len = bytes.len().min(usize::from(u16::MAX)) as u16;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&bytes[..usize::from(len)]);
        }
        out.extend_from_slice(&self.dropped.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for ev in &self.events {
            out.push(match ev.kind {
                SpanKind::Enter => 0,
                SpanKind::Exit => 1,
            });
            out.push(ev.depth);
            out.extend_from_slice(&ev.thread.to_le_bytes());
            out.extend_from_slice(&ev.name.to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes());
            out.extend_from_slice(&ev.sweep_seq.to_le_bytes());
            out.extend_from_slice(&ev.index.to_le_bytes());
            out.extend_from_slice(&ev.tick.to_le_bytes());
            out.extend_from_slice(&ev.wall_ns.to_le_bytes());
        }
        out
    }

    /// Parses a version-1 binary trace.
    ///
    /// # Errors
    ///
    /// [`TraceError`] when the magic, version, name table, or event
    /// section is malformed or truncated.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(4)? != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = r.u16()?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let name_count = r.u16()?;
        let mut names = Vec::with_capacity(usize::from(name_count));
        for _ in 0..name_count {
            let len = usize::from(r.u16()?);
            let raw = r.slice(len)?;
            let name = std::str::from_utf8(raw).map_err(|_| TraceError::BadName)?;
            names.push(name.to_string());
        }
        let dropped = r.u64()?;
        let event_count = r.u64()?;
        let expected = (event_count as usize).checked_mul(EVENT_SIZE);
        if expected != Some(r.remaining()) {
            return Err(TraceError::Truncated);
        }
        let mut events = Vec::with_capacity(event_count as usize);
        for _ in 0..event_count {
            let kind = match r.u8()? {
                0 => SpanKind::Enter,
                1 => SpanKind::Exit,
                other => return Err(TraceError::BadKind(other)),
            };
            let depth = r.u8()?;
            let thread = r.u16()?;
            let name = r.u16()?;
            let _reserved = r.u16()?;
            if usize::from(name) >= names.len() {
                return Err(TraceError::BadNameId(name));
            }
            events.push(SpanEvent {
                kind,
                name,
                thread,
                depth,
                sweep_seq: r.u64()?,
                index: r.u64()?,
                tick: r.u64()?,
                wall_ns: r.u64()?,
            });
        }
        Ok(Trace { names, events, dropped })
    }
}

/// Why a binary trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The version field names a format this decoder does not speak.
    UnsupportedVersion(u16),
    /// The buffer ended inside a field.
    Truncated,
    /// A name-table entry was not valid UTF-8.
    BadName,
    /// An event's kind byte was neither enter nor exit.
    BadKind(u8),
    /// An event referenced a name id beyond the name table.
    BadNameId(u16),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a ucore trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::Truncated => write!(f, "trace is truncated"),
            TraceError::BadName => write!(f, "trace name table is not valid UTF-8"),
            TraceError::BadKind(k) => write!(f, "unknown span event kind {k}"),
            TraceError::BadNameId(id) => write!(f, "event references unknown name id {id}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A bounds-checked little-endian cursor.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn slice(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.at.checked_add(n).ok_or(TraceError::Truncated)?;
        let s = self.bytes.get(self.at..end).ok_or(TraceError::Truncated)?;
        self.at = end;
        Ok(s)
    }

    fn take(&mut self, n: usize) -> Result<Vec<u8>, TraceError> {
        Ok(self.slice(n)?.to_vec())
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.slice(1)?.first().copied().unwrap_or(0))
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        let s = self.slice(2)?;
        Ok(u16::from_le_bytes([
            s.first().copied().unwrap_or(0),
            s.get(1).copied().unwrap_or(0),
        ]))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        let s = self.slice(8)?;
        let mut b = [0u8; 8];
        for (dst, src) in b.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(u64::from_le_bytes(b))
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.at)
    }
}

/// A raw recorded event (name still in interning order).
#[derive(Debug, Clone, Copy)]
struct RawEvent {
    kind: u8,
    depth: u8,
    thread: u16,
    name: u16,
    sweep_seq: u64,
    index: u64,
    tick: u64,
    wall_ns: u64,
}

/// The live ring buffer.
#[derive(Debug)]
struct TraceBuffer {
    slots: Vec<Mutex<Option<RawEvent>>>,
    cursor: AtomicU64,
    /// Names in first-intern order; remapped to sorted order at
    /// snapshot time.
    names: Mutex<Vec<&'static str>>,
}

impl TraceBuffer {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        TraceBuffer {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            names: Mutex::new(Vec::new()),
        }
    }

    /// The id for `name`, interning it on first sight. Span names are
    /// compile-time literals, so the table stays tiny and a linear scan
    /// is cheaper than any map.
    fn intern(&self, name: &'static str) -> u16 {
        let mut names = self.names.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) = names.iter().position(|&n| n == name) {
            return pos as u16;
        }
        if names.len() >= usize::from(u16::MAX) {
            return u16::MAX; // pathological; events keep the sentinel id
        }
        names.push(name);
        (names.len() - 1) as u16
    }

    fn record(&self, ev: RawEvent) {
        let claim = self.cursor.fetch_add(1, Ordering::Relaxed);
        let idx = (claim % self.slots.len() as u64) as usize;
        if let Some(slot) = self.slots.get(idx) {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(ev);
        }
    }

    /// Freezes the buffer into a [`Trace`]: events oldest-first, names
    /// sorted bytewise with event ids remapped (interning order races
    /// across threads; sorted order is deterministic).
    fn freeze(&self) -> Trace {
        let names = self.names.lock().unwrap_or_else(PoisonError::into_inner).clone();
        let mut sorted: Vec<&'static str> = names.clone();
        sorted.sort_unstable();
        let remap: BTreeMap<&'static str, u16> = sorted
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as u16))
            .collect();
        let written = self.cursor.load(Ordering::Relaxed);
        let capacity = self.slots.len() as u64;
        let dropped = written.saturating_sub(capacity);
        let start = if written > capacity { written % capacity } else { 0 };
        let live = written.min(capacity);
        let mut events = Vec::with_capacity(live as usize);
        for i in 0..live {
            let idx = ((start + i) % capacity) as usize;
            let Some(slot) = self.slots.get(idx) else { continue };
            let Some(raw) = *slot.lock().unwrap_or_else(PoisonError::into_inner) else {
                continue; // claimed but not yet written; skip the hole
            };
            let name = names
                .get(usize::from(raw.name))
                .and_then(|n| remap.get(n).copied())
                .unwrap_or(u16::MAX);
            events.push(SpanEvent {
                kind: if raw.kind == 0 { SpanKind::Enter } else { SpanKind::Exit },
                name,
                thread: raw.thread,
                depth: raw.depth,
                sweep_seq: raw.sweep_seq,
                index: raw.index,
                tick: raw.tick,
                wall_ns: raw.wall_ns,
            });
        }
        Trace {
            names: sorted.into_iter().map(str::to_string).collect(),
            events,
            dropped,
        }
    }
}

/// Fast-path flag: `false` makes `span!` cost one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Arc<TraceBuffer>>> = RwLock::new(None);

/// Default ring-buffer capacity (events): comfortably holds every span
/// of a full-figure sweep with room for nested phases.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Disables tracing (and releases the buffer) when dropped.
#[derive(Debug)]
pub struct TraceGuard {
    _private: (),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
        match ACTIVE.write() {
            Ok(mut slot) => *slot = None,
            Err(e) => *e.into_inner() = None,
        }
    }
}

/// Installs a fresh ring buffer of `capacity` events and enables span
/// recording until the returned guard is dropped. A second `start`
/// replaces the first buffer (the earlier guard's drop then simply
/// disables whatever is active — last activation wins, like the
/// durability guard).
pub fn start(capacity: usize) -> TraceGuard {
    let buffer = Arc::new(TraceBuffer::new(capacity));
    match ACTIVE.write() {
        Ok(mut slot) => *slot = Some(buffer),
        Err(e) => *e.into_inner() = Some(buffer),
    }
    ENABLED.store(true, Ordering::Relaxed);
    TraceGuard { _private: () }
}

/// Whether a trace buffer is currently recording.
pub fn active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn current() -> Option<Arc<TraceBuffer>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    ACTIVE
        .read()
        .map(|slot| slot.as_ref().map(Arc::clone))
        .unwrap_or_else(|e| e.into_inner().as_ref().map(Arc::clone))
}

/// Freezes the active buffer into a [`Trace`] (`None` when tracing is
/// off). The buffer keeps recording; snapshots are cheap copies.
pub fn snapshot() -> Option<Trace> {
    current().map(|b| b.freeze())
}

/// Encodes the active buffer to the binary format (`None` when tracing
/// is off).
pub fn encode() -> Option<Vec<u8>> {
    snapshot().map(|t| t.encode())
}

thread_local! {
    /// This thread's small dense id, assigned on first span.
    static THREAD_ID: u16 = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        (NEXT.fetch_add(1, Ordering::Relaxed) & u64::from(u16::MAX)) as u16
    };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u8> = const { Cell::new(0) };
}

/// An RAII span: records an enter event at construction and the
/// matching exit event when dropped — including during unwinding, so a
/// contained panic still closes its spans.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when tracing was off at enter time (the guard is inert —
    /// and stays inert even if tracing starts mid-span, so enters and
    /// exits always pair up within one buffer).
    state: Option<SpanState>,
}

#[derive(Debug)]
struct SpanState {
    buffer: Arc<TraceBuffer>,
    name: u16,
    thread: u16,
    depth: u8,
    sweep_seq: u64,
    index: u64,
}

impl SpanGuard {
    /// Opens a span. `name` should be a dotted compile-time literal
    /// (`"engine.node_point"`); `sweep_seq`/`index` key the span to a
    /// sweep point (pass 0 when not applicable).
    pub fn enter(name: &'static str, sweep_seq: u64, index: u64) -> SpanGuard {
        let Some(buffer) = current() else {
            return SpanGuard { state: None };
        };
        let name_id = buffer.intern(name);
        let thread = THREAD_ID.with(|id| *id);
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth.saturating_add(1));
            depth
        });
        buffer.record(RawEvent {
            kind: 0,
            depth,
            thread,
            name: name_id,
            sweep_seq,
            index,
            tick: clock::tick(),
            wall_ns: clock::wall_ns(),
        });
        SpanGuard {
            state: Some(SpanState { buffer, name: name_id, thread, depth, sweep_seq, index }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        state.buffer.record(RawEvent {
            kind: 1,
            depth: state.depth,
            thread: state.thread,
            name: state.name,
            sweep_seq: state.sweep_seq,
            index: state.index,
            tick: clock::tick(),
            wall_ns: clock::wall_ns(),
        });
    }
}

/// Opens a [`SpanGuard`] for the rest of the enclosing scope.
///
/// ```
/// let _guard = ucore_obs::trace::start(1024);
/// {
///     let _span = ucore_obs::span!("example.phase", 0, 7);
/// }
/// let trace = ucore_obs::trace::snapshot().unwrap();
/// assert_eq!(trace.events.len(), 2);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::enter($name, 0, 0)
    };
    ($name:expr, $index:expr) => {
        $crate::trace::SpanGuard::enter($name, 0, ($index) as u64)
    };
    ($name:expr, $seq:expr, $index:expr) => {
        $crate::trace::SpanGuard::enter($name, ($seq) as u64, ($index) as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trace tests share the process-global buffer; serialize them.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_tracing_is_inert() {
        let _lock = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!active());
        let _span = SpanGuard::enter("inert", 0, 0);
        assert!(snapshot().is_none());
        assert!(encode().is_none());
    }

    #[test]
    fn spans_pair_up_and_round_trip_through_the_codec() {
        let _lock = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let _guard = start(256);
        {
            let _outer = SpanGuard::enter("test.outer", 3, 11);
            let _inner = SpanGuard::enter("test.inner", 3, 11);
        }
        let trace = snapshot().unwrap();
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.names, vec!["test.inner", "test.outer"]);
        let outer_enter = &trace.events[0];
        assert_eq!(outer_enter.kind, SpanKind::Enter);
        assert_eq!(trace.name(outer_enter.name), "test.outer");
        assert_eq!((outer_enter.sweep_seq, outer_enter.index), (3, 11));
        assert_eq!(outer_enter.depth, 0);
        assert_eq!(trace.events[1].depth, 1, "inner span nests");
        // Exits come back innermost-first.
        assert_eq!(trace.events[2].kind, SpanKind::Exit);
        assert_eq!(trace.name(trace.events[2].name), "test.inner");
        // Ticks totally order the events.
        let ticks: Vec<u64> = trace.events.iter().map(|e| e.tick).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        assert_eq!(ticks, sorted);
        let decoded = Trace::decode(&trace.encode()).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn exit_is_recorded_during_unwinding() {
        let _lock = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let _guard = start(256);
        let caught = std::panic::catch_unwind(|| {
            let _span = SpanGuard::enter("test.panicky", 0, 5);
            panic!("boom");
        });
        assert!(caught.is_err());
        let trace = snapshot().unwrap();
        let (enters, exits): (Vec<_>, Vec<_>) = trace
            .events
            .iter()
            .partition(|e| e.kind == SpanKind::Enter);
        assert_eq!(enters.len(), 1);
        assert_eq!(exits.len(), 1, "Drop ran during unwinding");
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let _lock = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let _guard = start(16);
        for i in 0..20u64 {
            let _span = SpanGuard::enter("test.wrap", 0, i);
        }
        let trace = snapshot().unwrap();
        assert_eq!(trace.events.len(), 16);
        assert_eq!(trace.dropped, 24, "40 events through a 16-slot ring");
        // The survivors are the newest events.
        assert_eq!(trace.events.last().map(|e| e.index), Some(19));
    }

    #[test]
    fn decode_rejects_malformed_traces() {
        assert_eq!(Trace::decode(b"nop"), Err(TraceError::Truncated));
        assert_eq!(Trace::decode(b"nope"), Err(TraceError::BadMagic));
        assert_eq!(Trace::decode(b"XXXX\x01\x00"), Err(TraceError::BadMagic));
        let mut v2 = Vec::new();
        v2.extend_from_slice(&TRACE_MAGIC);
        v2.extend_from_slice(&2u16.to_le_bytes());
        assert_eq!(Trace::decode(&v2), Err(TraceError::UnsupportedVersion(2)));
        let good = Trace::default().encode();
        assert_eq!(Trace::decode(&good), Ok(Trace::default()));
        let truncated = &good[..good.len() - 1];
        assert_eq!(Trace::decode(truncated), Err(TraceError::Truncated));
    }
}
