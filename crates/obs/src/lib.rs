//! # ucore-obs — the deterministic observability layer
//!
//! Counters, gauges, histograms, structured spans, and a span-profile
//! reducer for the sweep stack. The design constraint that shapes
//! everything here is the workspace's determinism contract (DESIGN.md
//! §10/§12): a figure's output bytes must not depend on thread count,
//! scheduling, or whether observability is enabled at all. This crate
//! therefore splits observability state into two strictly separated
//! channels:
//!
//! * **Deterministic** — every [`metrics`] value that is derived from
//!   the *data* of a run (outcome counts, cache activity, value-domain
//!   histograms) is identical at any thread count, and the registry
//!   [`MetricsSnapshot`] renders it in `BTreeMap` order with exact
//!   shortest-roundtrip `f64` formatting.
//! * **Observability-only wall time** — the *only* wall-clock reads in
//!   the crate live in [`clock`], behind a reasoned `ucore-lint`
//!   suppression. Wall-clock values flow exclusively into span events
//!   and timing histograms, never into output bytes.
//!
//! [`trace`] provides the `span!` guard API: enter/exit events keyed by
//! `(sweep_seq, index, depth)` with a global monotonic tick for total
//! ordering, recorded into an append-only ring buffer that survives
//! contained worker panics (the guard emits its exit event from `Drop`,
//! which runs during unwinding). [`profile`] folds a recorded trace
//! into a per-phase self/total table and a `flamegraph.pl`-compatible
//! folded-stack text.
//!
//! ```
//! let registry = ucore_obs::registry();
//! let hits = registry.counter("example.hits");
//! hits.inc();
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("example.hits"), 1);
//! assert!(snap.render_prometheus().contains("ucore_example_hits 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Observability must never take a run down: no unwraps on this path.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod clock;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{
    is_timing_metric, registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue,
    MetricsSnapshot, Registry,
};
pub use profile::{PhaseProfile, ProfileReport};
pub use trace::{SpanEvent, SpanGuard, SpanKind, Trace, TraceError, TraceGuard};
