//! The span-profile reducer: folds a recorded [`Trace`] into a
//! per-phase self/total time table and a `flamegraph.pl`-compatible
//! folded-stack text.
//!
//! Events are sorted by their global monotonic tick and replayed
//! through one reconstructed stack per thread. A phase's **total** time
//! is wall time between its enter and exit; its **self** time is total
//! minus the totals of its direct children. Output rows are keyed and
//! ordered by span name (`BTreeMap`), so the *structure* of a profile
//! is deterministic even though the times are wall-clock.
//!
//! The reducer is defensive about imperfect traces: an exit without a
//! matching enter (its enter was overwritten after the ring buffer
//! wrapped) and an enter that never exits (still running at snapshot
//! time) are counted in [`ProfileReport::unmatched`] rather than
//! corrupting the table, and [`ProfileReport::dropped`] carries the
//! buffer's overwrite count so a partial profile says so.

use crate::trace::{SpanKind, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Accumulated timings for one span name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseProfile {
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Wall nanoseconds between enter and exit, summed.
    pub total_ns: u64,
    /// Total minus the totals of direct children, summed.
    pub self_ns: u64,
}

/// The reduced profile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// Per-phase rows, keyed by span name (deterministic order).
    pub phases: BTreeMap<String, PhaseProfile>,
    /// Events the ring buffer overwrote (copied from the trace): > 0
    /// means the profile undercounts.
    pub dropped: u64,
    /// Exits without a live enter plus enters still open at snapshot
    /// time.
    pub unmatched: u64,
}

/// An open frame during stack reconstruction.
struct Frame {
    name: u16,
    enter_wall: u64,
    child_ns: u64,
}

/// Replays `trace` into per-thread stacks, invoking `on_exit` for every
/// completed span with `(stack-below+self, total_ns, self_ns)` — shared
/// by the table and folded-stack reducers.
fn replay(trace: &Trace, mut on_exit: impl FnMut(&[Frame], &Frame, u64, u64)) -> u64 {
    let mut order: Vec<usize> = (0..trace.events.len()).collect();
    order.sort_by_key(|&i| trace.events.get(i).map(|e| e.tick).unwrap_or(u64::MAX));
    let mut stacks: BTreeMap<u16, Vec<Frame>> = BTreeMap::new();
    let mut unmatched = 0u64;
    for i in order {
        let Some(ev) = trace.events.get(i) else { continue };
        let stack = stacks.entry(ev.thread).or_default();
        match ev.kind {
            SpanKind::Enter => stack.push(Frame {
                name: ev.name,
                enter_wall: ev.wall_ns,
                child_ns: 0,
            }),
            SpanKind::Exit => {
                // Pop only a matching frame: a mismatch means the enter
                // was lost to ring-buffer wrap.
                if stack.last().is_some_and(|f| f.name == ev.name) {
                    let Some(frame) = stack.pop() else { continue };
                    let total = ev.wall_ns.saturating_sub(frame.enter_wall);
                    let own = total.saturating_sub(frame.child_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.child_ns = parent.child_ns.saturating_add(total);
                    }
                    on_exit(stack, &frame, total, own);
                } else {
                    unmatched += 1;
                }
            }
        }
    }
    // Enters still open (spans live at snapshot time, or whose exit was
    // dropped) are unmatched too.
    unmatched + stacks.values().map(|s| s.len() as u64).sum::<u64>()
}

/// Reduces a trace to the per-phase self/total table.
pub fn reduce(trace: &Trace) -> ProfileReport {
    let mut phases: BTreeMap<String, PhaseProfile> = BTreeMap::new();
    let unmatched = replay(trace, |_stack, frame, total, own| {
        let row = phases.entry(trace.name(frame.name).to_string()).or_default();
        row.count += 1;
        row.total_ns = row.total_ns.saturating_add(total);
        row.self_ns = row.self_ns.saturating_add(own);
    });
    ProfileReport { phases, dropped: trace.dropped, unmatched }
}

/// Renders a trace as `flamegraph.pl` folded stacks: one
/// `root;child;leaf weight` line per distinct stack, weights in
/// self-time nanoseconds, lines sorted (deterministic structure).
pub fn folded_stacks(trace: &Trace) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    replay(trace, |stack, frame, _total, own| {
        let mut path = String::new();
        for f in stack {
            path.push_str(trace.name(f.name));
            path.push(';');
        }
        path.push_str(trace.name(frame.name));
        let w = weights.entry(path).or_insert(0);
        *w = w.saturating_add(own);
    });
    let mut out = String::new();
    for (path, weight) in &weights {
        let _ = writeln!(out, "{path} {weight}");
    }
    out
}

impl ProfileReport {
    /// A fixed-width human table: one row per phase, name-ordered, with
    /// count, total ms, and self ms, plus partiality notes when the
    /// trace was imperfect.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let name_width = self
            .phases
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max("phase".len());
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>8}  {:>12}  {:>12}",
            "phase", "count", "total ms", "self ms"
        );
        for (name, row) in &self.phases {
            let _ = writeln!(
                out,
                "{:<name_width$}  {:>8}  {:>12.3}  {:>12.3}",
                name,
                row.count,
                row.total_ns as f64 / 1e6,
                row.self_ns as f64 / 1e6,
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "(partial: {} event(s) overwritten after the trace buffer wrapped)",
                self.dropped
            );
        }
        if self.unmatched > 0 {
            let _ = writeln!(
                out,
                "(partial: {} span(s) had no matching enter/exit pair)",
                self.unmatched
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanEvent, SpanKind};

    fn ev(kind: SpanKind, name: u16, thread: u16, tick: u64, wall_ns: u64) -> SpanEvent {
        SpanEvent {
            kind,
            name,
            thread,
            depth: 0,
            sweep_seq: 0,
            index: 0,
            tick,
            wall_ns,
        }
    }

    fn nested_trace() -> Trace {
        // outer [0ns..100ns] wrapping inner [10ns..40ns] on thread 0,
        // plus a second inner [0ns..25ns] alone on thread 1.
        Trace {
            names: vec!["inner".into(), "outer".into()],
            events: vec![
                ev(SpanKind::Enter, 1, 0, 0, 0),
                ev(SpanKind::Enter, 0, 0, 1, 10),
                ev(SpanKind::Enter, 0, 1, 2, 0),
                ev(SpanKind::Exit, 0, 1, 3, 25),
                ev(SpanKind::Exit, 0, 0, 4, 40),
                ev(SpanKind::Exit, 1, 0, 5, 100),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let report = reduce(&nested_trace());
        assert_eq!(report.unmatched, 0);
        let outer = &report.phases["outer"];
        assert_eq!((outer.count, outer.total_ns, outer.self_ns), (1, 100, 70));
        let inner = &report.phases["inner"];
        assert_eq!((inner.count, inner.total_ns, inner.self_ns), (2, 55, 55));
    }

    #[test]
    fn folded_stacks_are_flamegraph_shaped() {
        assert_eq!(
            folded_stacks(&nested_trace()),
            "inner 25\nouter 70\nouter;inner 30\n"
        );
    }

    #[test]
    fn imperfect_traces_are_reported_not_corrupting() {
        // An exit with no enter, and an enter that never exits.
        let trace = Trace {
            names: vec!["ghost".into(), "open".into()],
            events: vec![
                ev(SpanKind::Exit, 0, 0, 0, 10),
                ev(SpanKind::Enter, 1, 0, 1, 20),
            ],
            dropped: 7,
        };
        let report = reduce(&trace);
        assert!(report.phases.is_empty());
        assert_eq!(report.unmatched, 2);
        assert_eq!(report.dropped, 7);
        let rendered = report.render();
        assert!(rendered.contains("overwritten"), "{rendered}");
        assert!(rendered.contains("no matching enter/exit"), "{rendered}");
    }

    #[test]
    fn table_renders_fixed_width_rows() {
        let rendered = reduce(&nested_trace()).render();
        let mut lines = rendered.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("phase"), "{header}");
        assert!(header.contains("count"));
        assert!(header.contains("total ms"));
        assert!(header.contains("self ms"));
        assert!(rendered.contains("inner"));
        assert!(rendered.contains("outer"));
    }
}
