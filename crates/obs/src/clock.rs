//! The observability clocks: a global monotonic tick and the crate's
//! single wall-clock channel.
//!
//! Every span event carries both timestamps. The **tick** is a global
//! atomic counter, so it totally orders events across threads and is
//! what the [`profile`](crate::profile) reducer sorts by — it is cheap,
//! monotonic, and has no wall-clock nondeterminism. The **wall-clock
//! nanoseconds** are real elapsed time since the first read in the
//! process; they are what makes a profile *mean* anything, and they are
//! confined to this module so the `ucore-lint` determinism rule has
//! exactly one reasoned suppression site to audit: wall time read here
//! flows only into span events and timing-suffixed metrics
//! ([`is_timing_metric`](crate::metrics::is_timing_metric)), never into
//! figure output bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static TICKS: AtomicU64 = AtomicU64::new(0);

/// Claims the next global monotonic tick. Ticks are unique and totally
/// ordered across threads; they carry no wall-clock information.
pub fn tick() -> u64 {
    TICKS.fetch_add(1, Ordering::Relaxed)
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds of wall time elapsed since the process's first call.
///
/// This is the crate's only wall-clock read. Values are observability
/// payload exclusively — span timestamps and `_ns`/`_us`/`_ms` metric
/// observations — and are filtered out of every golden comparison.
pub fn wall_ns() -> u64 {
    // ucore-lint: allow(determinism): this is the one sanctioned wall-clock channel; values feed span events and timing metrics only, never serialized figure output
    let epoch = *EPOCH.get_or_init(Instant::now);
    // ucore-lint: allow(determinism): same observability-only channel as the epoch read above
    let now = Instant::now();
    now.saturating_duration_since(epoch).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let a = tick();
        let b = tick();
        assert!(b > a);
    }

    #[test]
    fn wall_ns_is_monotone() {
        let a = wall_ns();
        let b = wall_ns();
        assert!(b >= a);
    }
}
