//! The metrics registry: typed counters, gauges, and fixed-bucket
//! histograms registered by name.
//!
//! Hot-path updates are single lock-free atomic operations on `Arc`'d
//! instruments that call sites clone out of the registry once; the
//! registry lock is touched only at registration and snapshot time.
//! A [`MetricsSnapshot`] is `BTreeMap`-ordered, so rendering it is
//! deterministic by construction (this file is in scope for the
//! `ucore-lint` determinism rule, which bans hash-ordered containers
//! here).
//!
//! # Determinism contract
//!
//! * **Counters** counting data-derived events (outcomes, cache
//!   activity, journal hits) are identical at any thread count.
//! * **Histograms** store *bucket counts and a total only* — no sum.
//!   A floating-point sum would be accumulated in scheduling order and
//!   float addition is not associative, so a sum could differ across
//!   thread counts; bucket *counts* are order-independent.
//! * **Timing metrics** (names ending in `_ns`/`_us`/`_ms`/`_seconds`)
//!   are wall-clock-derived and therefore nondeterministic; golden
//!   comparisons filter them via [`is_timing_metric`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

/// A monotonically increasing `u64` counter.
///
/// `inc`/`add` are single `fetch_add`s; reads are single loads. Per-
/// atomic coherence makes successive [`Counter::get`] reads monotone
/// even under concurrent increments.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A new counter at zero (detached from any registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A new gauge at `0.0` (detached from any registry).
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: `bounds.len() + 1` buckets, where bucket
/// `i` counts observations `v <= bounds[i]` (exclusive of lower
/// buckets) and the last bucket is the `+Inf` overflow. NaN counts as
/// overflow. There is deliberately no sum (see the module docs).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    total: AtomicU64,
}

impl Histogram {
    /// A new histogram with the given upper bounds (detached from any
    /// registry). Bounds are sorted, deduplicated, and stripped of
    /// NaNs; an empty bound list leaves just the `+Inf` bucket.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| !b.is_nan()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup_by(|a, b| a == b);
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, buckets, total: AtomicU64::new(0) }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// The upper bounds (the `+Inf` overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// A point-in-time copy of the bucket counts and total. Between
    /// in-flight `observe` calls a bucket increment and the total
    /// increment may be observed separately; quiesce writers before
    /// asserting the sum invariant.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            total: self.total.load(Ordering::Relaxed),
        }
    }
}

/// A frozen view of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, ascending; the final `+Inf` bucket is implicit.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations recorded.
    pub total: u64,
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A frozen metric value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram's buckets and total.
    Histogram(HistogramSnapshot),
}

/// The process-wide name → instrument table.
///
/// Names are dotted lowercase paths (`cache.hits`, `points.failed`,
/// `sweep.point_us`). Registration is get-or-create: asking for an
/// existing name returns the same instrument, so counters survive any
/// number of lookups. Asking for a name that is registered *as a
/// different type* returns a fresh detached instrument instead of
/// panicking — observability must never take the run down — and bumps
/// the `obs.type_conflicts` counter so the misuse is visible.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: RwLock<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// An empty registry (tests; production code uses [`registry`]).
    pub fn new() -> Self {
        Registry::default()
    }

    fn note_type_conflict(&self) {
        // Registering the sentinel itself cannot conflict (it is always
        // a counter), so this terminates.
        self.counter("obs.type_conflicts").inc();
    }

    /// The counter registered under `name`, created at zero on first
    /// use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut table = self.instruments.write().unwrap_or_else(PoisonError::into_inner);
        match table.get(name) {
            Some(Instrument::Counter(c)) => return Arc::clone(c),
            Some(_) => {
                drop(table);
                self.note_type_conflict();
                return Arc::new(Counter::new());
            }
            None => {}
        }
        let c = Arc::new(Counter::new());
        table.insert(name.to_string(), Instrument::Counter(Arc::clone(&c)));
        c
    }

    /// The gauge registered under `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut table = self.instruments.write().unwrap_or_else(PoisonError::into_inner);
        match table.get(name) {
            Some(Instrument::Gauge(g)) => return Arc::clone(g),
            Some(_) => {
                drop(table);
                self.note_type_conflict();
                return Arc::new(Gauge::new());
            }
            None => {}
        }
        let g = Arc::new(Gauge::new());
        table.insert(name.to_string(), Instrument::Gauge(Arc::clone(&g)));
        g
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use (later calls return the existing instrument and ignore
    /// `bounds`).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut table = self.instruments.write().unwrap_or_else(PoisonError::into_inner);
        match table.get(name) {
            Some(Instrument::Histogram(h)) => return Arc::clone(h),
            Some(_) => {
                drop(table);
                self.note_type_conflict();
                return Arc::new(Histogram::new(bounds));
            }
            None => {}
        }
        let h = Arc::new(Histogram::new(bounds));
        table.insert(name.to_string(), Instrument::Histogram(Arc::clone(&h)));
        h
    }

    /// A point-in-time, `BTreeMap`-ordered copy of every registered
    /// instrument's value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let table = self.instruments.read().unwrap_or_else(PoisonError::into_inner);
        let values = table
            .iter()
            .map(|(name, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

/// The process-wide registry every subsystem registers into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Whether a metric name carries wall-clock-derived (and therefore
/// nondeterministic) values, by naming convention: a final path segment
/// suffixed `_ns`, `_us`, `_ms`, or `_seconds`. Golden comparisons and
/// the differential suites filter these out.
pub fn is_timing_metric(name: &str) -> bool {
    ["_ns", "_us", "_ms", "_seconds"].iter().any(|suffix| name.ends_with(suffix))
}

/// A frozen, ordered view of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The counter's value, `0` when `name` is not a registered
    /// counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge's value, when `name` is a registered gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram's frozen buckets, when `name` is a registered
    /// histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A copy with every wall-clock-derived metric removed (see
    /// [`is_timing_metric`]) — the deterministic projection golden
    /// tests compare.
    pub fn without_timing(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            values: self
                .values
                .iter()
                .filter(|(name, _)| !is_timing_metric(name))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Human-readable one-line-per-metric rendering, in name order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "counter   {name} = {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge     {name} = {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, "histogram {name} total={}", h.total);
                    for (bound, count) in bucket_labels(h) {
                        let _ = write!(out, " le[{bound}]={count}");
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Prometheus-style exposition: `# TYPE` lines, `ucore_`-prefixed
    /// mangled names, cumulative `_bucket{le="..."}` series plus
    /// `_count` for histograms. `f64` values render via the shortest
    /// round-trip formatter, so the text is exact.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            let mangled = mangle(name);
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {mangled} counter");
                    let _ = writeln!(out, "{mangled} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {mangled} gauge");
                    let _ = writeln!(out, "{mangled} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {mangled} histogram");
                    let mut cumulative = 0u64;
                    for (bound, count) in bucket_labels(h) {
                        cumulative = cumulative.saturating_add(count);
                        let _ = writeln!(
                            out,
                            "{mangled}_bucket{{le=\"{bound}\"}} {cumulative}"
                        );
                    }
                    let _ = writeln!(out, "{mangled}_count {}", h.total);
                }
            }
        }
        out
    }
}

/// `(bound label, count)` pairs for every bucket including the
/// trailing `+Inf` overflow.
fn bucket_labels(h: &HistogramSnapshot) -> impl Iterator<Item = (String, u64)> + '_ {
    h.counts.iter().enumerate().map(|(i, &count)| {
        let label = match h.bounds.get(i) {
            Some(b) => format!("{b}"),
            None => String::from("+Inf"),
        };
        (label, count)
    })
}

/// `cache.hits` → `ucore_cache_hits`: dots and dashes become
/// underscores under the workspace namespace prefix.
fn mangle(name: &str) -> String {
    let body: String = name
        .chars()
        .map(|c| if c == '.' || c == '-' { '_' } else { c })
        .collect();
    format!("ucore_{body}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = Registry::new();
        let c = r.counter("t.count");
        c.inc();
        c.add(4);
        r.gauge("t.gauge").set(2.5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("t.count"), 5);
        assert_eq!(snap.gauge("t.gauge"), Some(2.5));
        assert_eq!(snap.gauge("t.count"), None, "type-checked accessor");
    }

    #[test]
    fn reregistration_returns_the_same_instrument() {
        let r = Registry::new();
        r.counter("same").inc();
        r.counter("same").inc();
        assert_eq!(r.snapshot().counter("same"), 2);
    }

    #[test]
    fn type_conflicts_degrade_to_detached_instruments() {
        let r = Registry::new();
        r.counter("clash").inc();
        let g = r.gauge("clash");
        g.set(9.0); // lands on a detached gauge, not the counter
        let snap = r.snapshot();
        assert_eq!(snap.counter("clash"), 1);
        assert_eq!(snap.counter("obs.type_conflicts"), 1);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 100.0, f64::NAN] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![2, 1, 2], "le 1, le 10, +Inf");
        assert_eq!(snap.total, 5);
        assert_eq!(snap.counts.iter().sum::<u64>(), snap.total);
    }

    #[test]
    fn histogram_bounds_are_sanitized() {
        let h = Histogram::new(&[10.0, 1.0, 1.0, f64::NAN]);
        assert_eq!(h.bounds(), &[1.0, 10.0]);
    }

    #[test]
    fn snapshot_order_and_renderings_are_deterministic() {
        let r = Registry::new();
        r.counter("z.last").inc();
        r.gauge("a.first").set(1.5);
        r.histogram("m.middle", &[2.0]).observe(1.0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
        let text = r.snapshot().render_text();
        assert_eq!(
            text,
            "gauge     a.first = 1.5\n\
             histogram m.middle total=1 le[2]=1 le[+Inf]=0\n\
             counter   z.last = 1\n"
        );
        let prom = r.snapshot().render_prometheus();
        assert_eq!(
            prom,
            "# TYPE ucore_a_first gauge\n\
             ucore_a_first 1.5\n\
             # TYPE ucore_m_middle histogram\n\
             ucore_m_middle_bucket{le=\"2\"} 1\n\
             ucore_m_middle_bucket{le=\"+Inf\"} 1\n\
             ucore_m_middle_count 1\n\
             # TYPE ucore_z_last counter\n\
             ucore_z_last 1\n"
        );
    }

    #[test]
    fn timing_metrics_are_recognized_and_filterable() {
        assert!(is_timing_metric("sweep.point_us"));
        assert!(is_timing_metric("engine.wall_ns"));
        assert!(is_timing_metric("render.wall_ms"));
        assert!(is_timing_metric("run.duration_seconds"));
        assert!(!is_timing_metric("points.ok"));
        let r = Registry::new();
        r.counter("points.ok").inc();
        r.histogram("sweep.point_us", &[1.0]).observe(0.5);
        let filtered = r.snapshot().without_timing();
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.counter("points.ok"), 1);
    }
}
