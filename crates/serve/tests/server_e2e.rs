//! End-to-end tests of the serving robustness envelope: differential
//! byte-identity with the `repro` render path, deterministic overload
//! shedding, graceful drain, per-request deadlines, fault surfacing,
//! degraded journaling, and kill-9 crash recovery via `--resume`.
//!
//! Everything here shares process-global state (the metrics registry,
//! the durability slot, the fault-injection slot), so every test runs
//! under one mutex.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};
use ucore_bench::Target;
use ucore_project::durability::{self, DurabilityConfig};
use ucore_project::faultinject::{Fault, FaultPlan};
use ucore_serve::{Server, ServerConfig};

/// Serializes tests around the process-global durability, fault, and
/// metrics state.
fn serialized() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// A stopped server's pieces: address plus a closure that drains it.
struct Running {
    addr: std::net::SocketAddr,
    shutdown: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<ucore_serve::DrainReport>>,
}

impl Running {
    fn stop(self) -> ucore_serve::DrainReport {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("server thread")
            .expect("server run")
    }
}

fn boot(configure: impl FnOnce(&mut ServerConfig)) -> Running {
    let mut config = ServerConfig::new("127.0.0.1:0");
    config.workers = 2;
    config.queue_depth = 4;
    config.io_timeout = Duration::from_millis(800);
    config.drain = Duration::from_secs(10);
    configure(&mut config);
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run());
    Running { addr, shutdown, handle }
}

/// One full request/response exchange; returns (status, body).
fn get(addr: std::net::SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    split_response(&raw)
}

fn split_response(raw: &[u8]) -> (u16, Vec<u8>) {
    let sep = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header separator in {:?}", String::from_utf8_lossy(raw)));
    let head = std::str::from_utf8(&raw[..sep]).expect("head is UTF-8");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, raw[sep + 4..].to_vec())
}

fn error_code(body: &[u8]) -> String {
    let value: serde_json::Value = serde_json::from_slice(body)
        .unwrap_or_else(|e| panic!("body not JSON ({e}): {:?}", String::from_utf8_lossy(body)));
    value
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(serde_json::Value::as_str)
        .expect("error.code")
        .to_string()
}

fn counter(name: &str) -> u64 {
    ucore_obs::registry().snapshot().counter(name)
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir();
    dir.join(format!("ucore-serve-e2e-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn served_bodies_are_byte_identical_to_the_render_path() {
    let _gate = serialized();
    let server = boot(|_| {});

    for (path, target) in [
        ("/json/figure-6", Target::Json("figure-6".into())),
        ("/csv/figure-6", Target::Csv("figure-6".into())),
        // The portfolio figure routes through a different evaluator
        // (the Multi-Amdahl allocator, not the cached optimizer), so it
        // gets its own byte-identity case.
        ("/json/figure-11", Target::Json("figure-11".into())),
        ("/figure/11", Target::Figure("11".into())),
        ("/table/5", Target::Table("5".into())),
        ("/scenario/1", Target::Scenario("1".into())),
    ] {
        let (status, body) = get(server.addr, path);
        assert_eq!(status, 200, "{path}");
        let direct = ucore_bench::render::render(&target).expect("direct render");
        assert_eq!(
            body,
            direct.body.into_bytes(),
            "served {path} diverged from the render path"
        );
    }

    let report = server.stop();
    assert!(report.drained);
}

#[test]
fn overload_sheds_immediately_with_structured_503() {
    let _gate = serialized();
    let server = boot(|c| {
        c.workers = 2;
        c.queue_depth = 2;
        c.io_timeout = Duration::from_millis(1200);
    });
    let shed_before = counter("serve.shed");

    // Saturate: 2 slow-loris connections occupy both workers, 2 more
    // fill the queue. Gaps let the workers dequeue deterministically.
    let mut loris = Vec::new();
    for _ in 0..4 {
        let mut stream = TcpStream::connect(server.addr).expect("loris connect");
        stream.write_all(b"GET /healthz HT").expect("loris partial");
        loris.push(stream);
        std::thread::sleep(Duration::from_millis(40));
    }
    std::thread::sleep(Duration::from_millis(150));

    // Hammer past the admission limit: 8 probes (4x the concurrency
    // limit) must every one get an immediate structured shed.
    for i in 0..8 {
        let (status, body) = get(server.addr, "/healthz");
        assert_eq!(status, 503, "probe {i}");
        assert_eq!(error_code(&body), "server.overloaded", "probe {i}");
    }
    let shed_after = counter("serve.shed");
    assert!(
        shed_after - shed_before >= 8,
        "expected >= 8 shed connections, got {}",
        shed_after - shed_before
    );

    // Availability recovers once the loris connections time out.
    drop(loris);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _) = get(server.addr, "/healthz");
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "service never recovered from overload");
        std::thread::sleep(Duration::from_millis(100));
    }
    let report = server.stop();
    assert!(report.drained);
}

#[test]
fn graceful_drain_finishes_inflight_and_refuses_late_arrivals() {
    let _gate = serialized();
    let server = boot(|c| {
        c.io_timeout = Duration::from_millis(700);
        c.drain = Duration::from_secs(10);
    });

    // Occupy a worker with an in-flight (slow) request.
    let mut inflight = TcpStream::connect(server.addr).expect("connect inflight");
    inflight
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    inflight.write_all(b"GET /healthz HT").expect("partial write");
    std::thread::sleep(Duration::from_millis(100));

    // Begin the drain.
    server.shutdown.store(true, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(50));

    // A late arrival gets an explicit draining refusal, not a reset.
    let (status, body) = get(server.addr, "/healthz");
    assert_eq!(status, 503);
    assert_eq!(error_code(&body), "server.draining");

    // The in-flight request still completes (here: its io timeout
    // answers 408) — drain waits for it instead of dropping it.
    let mut resp = String::new();
    let _ = inflight.read_to_string(&mut resp);
    assert!(resp.contains("408"), "in-flight request was dropped: {resp:?}");

    let report = server.handle.join().expect("thread").expect("run");
    assert!(report.drained, "drain deadline expired");
}

#[test]
fn request_deadline_returns_504_with_the_taxonomy_code() {
    let _gate = serialized();
    // Sequential sweeps keep the cooperative deadline on the worker
    // thread that armed it (the served binary does the same).
    std::env::set_var("UCORE_SWEEP_THREADS", "1");
    let server = boot(|c| {
        c.request_timeout = Some(Duration::from_millis(1));
    });
    // figure-10 is evaluated fresh here (no other test touches it), so
    // the render must run real sweep points and trip the checkpoint.
    let (status, body) = get(server.addr, "/json/figure-10");
    assert_eq!(status, 504, "{:?}", String::from_utf8_lossy(&body));
    assert_eq!(error_code(&body), "request.deadline");

    // The worker survives the timed-out request.
    let (status, _) = get(server.addr, "/healthz");
    assert_eq!(status, 200);
    let report = server.stop();
    assert!(report.drained);
    std::env::remove_var("UCORE_SWEEP_THREADS");
}

#[test]
fn injected_fault_degrades_one_response_and_recovery_is_byte_identical() {
    let _gate = serialized();
    let server = boot(|_| {});

    let guard = ucore_project::faultinject::activate(
        FaultPlan::new().with(3, Fault::Panic),
    );
    let (status, body) = get(server.addr, "/json/figure-7");
    assert_eq!(status, 500, "{:?}", String::from_utf8_lossy(&body));
    assert_eq!(error_code(&body), "request.failed");
    drop(guard);

    // With the fault cleared the same process serves the full artifact,
    // byte-identical to a clean render.
    let (status, body) = get(server.addr, "/json/figure-7");
    assert_eq!(status, 200);
    let direct = ucore_bench::render::render(&Target::Json("figure-7".into()))
        .expect("clean render");
    assert_eq!(body, direct.body.into_bytes());
    let report = server.stop();
    assert!(report.drained);
}

#[test]
fn disk_fault_degrades_journaling_but_serving_continues() {
    let _gate = serialized();
    let journal = temp_path("enospc");
    let _ = std::fs::remove_file(&journal);
    let (dur_guard, _) = durability::activate(DurabilityConfig {
        journal: Some(journal.clone()),
        ..DurabilityConfig::default()
    })
    .expect("activate journaled durability");
    let fault_guard = ucore_project::faultinject::activate(
        FaultPlan::new().with(2, Fault::DiskEnospc),
    );
    let errors_before = counter("journal.write_errors");

    let server = boot(|_| {});
    let (status, body) = get(server.addr, "/json/figure-6");
    assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&body));
    let direct = ucore_bench::render::render(&Target::Json("figure-6".into()))
        .expect("direct render");
    assert_eq!(body, direct.body.into_bytes(), "degraded journaling changed the data");
    assert!(
        counter("journal.write_errors") > errors_before,
        "disk fault did not surface in journal.write_errors"
    );

    // The process keeps serving after the degradation.
    let (status, _) = get(server.addr, "/table/2");
    assert_eq!(status, 200);

    let report = server.stop();
    assert!(report.drained);
    drop(fault_guard);
    drop(dur_guard);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn metrics_endpoint_exposes_the_serve_contract() {
    let _gate = serialized();
    let server = boot(|_| {});
    let (status, _) = get(server.addr, "/healthz");
    assert_eq!(status, 200);
    let (status, body) = get(server.addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("exposition is UTF-8");
    for name in [
        "ucore_serve_accepted",
        "ucore_serve_requests",
        "ucore_serve_responses_ok",
        "ucore_serve_responses_error",
        "ucore_serve_shed",
        "ucore_serve_timeouts",
        "ucore_serve_panics",
        "ucore_serve_ingress_rejected",
        "ucore_serve_bytes_out",
        "ucore_serve_queue_depth",
        "ucore_serve_inflight",
        "ucore_serve_request_us",
    ] {
        assert!(text.contains(name), "missing {name} in exposition:\n{text}");
    }
    let report = server.stop();
    assert!(report.drained);
}

#[test]
fn kill_nine_mid_request_leaves_a_resumable_journal() {
    let _gate = serialized();
    let journal = temp_path("kill9");
    let _ = std::fs::remove_file(&journal);

    // Boot the real daemon with a stall fault late in the figure-6
    // sweep, so the journal fills with completed points and then the
    // request hangs mid-flight.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_served"))
        .args([
            "--serve",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--request-timeout-ms",
            "0",
            "--journal",
        ])
        .arg(&journal)
        .env("UCORE_FAULT_INJECT", "stall@100")
        .stderr(std::process::Stdio::piped())
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn served");
    let stderr = child.stderr.take().expect("child stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr: std::net::SocketAddr = loop {
        let line = lines
            .next()
            .expect("served exited before announcing its address")
            .expect("read served stderr");
        if let Some(rest) = line.strip_prefix("served: listening on ") {
            break rest.parse().expect("parse announced address");
        }
    };

    // Fire the request that will stall at point 100; don't wait for a
    // response.
    let mut stream = TcpStream::connect(addr).expect("connect to served");
    stream
        .write_all(b"GET /json/figure-6 HTTP/1.1\r\n\r\n")
        .expect("send request");

    // Wait for the journal to fill with the pre-stall points, then
    // stabilize (the stall blocks further appends).
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last_len = 0u64;
    let mut stable_since = Instant::now();
    loop {
        let len = std::fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
        if len != last_len {
            last_len = len;
            stable_since = Instant::now();
        }
        if last_len > 0 && stable_since.elapsed() > Duration::from_millis(500) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "journal never grew; served is not appending"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The crash: SIGKILL, no drain, no final fsync from our side.
    child.kill().expect("kill -9 served");
    let _ = child.wait();
    drop(stream);

    // Resume from the orphaned journal in-process and render the same
    // target: byte-identical to a clean run, with journal hits proving
    // the replay actually supplied points.
    let baseline = ucore_bench::render::render(&Target::Json("figure-6".into()))
        .expect("baseline render")
        .body;
    let hits_before = counter("journal.hits");
    let (dur_guard, replay) = durability::activate(DurabilityConfig {
        journal: Some(journal.clone()),
        resume: true,
        ..DurabilityConfig::default()
    })
    .expect("resume from the killed daemon's journal");
    assert!(
        replay.records > 0,
        "the killed daemon left no replayable records"
    );
    let resumed = ucore_bench::render::render(&Target::Json("figure-6".into()))
        .expect("resumed render")
        .body;
    drop(dur_guard);
    assert_eq!(resumed, baseline, "resumed render diverged from the clean run");
    assert!(
        counter("journal.hits") > hits_before,
        "resume did not answer any points from the journal"
    );
    let _ = std::fs::remove_file(&journal);
}
