//! Hostile-ingress suite: the HTTP layer must never panic and must
//! answer every malformed, oversized, slow, or binary-garbage request
//! with a taxonomy-coded error — and the server must stay available
//! afterwards.
//!
//! The pure parser is fuzzed with proptest; the socket-level behaviors
//! (truncation, slow-loris, availability) run against a real in-process
//! [`Server`] on a loopback port.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;
use ucore_serve::{Limits, ParseError, Server, ServerConfig};

// ---------------------------------------------------------------------
// Pure-parser properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the head parser: every input maps to
    /// a parsed request or a typed error.
    #[test]
    fn parse_head_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 64)) {
        let limits = Limits::default();
        match ucore_serve::http::parse_head(&bytes, &limits) {
            Ok((req, _)) => prop_assert!(!req.method.is_empty()),
            Err(ParseError::Malformed(msg) | ParseError::TooLarge(msg)) => {
                prop_assert!(!msg.is_empty());
            }
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "pure parse produced a socket-only error: {e:?}"
                )));
            }
        }
    }

    /// Mutating one byte of a valid request head never panics and never
    /// fabricates a socket-layer error.
    #[test]
    fn parse_head_survives_single_byte_corruption(
        pos in 0usize..33,
        byte in 0u8..=255,
    ) {
        let mut head = b"GET /table/5 HTTP/1.1\r\nHost: ucore\r\n".to_vec();
        let idx = pos % head.len();
        head[idx] = byte;
        let limits = Limits::default();
        if let Err(e) = ucore_serve::http::parse_head(&head, &limits) {
            prop_assert!(
                matches!(e, ParseError::Malformed(_) | ParseError::TooLarge(_)),
                "unexpected error class: {e:?}"
            );
        }
    }

    /// Declared content lengths beyond the body limit are always
    /// rejected as too large, never allocated.
    #[test]
    fn oversized_content_length_is_shed_not_allocated(extra in 1u64..1_000_000) {
        let limits = Limits::default();
        let declared = limits.max_body_bytes as u64 + extra;
        let head = format!("POST /query HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let mut cursor = std::io::Cursor::new(head.into_bytes());
        match ucore_serve::http::read_request(&mut cursor, &limits) {
            Err(ParseError::TooLarge(_)) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "content-length {declared} produced {other:?}"
                )));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Socket-level hostility against a live server.
// ---------------------------------------------------------------------

/// Boots a server on a loopback port with a short io timeout; returns
/// its address, shutdown flag, and join handle.
fn boot(io_timeout: Duration) -> (std::net::SocketAddr, impl FnOnce()) {
    let mut config = ServerConfig::new("127.0.0.1:0");
    config.workers = 2;
    config.queue_depth = 8;
    config.io_timeout = io_timeout;
    config.request_timeout = Some(Duration::from_secs(30));
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run());
    let stop = move || {
        shutdown.store(true, Ordering::SeqCst);
        let report = handle
            .join()
            .expect("server thread")
            .expect("server run");
        assert!(report.drained, "ingress server failed to drain");
    };
    (addr, stop)
}

/// Sends raw bytes, half-closes the write side, and reads the full
/// response (empty when the server just dropped the connection).
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream.write_all(bytes).expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

/// The `error.code` inside a response's JSON body.
fn error_code(response: &str) -> String {
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_else(|| panic!("no body in response: {response:?}"));
    let value: serde_json::Value = serde_json::from_str(body)
        .unwrap_or_else(|e| panic!("body is not JSON ({e}): {body:?}"));
    value
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(serde_json::Value::as_str)
        .unwrap_or_else(|| panic!("no error.code in {body:?}"))
        .to_string()
}

fn status_line(response: &str) -> &str {
    response.lines().next().unwrap_or("")
}

#[test]
fn socket_hostility_gets_typed_errors_and_service_survives() {
    let (addr, stop) = boot(Duration::from_millis(400));

    // Truncated head: bytes stop mid-request-line, then EOF.
    let resp = raw_exchange(addr, b"GET /ta");
    assert!(status_line(&resp).contains("400"), "{resp:?}");
    assert_eq!(error_code(&resp), "http.malformed");

    // Oversized request line.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(20_000));
    let resp = raw_exchange(addr, long.as_bytes());
    assert!(status_line(&resp).contains("413"), "{resp:?}");
    assert_eq!(error_code(&resp), "http.too_large");

    // Binary garbage.
    let resp = raw_exchange(addr, &[0xff, 0xfe, 0x00, 0x80, 0x0a, 0x0a]);
    assert!(status_line(&resp).contains("400"), "{resp:?}");
    assert_eq!(error_code(&resp), "http.malformed");

    // Slow-loris: a partial head, then silence. The io timeout converts
    // the stall into a 408 instead of wedging the worker forever.
    let mut loris = TcpStream::connect(addr).expect("connect loris");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    loris.write_all(b"GET /healthz HT").expect("partial write");
    let mut resp = String::new();
    let _ = loris.read_to_string(&mut resp);
    assert!(status_line(&resp).contains("408"), "{resp:?}");
    assert_eq!(error_code(&resp), "http.timeout");
    drop(loris);

    // Non-UTF-8 query body: valid HTTP, garbage JSON bytes.
    let body = [0xc3u8, 0x28, 0xa0, 0xa1];
    let mut req = format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len())
        .into_bytes();
    req.extend_from_slice(&body);
    let resp = raw_exchange(addr, &req);
    assert!(status_line(&resp).contains("400"), "{resp:?}");
    assert_eq!(error_code(&resp), "request.invalid_json");

    // Schema-invalid JSON: parses, wrong shape.
    let body = b"{\"tarlet\":\"figure-6\"}";
    let mut req = format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n", body.len())
        .into_bytes();
    req.extend_from_slice(body);
    let resp = raw_exchange(addr, &req);
    assert!(status_line(&resp).contains("400"), "{resp:?}");
    assert_eq!(error_code(&resp), "request.schema");

    // After all of that, the server still answers a well-formed probe.
    let resp = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(status_line(&resp).contains("200"), "{resp:?}");
    assert!(resp.ends_with("ok\n"), "{resp:?}");

    stop();
}

#[test]
fn fuzzed_socket_garbage_never_kills_the_server() {
    let (addr, stop) = boot(Duration::from_millis(300));
    let mut rng = TestRng::deterministic("ingress::fuzzed_socket_garbage");
    for _ in 0..32 {
        let len = rng.gen_range(1usize..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        // The exchange may yield an error response or nothing (the
        // server may classify pure garbage + EOF as a vanished peer);
        // the invariant is that the process neither panics nor stops
        // answering.
        let _ = raw_exchange(addr, &bytes);
    }
    let resp = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert!(status_line(&resp).contains("200"), "{resp:?}");
    stop();
}
