//! Request routing and the contained request handler.
//!
//! [`handle`] maps one parsed [`Request`] to one [`Response`], and is
//! the robustness envelope around the model: the render runs under a
//! per-request cooperative deadline
//! ([`ucore_project::arm_request_deadline`]) and inside
//! [`std::panic::catch_unwind`], so a pathological query comes back as
//! a `request.deadline` 504, a contained model failure as a
//! `request.failed` 500, and *nothing* a request does can take the
//! process down. Successful bodies are byte-identical to `repro`
//! stdout for the same target — both front ends render through
//! [`ucore_bench::render`].

use crate::error::ServeError;
use crate::http::Request;
use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::Once;
use std::time::Duration;
use ucore_bench::Target;

/// One complete response, ready for [`crate::http::write_response`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response { status: 200, content_type, body: body.into() }
    }

    /// The response for a taxonomy-coded error: its status with the
    /// structured JSON body.
    pub fn from_error(e: &ServeError) -> Self {
        Response {
            status: e.status,
            content_type: "application/json",
            body: e.body().into_bytes(),
        }
    }
}

/// Where a request routes.
enum Route {
    /// Liveness probe.
    Healthz,
    /// Prometheus exposition of the process registry.
    Metrics,
    /// A model artifact rendered through [`ucore_bench::render`].
    Render(Target),
}

/// Handles one parsed request end to end. Infallible by construction:
/// every failure mode is a taxonomy-coded error response.
pub fn handle(request: &Request, request_timeout: Option<Duration>) -> Response {
    match route(request) {
        Ok(Route::Healthz) => Response::ok("text/plain; charset=utf-8", "ok\n"),
        Ok(Route::Metrics) => Response::ok(
            "text/plain; charset=utf-8",
            ucore_obs::registry().snapshot().render_prometheus(),
        ),
        Ok(Route::Render(target)) => render_contained(&target, request_timeout),
        Err(e) => Response::from_error(&e),
    }
}

/// Resolves a request to a route, or to the error describing why it
/// has none.
fn route(request: &Request) -> Result<Route, ServeError> {
    let target = request.target.as_str();
    match request.method.as_str() {
        "GET" => match target {
            "/healthz" => Ok(Route::Healthz),
            "/metrics" => Ok(Route::Metrics),
            "/query" => Err(ServeError::method_not_allowed("GET", target)),
            _ => artifact_route(target),
        },
        "POST" => match target {
            "/query" => query_route(&request.body),
            _ => Err(ServeError::method_not_allowed("POST", target)),
        },
        other => Err(ServeError::method_not_allowed(other, target)),
    }
}

/// Maps a GET path to its render target. Validation of the *value*
/// (`figure 12 is not one of 2-11`) belongs to the render layer; only
/// the path shape is decided here.
fn artifact_route(path: &str) -> Result<Route, ServeError> {
    let target = if let Some(n) = path.strip_prefix("/table/") {
        Target::Table(n.to_string())
    } else if let Some(n) = path.strip_prefix("/figure/") {
        Target::Figure(n.to_string())
    } else if let Some(n) = path.strip_prefix("/scenario/") {
        Target::Scenario(n.to_string())
    } else if let Some(which) = path.strip_prefix("/json/") {
        Target::Json(which.to_string())
    } else if let Some(which) = path.strip_prefix("/csv/") {
        Target::Csv(which.to_string())
    } else {
        return Err(ServeError::unknown_target(format!(
            "no artifact at {path}"
        )));
    };
    Ok(Route::Render(target))
}

/// Parses a `POST /query` body: `{"target":"figure-6","format":"json"}`
/// with `format` one of `text` (default), `json`, `csv`.
fn query_route(body: &[u8]) -> Result<Route, ServeError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| ServeError::invalid_json(format!("body is not UTF-8: {e}")))?;
    let value: serde_json::Value = serde_json::from_str(text)
        .map_err(|e| ServeError::invalid_json(format!("body is not JSON: {e}")))?;
    let target = value
        .get("target")
        .and_then(serde_json::Value::as_str)
        .ok_or_else(|| {
            ServeError::schema("query body needs a string \"target\" field")
        })?;
    let format = match value.get("format") {
        None => "text",
        Some(v) => v.as_str().ok_or_else(|| {
            ServeError::schema("query \"format\" must be a string")
        })?,
    };
    let route = match format {
        "json" => Route::Render(Target::Json(target.to_string())),
        "csv" => Route::Render(Target::Csv(target.to_string())),
        "text" => {
            let Some((kind, n)) = target.split_once('-') else {
                return Err(ServeError::unknown_target(format!(
                    "unknown query target {target:?} (expected e.g. \"figure-6\", \"table-5\", \"scenario-1\")"
                )));
            };
            let target = match kind {
                "table" => Target::Table(n.to_string()),
                "figure" => Target::Figure(n.to_string()),
                "scenario" => Target::Scenario(n.to_string()),
                _ => {
                    return Err(ServeError::unknown_target(format!(
                        "unknown query target kind {kind:?}"
                    )))
                }
            };
            Route::Render(target)
        }
        other => {
            return Err(ServeError::schema(format!(
                "query format {other:?} is not one of text, json, csv"
            )))
        }
    };
    Ok(route)
}

/// The `Content-Type` each target family serves.
fn content_type(target: &Target) -> &'static str {
    match target {
        Target::Table(_) | Target::Figure(_) | Target::Scenario(_) => {
            "text/plain; charset=utf-8"
        }
        Target::Json(_) => "application/json",
        Target::Csv(_) => "text/csv",
    }
}

/// Renders a target inside the full containment envelope: per-request
/// deadline armed, panics caught, partial data suppressed.
fn render_contained(target: &Target, request_timeout: Option<Duration>) -> Response {
    let _guard = request_timeout.map(ucore_project::arm_request_deadline);
    install_quiet_panic_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let caught =
        std::panic::catch_unwind(AssertUnwindSafe(|| ucore_bench::render::render(target)));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    // Deadline first: an expired budget explains both a deadline panic
    // that escaped and a sweep whose tail points all failed at their
    // first cooperative checkpoint.
    if ucore_project::request_deadline_expired() {
        crate::obs::metrics().timeouts.inc();
        let budget_ms = request_timeout.map_or(0, |d| d.as_millis());
        return Response::from_error(&ServeError::deadline(budget_ms));
    }
    match caught {
        Err(payload) => {
            crate::obs::metrics().panics.inc();
            Response::from_error(&ServeError::failed(format!(
                "handler panic (contained): {}",
                panic_message(payload.as_ref())
            )))
        }
        Ok(Err(e)) if e.is_bad_target() => {
            Response::from_error(&ServeError::unknown_target(e.to_string()))
        }
        Ok(Err(e)) => Response::from_error(&ServeError::failed(e.to_string())),
        Ok(Ok(rendered)) => match rendered.points_failed {
            Some(failed) if failed > 0 => {
                Response::from_error(&ServeError::failed(format!(
                    "{failed} design point(s) failed during the sweep; \
                     partial projection data withheld"
                )))
            }
            _ => Response::ok(content_type(target), rendered.body.into_bytes()),
        },
    }
}

thread_local! {
    /// Set while a contained render runs on this thread, so the process
    /// panic hook stays silent for panics the envelope is about to
    /// catch.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once) a panic hook that swallows output for panics raised
/// inside the containment envelope and delegates everything else to the
/// previous hook — contained faults are reported through the error
/// taxonomy, not stderr noise.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(target: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: target.to_string(),
            body: Vec::new(),
        }
    }

    fn post_query(body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            target: "/query".to_string(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn error_code(resp: &Response) -> String {
        let value: serde_json::Value =
            serde_json::from_slice(&resp.body).expect("error body is JSON");
        value
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(serde_json::Value::as_str)
            .expect("error.code present")
            .to_string()
    }

    #[test]
    fn healthz_is_ok() {
        let resp = handle(&get("/healthz"), None);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
    }

    #[test]
    fn table_body_matches_the_shared_render_path() {
        let resp = handle(&get("/table/5"), None);
        assert_eq!(resp.status, 200);
        let direct = ucore_bench::render::render(&Target::Table("5".into()))
            .expect("table 5 renders");
        assert_eq!(resp.body, direct.body.into_bytes());
    }

    #[test]
    fn unknown_paths_and_values_are_404_with_the_code() {
        let resp = handle(&get("/nope"), None);
        assert_eq!(resp.status, 404);
        assert_eq!(error_code(&resp), "request.unknown_target");
        let resp = handle(&get("/table/7"), None);
        assert_eq!(resp.status, 404);
        assert_eq!(error_code(&resp), "request.unknown_target");
    }

    #[test]
    fn wrong_method_is_405() {
        let mut req = get("/table/5");
        req.method = "PUT".to_string();
        let resp = handle(&req, None);
        assert_eq!(resp.status, 405);
        assert_eq!(error_code(&resp), "http.method");
    }

    #[test]
    fn query_schema_violations_are_typed() {
        let resp = handle(&post_query("not json"), None);
        assert_eq!(error_code(&resp), "request.invalid_json");
        let resp = handle(&post_query("{\"format\":\"json\"}"), None);
        assert_eq!(error_code(&resp), "request.schema");
        let resp = handle(
            &post_query("{\"target\":\"figure-6\",\"format\":\"pdf\"}"),
            None,
        );
        assert_eq!(error_code(&resp), "request.schema");
    }

    #[test]
    fn query_text_table_matches_get_route() {
        let via_query = handle(&post_query("{\"target\":\"table-2\"}"), None);
        let via_get = handle(&get("/table/2"), None);
        assert_eq!(via_query.status, 200);
        assert_eq!(via_query.body, via_get.body);
    }

    #[test]
    fn metrics_exposition_contains_serve_names() {
        // Touch the serve instruments so they exist in the registry.
        let _ = crate::obs::metrics();
        let resp = handle(&get("/metrics"), None);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).expect("exposition is UTF-8");
        assert!(text.contains("ucore_serve_shed"), "{text}");
    }
}
