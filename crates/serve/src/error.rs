//! The serving error taxonomy: every way a request can fail, each with
//! a stable machine-readable code, an HTTP status, and a structured
//! JSON body.
//!
//! The taxonomy extends the workspace convention (DESIGN.md §11) to the
//! wire: ingress failures (`http.*`), request-content failures
//! (`request.*`), and service-state failures (`server.*`). A client can
//! branch on `error.code` without parsing prose, and every response —
//! including a shed or a contained panic — is well-formed JSON, never a
//! dropped connection or an empty reply.

use std::fmt;

/// A taxonomy-coded serving failure, rendered as an HTTP error
/// response with a structured JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Stable machine-readable code (`server.overloaded`, …).
    pub code: &'static str,
    /// The HTTP status the response carries.
    pub status: u16,
    /// Human-readable diagnostic.
    pub message: String,
}

impl ServeError {
    fn new(code: &'static str, status: u16, message: impl Into<String>) -> Self {
        ServeError { code, status, message: message.into() }
    }

    /// `http.malformed` (400): the request could not be parsed.
    pub fn malformed(message: impl Into<String>) -> Self {
        Self::new("http.malformed", 400, message)
    }

    /// `http.too_large` (413): a request line, header block, or body
    /// exceeded its configured limit.
    pub fn too_large(message: impl Into<String>) -> Self {
        Self::new("http.too_large", 413, message)
    }

    /// `http.timeout` (408): the peer stopped sending mid-request
    /// (slow-loris) and the socket read timed out.
    pub fn ingress_timeout(message: impl Into<String>) -> Self {
        Self::new("http.timeout", 408, message)
    }

    /// `http.method` (405): the target exists but not for this method.
    pub fn method_not_allowed(method: &str, target: &str) -> Self {
        Self::new(
            "http.method",
            405,
            format!("method {method} is not supported for {target}"),
        )
    }

    /// `request.unknown_target` (404): no artifact at this path.
    pub fn unknown_target(message: impl Into<String>) -> Self {
        Self::new("request.unknown_target", 404, message)
    }

    /// `request.invalid_json` (400): a `POST /query` body that is not
    /// valid JSON (or not valid UTF-8).
    pub fn invalid_json(message: impl Into<String>) -> Self {
        Self::new("request.invalid_json", 400, message)
    }

    /// `request.schema` (400): valid JSON with the wrong shape.
    pub fn schema(message: impl Into<String>) -> Self {
        Self::new("request.schema", 400, message)
    }

    /// `request.deadline` (504): the per-request budget expired before
    /// the render completed.
    pub fn deadline(budget_ms: u128) -> Self {
        Self::new(
            "request.deadline",
            504,
            format!("request exceeded its {budget_ms} ms deadline"),
        )
    }

    /// `request.failed` (500): the model failed (contained panic,
    /// injected fault, or projection error) — the failure is contained
    /// to this response; the process keeps serving.
    pub fn failed(message: impl Into<String>) -> Self {
        Self::new("request.failed", 500, message)
    }

    /// `server.overloaded` (503): admission control shed the request —
    /// every worker is busy and the accept queue is full.
    pub fn overloaded() -> Self {
        Self::new(
            "server.overloaded",
            503,
            "server at concurrency limit and queue full; retry later",
        )
    }

    /// `server.draining` (503): the server is shutting down and no
    /// longer admits new requests.
    pub fn draining() -> Self {
        Self::new("server.draining", 503, "server is draining for shutdown")
    }

    /// The standard reason phrase for this error's status.
    pub fn reason(&self) -> &'static str {
        reason_phrase(self.status)
    }

    /// The structured JSON response body (newline-terminated).
    pub fn body(&self) -> String {
        format!(
            "{{\"error\":{{\"code\":\"{}\",\"status\":{},\"message\":\"{}\"}}}}\n",
            self.code,
            self.status,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.code, self.status, self.message)
    }
}

impl std::error::Error for ServeError {}

/// The reason phrase for the statuses the taxonomy uses.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_parseable_json_with_the_code() {
        for err in [
            ServeError::malformed("bad \"quoted\" line"),
            ServeError::too_large("8193 > 8192"),
            ServeError::ingress_timeout("read timed out"),
            ServeError::method_not_allowed("PUT", "/table/5"),
            ServeError::unknown_target("no such figure"),
            ServeError::invalid_json("trailing garbage"),
            ServeError::schema("missing \"target\""),
            ServeError::deadline(250),
            ServeError::failed("injected panic at point 3"),
            ServeError::overloaded(),
            ServeError::draining(),
        ] {
            let body = err.body();
            let value: serde_json::Value =
                serde_json::from_str(&body).unwrap_or_else(|e| {
                    panic!("{}: body not JSON: {e}\n{body}", err.code)
                });
            let error = value.get("error").unwrap();
            assert_eq!(error.get("code").unwrap().as_str(), Some(err.code));
            assert_eq!(
                error.get("status").unwrap().as_u64(),
                Some(u64::from(err.status))
            );
            assert!(body.ends_with('\n'));
            assert_ne!(err.reason(), "Unknown", "{}", err.status);
        }
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
