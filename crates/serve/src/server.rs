//! The server proper: listener, admission control, worker pool, and
//! the drain state machine.
//!
//! Admission is a bounded `sync_channel`: the acceptor thread `try_send`s
//! each accepted connection to the pool and, when every worker is busy
//! *and* the queue is full, sheds the connection immediately with a
//! structured `server.overloaded` 503 — overload degrades into fast,
//! explicit rejections, never unbounded queue growth or a hung client.
//! Shutdown is a three-step drain: stop admitting (late arrivals get
//! `server.draining` 503), let workers finish the queued and in-flight
//! requests under a bounded drain deadline, then return so the caller
//! can flush the journal and exit.

use crate::error::ServeError;
use crate::http::{self, Limits, ParseError};
use crate::service::{self, Response};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How long the acceptor sleeps when `accept` has nothing to hand out.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How often the drain loop re-checks worker completion.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// Everything the server needs to run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads: the hard concurrency limit.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; anything
    /// beyond is shed.
    pub queue_depth: usize,
    /// Per-request cooperative deadline (`None` = unbounded).
    pub request_timeout: Option<Duration>,
    /// How long shutdown waits for in-flight requests to finish.
    pub drain: Duration,
    /// Socket read/write timeout: bounds slow-loris senders and stuck
    /// receivers.
    pub io_timeout: Duration,
    /// HTTP ingress limits.
    pub limits: Limits,
}

impl ServerConfig {
    /// A conservative local default on the given address.
    pub fn new(addr: impl Into<String>) -> Self {
        ServerConfig {
            addr: addr.into(),
            workers: 4,
            queue_depth: 16,
            request_timeout: Some(Duration::from_secs(30)),
            drain: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            limits: Limits::default(),
        }
    }
}

/// What the drain achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every worker finished inside the drain deadline.
    pub drained: bool,
    /// Workers that had finished when the drain window closed.
    pub workers_joined: usize,
}

/// Cross-thread occupancy counts behind the `serve.queue_depth` and
/// `serve.inflight` gauges (gauges alone are last-write-wins and
/// cannot be incremented atomically).
#[derive(Debug, Default)]
struct Occupancy {
    queued: AtomicI64,
    inflight: AtomicI64,
}

/// A bound listener plus its shutdown flag; `run` turns it into the
/// serving loop.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen address (nonblocking, so the acceptor can poll
    /// the shutdown flag).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures from the OS.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { listener, config, shutdown: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures from the OS.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The flag that stops the serving loop: set it (from a signal
    /// handler or another thread) and `run` begins its drain.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves until the shutdown flag is set, then drains and returns.
    ///
    /// # Errors
    ///
    /// Only startup failures (spawning workers) error; per-connection
    /// I/O failures are absorbed as that connection's outcome.
    pub fn run(self) -> io::Result<DrainReport> {
        let workers = self.config.workers.max(1);
        let (sender, receiver) = std::sync::mpsc::sync_channel::<TcpStream>(self.config.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let occupancy = Arc::new(Occupancy::default());
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let receiver = Arc::clone(&receiver);
            let occupancy = Arc::clone(&occupancy);
            let config = self.config.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(&receiver, &occupancy, &config);
            }));
        }

        self.accept_loop(&sender, &occupancy);

        // Drop our sender so the queue disconnects once drained and the
        // workers exit their recv loops.
        drop(sender);
        let deadline = Instant::now() + self.config.drain;
        let report = loop {
            let joined = handles.iter().filter(|h| h.is_finished()).count();
            if joined == handles.len() {
                break DrainReport { drained: true, workers_joined: joined };
            }
            if Instant::now() >= deadline {
                break DrainReport { drained: false, workers_joined: joined };
            }
            // Late arrivals during the drain window get an explicit
            // draining response instead of a connection reset.
            if let Ok((stream, _)) = self.listener.accept() {
                configure_stream(&stream, &self.config);
                refuse(stream, &self.config, &ServeError::draining());
            }
            std::thread::sleep(DRAIN_POLL);
        };
        for handle in handles {
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
        Ok(report)
    }

    /// Accepts until shutdown: admit to the bounded queue or shed.
    fn accept_loop(&self, sender: &SyncSender<TcpStream>, occupancy: &Occupancy) {
        let m = crate::obs::metrics();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    m.accepted.inc();
                    configure_stream(&stream, &self.config);
                    match sender.try_send(stream) {
                        Ok(()) => {
                            let depth = occupancy.queued.fetch_add(1, Ordering::SeqCst) + 1;
                            m.queue_depth.set(depth as f64);
                        }
                        Err(TrySendError::Full(stream)) => {
                            m.shed.inc();
                            refuse(stream, &self.config, &ServeError::overloaded());
                        }
                        Err(TrySendError::Disconnected(stream)) => {
                            // Workers are gone; nothing can serve this.
                            refuse(stream, &self.config, &ServeError::draining());
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE); back off
                    // rather than spin or die.
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    }
}

/// Applies socket timeouts; failures fall through to the read path,
/// which classifies them.
fn configure_stream(stream: &TcpStream, config: &ServerConfig) {
    let _ = stream.set_read_timeout(Some(config.io_timeout));
    let _ = stream.set_write_timeout(Some(config.io_timeout));
    let _ = stream.set_nonblocking(false);
}

/// Writes a refusal (shed/draining) on the acceptor thread and counts
/// it like any other error response.
fn refuse(mut stream: TcpStream, _config: &ServerConfig, error: &ServeError) {
    write_counted(&mut stream, &Response::from_error(error));
}

/// One worker: pull connections until the queue disconnects.
fn worker_loop(
    receiver: &Arc<Mutex<Receiver<TcpStream>>>,
    occupancy: &Occupancy,
    config: &ServerConfig,
) {
    let m = crate::obs::metrics();
    loop {
        let next = {
            let guard = receiver.lock().unwrap_or_else(PoisonError::into_inner);
            // ucore-lint: allow(lock-discipline): shared-receiver MPMC — the mutex's whole job is to park idle workers on recv until a connection arrives; no other state hides behind it
            guard.recv()
        };
        let Ok(stream) = next else { return };
        let depth = (occupancy.queued.fetch_sub(1, Ordering::SeqCst) - 1).max(0);
        m.queue_depth.set(depth as f64);
        handle_connection(stream, occupancy, config);
    }
}

/// Reads, handles, and answers one connection, absorbing every failure
/// into a typed response (or a silent drop when the peer vanished).
fn handle_connection(mut stream: TcpStream, occupancy: &Occupancy, config: &ServerConfig) {
    let m = crate::obs::metrics();
    let started = Instant::now();
    m.requests.inc();
    m.inflight.set((occupancy.inflight.fetch_add(1, Ordering::SeqCst) + 1) as f64);
    let response = match http::read_request(&mut stream, &config.limits) {
        Ok(request) => Some(service::handle(&request, config.request_timeout)),
        Err(ParseError::Closed) => None,
        Err(e) => {
            m.ingress_rejected.inc();
            Some(Response::from_error(&ingress_error(&e)))
        }
    };
    if let Some(response) = response {
        write_counted(&mut stream, &response);
    }
    m.inflight.set(((occupancy.inflight.fetch_sub(1, Ordering::SeqCst) - 1).max(0)) as f64);
    m.request_us.observe(started.elapsed().as_secs_f64() * 1e6);
}

/// Maps an HTTP-layer parse failure to its taxonomy error.
fn ingress_error(e: &ParseError) -> ServeError {
    match e {
        ParseError::Malformed(msg) => ServeError::malformed(msg.clone()),
        ParseError::TooLarge(msg) => ServeError::too_large(msg.clone()),
        ParseError::Timeout(msg) => ServeError::ingress_timeout(msg.clone()),
        // `Closed` never reaches here (handled as a silent drop), but
        // map it defensively.
        ParseError::Closed => ServeError::malformed("connection closed mid-request"),
    }
}

/// Writes a response and maintains the response counters. Write
/// failures mean the peer vanished; that is the connection's outcome,
/// not a server fault.
fn write_counted(stream: &mut TcpStream, response: &Response) {
    let m = crate::obs::metrics();
    if response.status < 400 {
        m.responses_ok.inc();
    } else {
        m.responses_error.inc();
    }
    m.bytes_out.add(response.body.len() as u64);
    let _ = http::write_response(
        stream,
        response.status,
        crate::error::reason_phrase(response.status),
        response.content_type,
        &response.body,
    );
    // Half-close, then briefly drain whatever the peer already sent
    // (a shed connection's request, an oversized body). Closing with
    // unread bytes would send an RST that can destroy the in-flight
    // response before the peer reads it. The drain is bounded: a few
    // short-timeout reads, then the socket drops regardless.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    for _ in 0..8 {
        match std::io::Read::read(stream, &mut sink) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}
