//! Crash-tolerant persistent evaluation service for the ucore model.
//!
//! `ucore-serve` turns the one-shot `repro` pipeline into a long-running
//! daemon: a hand-rolled HTTP/1.1 server over [`std::net`] (no async
//! runtime, no new dependencies) that answers figure, table, scenario,
//! and projection queries with bodies *byte-identical* to `repro`
//! stdout — both front ends render through [`ucore_bench::render`].
//!
//! The point of the crate is the robustness envelope, not the protocol:
//!
//! * **Admission control** ([`server`]): a worker pool is the hard
//!   concurrency limit and a bounded queue is the only buffering.
//!   Overload sheds immediately with a structured `server.overloaded`
//!   503 — queue depth cannot grow without bound.
//! * **Per-request deadlines** ([`service`]): each render runs under a
//!   cooperative deadline wired into the model's watchdog checkpoints
//!   ([`ucore_project::arm_request_deadline`]); pathological queries
//!   come back as `request.deadline` 504 instead of wedging a worker.
//! * **Graceful degradation** ([`service`], [`error`]): handlers run
//!   under `catch_unwind`; contained panics, injected faults
//!   (`UCORE_FAULT_INJECT`), and degraded journaling surface as
//!   taxonomy-coded JSON errors while the process keeps serving.
//! * **Graceful shutdown** ([`server`]): SIGINT/SIGTERM (see the
//!   `served` binary) stops admission, drains in-flight requests under
//!   a bounded deadline, flushes the run journal, and exits 0; a
//!   `kill -9` mid-request leaves a journal that `--resume` replays to
//!   byte-identical output.
//!
//! Every request outcome is counted in the process-wide [`ucore_obs`]
//! registry ([`obs`] documents the `serve.*` contract), rendered on
//! `GET /metrics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod http;
pub(crate) mod obs;
pub mod server;
pub mod service;

pub use error::ServeError;
pub use http::{Limits, ParseError, Request};
pub use server::{DrainReport, Server, ServerConfig};
pub use service::{handle, Response};
