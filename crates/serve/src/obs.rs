//! The serving layer's registered observability instruments.
//!
//! Every admission, completion, shed, timeout, and contained panic is
//! counted in the process-wide [`ucore_obs`] registry, rendered on
//! `GET /metrics` in the Prometheus exposition format. The serve-layer
//! metric-name contract (DESIGN.md §17):
//!
//! | name                     | type      | meaning                                      |
//! |--------------------------|-----------|----------------------------------------------|
//! | `serve.accepted`         | counter   | connections accepted by the listener         |
//! | `serve.requests`         | counter   | requests handed to a worker                  |
//! | `serve.responses_ok`     | counter   | 2xx responses written                        |
//! | `serve.responses_error`  | counter   | taxonomy-coded error responses written       |
//! | `serve.shed`             | counter   | connections shed by admission control (503)  |
//! | `serve.timeouts`         | counter   | requests that exceeded their deadline (504)  |
//! | `serve.panics`           | counter   | handler panics contained by the envelope     |
//! | `serve.ingress_rejected` | counter   | connections rejected at the HTTP layer (4xx) |
//! | `serve.bytes_out`        | counter   | response body bytes written                  |
//! | `serve.queue_depth`      | gauge     | connections currently parked in the queue    |
//! | `serve.inflight`         | gauge     | requests currently executing in workers      |
//! | `serve.request_us`       | histogram | request wall time (µs; timing, non-golden)   |
//!
//! Counters and gauges are request-count-derived, so a scrape after a
//! known request sequence is deterministic; `serve.request_us` is
//! wall-clock timing and carries the `_us` suffix that
//! [`ucore_obs::is_timing_metric`] excludes from golden comparisons.

use std::sync::{Arc, OnceLock};
use ucore_obs::{Counter, Gauge, Histogram};

/// Upper bounds (µs) for the request wall-time histogram.
const REQUEST_US_BOUNDS: [f64; 8] =
    [100.0, 500.0, 1000.0, 5000.0, 25000.0, 100000.0, 500000.0, 2000000.0];

/// One `Arc` per instrument, resolved from the registry exactly once.
pub(crate) struct ServeMetrics {
    pub(crate) accepted: Arc<Counter>,
    pub(crate) requests: Arc<Counter>,
    pub(crate) responses_ok: Arc<Counter>,
    pub(crate) responses_error: Arc<Counter>,
    pub(crate) shed: Arc<Counter>,
    pub(crate) timeouts: Arc<Counter>,
    pub(crate) panics: Arc<Counter>,
    pub(crate) ingress_rejected: Arc<Counter>,
    pub(crate) bytes_out: Arc<Counter>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) inflight: Arc<Gauge>,
    pub(crate) request_us: Arc<Histogram>,
}

/// The crate's registered instruments.
pub(crate) fn metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = ucore_obs::registry();
        ServeMetrics {
            accepted: r.counter("serve.accepted"),
            requests: r.counter("serve.requests"),
            responses_ok: r.counter("serve.responses_ok"),
            responses_error: r.counter("serve.responses_error"),
            shed: r.counter("serve.shed"),
            timeouts: r.counter("serve.timeouts"),
            panics: r.counter("serve.panics"),
            ingress_rejected: r.counter("serve.ingress_rejected"),
            bytes_out: r.counter("serve.bytes_out"),
            queue_depth: r.gauge("serve.queue_depth"),
            inflight: r.gauge("serve.inflight"),
            request_us: r.histogram("serve.request_us", &REQUEST_US_BOUNDS),
        }
    })
}
