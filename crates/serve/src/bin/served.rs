//! The serving daemon: a long-running front end over the ucore model.
//!
//! ```text
//! served --serve 127.0.0.1:7878                 # defaults
//! served --serve 127.0.0.1:0 --workers 8        # free port, 8 workers
//! served --serve ... --queue-depth 32 --request-timeout-ms 5000
//! served --serve ... --journal run.jsonl        # durable sweeps
//! served --serve ... --journal run.jsonl --resume   # replay first
//! ```
//!
//! The daemon binds, prints `served: listening on ADDR` to stderr (so
//! scripts can scrape the bound port when `--serve` used port 0), and
//! serves until signaled:
//!
//! * the **first** SIGINT/SIGTERM starts a graceful drain — admission
//!   stops (late connections get a `server.draining` 503), in-flight
//!   and queued requests finish under `--drain-ms`, the journal is
//!   flushed, and the process exits 0;
//! * a **second** signal (or `kill -9`) is the crash path — the handler
//!   fsyncs the active journal and exits `128+signum` immediately. A
//!   journal cut off this way replays with `--resume` to byte-identical
//!   output.
//!
//! Sweeps inside requests run sequentially (`UCORE_SWEEP_THREADS=1`
//! unless the environment overrides it): the worker pool is the
//! parallelism, and a sequential sweep keeps each request's cooperative
//! deadline on the thread that armed it.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;
use ucore_project::durability::{self, DurabilityConfig, DurabilityGuard};
use ucore_serve::{Limits, Server, ServerConfig};

fn usage() -> &'static str {
    "usage: served [--serve ADDR] [--workers N] [--queue-depth N] \
     [--request-timeout-ms N] [--drain-ms N] [--io-timeout-ms N] [--max-body-bytes N] \
     [--journal PATH] [--resume] [--timeout-ms N] [--retries N]\n\
     --serve ADDR: listen address (default 127.0.0.1:7878; port 0 picks a free port)\n\
     --workers N: worker threads — the hard concurrency limit (default 4)\n\
     --queue-depth N: accepted connections allowed to wait; beyond this, shed 503 (default 16)\n\
     --request-timeout-ms N: per-request deadline; 0 disables (default 30000)\n\
     --drain-ms N: how long shutdown waits for in-flight requests (default 5000)\n\
     --io-timeout-ms N: socket read/write timeout bounding slow clients (default 10000)\n\
     --max-body-bytes N: largest accepted request body (default 65536)\n\
     --journal PATH: stream completed sweep points to an append-only checksummed journal\n\
     --resume: replay the journal before serving (requires --journal)\n\
     --timeout-ms N: per-point watchdog deadline inside sweeps\n\
     --retries N: retry failed points up to N times (default 0)"
}

struct Cli {
    addr: String,
    workers: usize,
    queue_depth: usize,
    request_timeout: Option<Duration>,
    drain: Duration,
    io_timeout: Duration,
    max_body_bytes: usize,
    journal: Option<PathBuf>,
    resume: bool,
    timeout_ms: Option<u64>,
    retries: u32,
    help: bool,
}

fn parse(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        addr: String::from("127.0.0.1:7878"),
        workers: 4,
        queue_depth: 16,
        request_timeout: Some(Duration::from_millis(30_000)),
        drain: Duration::from_millis(5_000),
        io_timeout: Duration::from_millis(10_000),
        max_body_bytes: 64 * 1024,
        journal: None,
        resume: false,
        timeout_ms: None,
        retries: 0,
        help: false,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        let parse_u64 = |flag: &str, v: &str| -> Result<u64, String> {
            v.parse().map_err(|_| {
                format!("{flag} value {v:?} is not a non-negative integer\n{}", usage())
            })
        };
        match arg.as_str() {
            "--help" | "-h" => cli.help = true,
            "--serve" => cli.addr = value_for("--serve")?,
            "--workers" => {
                let v = value_for("--workers")?;
                cli.workers = v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--workers value {v:?} is not a positive integer\n{}", usage())
                })?;
            }
            "--queue-depth" => {
                let v = value_for("--queue-depth")?;
                cli.queue_depth = parse_u64("--queue-depth", &v)? as usize;
            }
            "--request-timeout-ms" => {
                let v = value_for("--request-timeout-ms")?;
                let ms = parse_u64("--request-timeout-ms", &v)?;
                cli.request_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--drain-ms" => {
                let v = value_for("--drain-ms")?;
                cli.drain = Duration::from_millis(parse_u64("--drain-ms", &v)?);
            }
            "--io-timeout-ms" => {
                let v = value_for("--io-timeout-ms")?;
                let ms = parse_u64("--io-timeout-ms", &v)?;
                if ms == 0 {
                    return Err(format!(
                        "--io-timeout-ms must be positive (it bounds slow-loris clients)\n{}",
                        usage()
                    ));
                }
                cli.io_timeout = Duration::from_millis(ms);
            }
            "--max-body-bytes" => {
                let v = value_for("--max-body-bytes")?;
                cli.max_body_bytes = parse_u64("--max-body-bytes", &v)? as usize;
            }
            "--journal" => cli.journal = Some(PathBuf::from(value_for("--journal")?)),
            "--resume" => cli.resume = true,
            "--timeout-ms" => {
                let v = value_for("--timeout-ms")?;
                let ms = parse_u64("--timeout-ms", &v)?;
                if ms == 0 {
                    return Err(format!(
                        "--timeout-ms must be positive\n{}",
                        usage()
                    ));
                }
                cli.timeout_ms = Some(ms);
            }
            "--retries" => {
                let v = value_for("--retries")?;
                cli.retries = v.parse().map_err(|_| {
                    format!("--retries value {v:?} is not a non-negative integer\n{}", usage())
                })?;
            }
            other => {
                return Err(format!("unknown flag {other:?}\n{}", usage()));
            }
        }
    }
    if cli.resume && cli.journal.is_none() {
        return Err(format!("--resume requires --journal PATH\n{}", usage()));
    }
    Ok(cli)
}

/// Activates the durability layer when any of its flags were given,
/// reporting what a resume replayed (same contract as `repro`).
fn activate_durability(cli: &Cli) -> Result<Option<DurabilityGuard>, String> {
    let wanted = cli.journal.is_some() || cli.timeout_ms.is_some() || cli.retries > 0;
    if !wanted {
        return Ok(None);
    }
    let config = DurabilityConfig {
        journal: cli.journal.clone(),
        resume: cli.resume,
        timeout: cli.timeout_ms.map(Duration::from_millis),
        retries: cli.retries,
        shard: None,
    };
    let (guard, report) = durability::activate(config).map_err(|e| e.to_string())?;
    if cli.resume {
        let path = cli.journal.as_deref().unwrap_or_else(|| std::path::Path::new("?"));
        eprintln!(
            "resume: replayed {} journaled outcome(s) from {}",
            report.records,
            path.display()
        );
        if report.torn_tail {
            eprintln!(
                "warning: journal {} ended in a torn (partially written) record; \
                 it was skipped and that point will be re-evaluated",
                path.display()
            );
        }
    }
    Ok(Some(guard))
}

fn main() -> ExitCode {
    // Installed before anything else so a signal during startup already
    // has crash-consistent behavior.
    signals::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.help {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    // Sequential sweeps inside requests: the worker pool is the
    // parallelism, and the per-request deadline is a thread-local that
    // must stay on the thread that armed it.
    if std::env::var_os("UCORE_SWEEP_THREADS").is_none() {
        std::env::set_var("UCORE_SWEEP_THREADS", "1");
    }
    let _durability_guard = match activate_durability(&cli) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        addr: cli.addr.clone(),
        workers: cli.workers,
        queue_depth: cli.queue_depth,
        request_timeout: cli.request_timeout,
        drain: cli.drain,
        io_timeout: cli.io_timeout,
        limits: Limits { max_body_bytes: cli.max_body_bytes, ..Limits::default() },
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", cli.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => eprintln!("served: listening on {addr}"),
        Err(e) => eprintln!("served: listening (address unavailable: {e})"),
    }
    // Bridge the async-signal-safe flag to the server's shutdown handle.
    let shutdown = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if signals::requested() {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
    match server.run() {
        Ok(report) if report.drained => {
            eprintln!("served: drained cleanly ({} workers)", report.workers_joined);
            ExitCode::SUCCESS
        }
        Ok(report) => {
            eprintln!(
                "warning: drain deadline expired with {} worker(s) still busy",
                cli.workers.saturating_sub(report.workers_joined)
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
    // _durability_guard drops here: the journal gets its final fsync
    // after the drain, so a graceful exit never leaves a torn tail.
}

/// Two-stage signal handling. The first SIGINT/SIGTERM only sets an
/// atomic flag — the main loop sees it and runs the graceful drain
/// (finish in-flight, flush journal, exit 0). A second signal is the
/// impatient path: fsync the active journal and `_exit(128+signum)`
/// immediately, leaving a resumable journal. Everything in the handler
/// is async-signal-safe: atomic ops, `fsync(2)`, `_exit(2)`.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn fsync(fd: i32) -> i32;
        fn _exit(code: i32) -> !;
    }

    extern "C" fn request_or_exit(signum: i32) {
        if SHUTDOWN_REQUESTED.swap(true, Ordering::SeqCst) {
            let fd = ucore_project::durability::active_journal_fd();
            if fd >= 0 {
                // SAFETY: fsync(2) is async-signal-safe; a stale or
                // closed descriptor returns EBADF, which is ignored.
                unsafe { fsync(fd) };
            }
            // SAFETY: _exit(2) is async-signal-safe and never returns.
            unsafe { _exit(128 + signum) }
        }
    }

    pub fn install() {
        for sig in [SIGINT, SIGTERM] {
            // SAFETY: signal(2) installing a handler that only performs
            // async-signal-safe operations (see request_or_exit).
            unsafe { signal(sig, request_or_exit) };
        }
    }

    /// Whether a graceful shutdown has been requested.
    pub fn requested() -> bool {
        SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

    pub fn install() {}

    /// Whether a graceful shutdown has been requested.
    pub fn requested() -> bool {
        SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
    }
}
