//! A minimal, hostile-input-hardened HTTP/1.1 request reader and
//! response writer over any `Read`/`Write` stream.
//!
//! The vendored-shim policy rules out an HTTP dependency, and the
//! service needs only a tiny slice of the protocol: one request per
//! connection, `GET`/`POST`, `Content-Length` bodies, no keep-alive, no
//! chunked encoding. What it must be is *unkillable*: every byte
//! sequence a hostile client can send — truncated headers, oversized
//! request lines, slow-loris dribbles, binary garbage — must come back
//! as a typed [`ParseError`], never a panic or a wedged thread. Hard
//! limits bound every dimension of a request ([`Limits`]), and socket
//! read timeouts (configured by the server on the `TcpStream`) convert
//! a stalled sender into [`ParseError::Timeout`].

use std::io::{self, Read, Write};

/// Hard ceilings on request dimensions. Anything over a limit is
/// rejected with a typed error before it can consume memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub max_request_line: usize,
    /// Largest accepted header block, request line included.
    pub max_head_bytes: usize,
    /// Most header lines accepted.
    pub max_headers: usize,
    /// Largest accepted `Content-Length` body.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path + optional query), as received.
    pub target: String,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The bytes are not a parseable HTTP request.
    Malformed(String),
    /// A limit in [`Limits`] was exceeded.
    TooLarge(String),
    /// The socket read timed out mid-request (slow-loris).
    Timeout(String),
    /// The peer closed the connection before a complete request; no
    /// response can be delivered.
    Closed,
}

impl ParseError {
    fn malformed(msg: impl Into<String>) -> Self {
        ParseError::Malformed(msg.into())
    }

    fn too_large(msg: impl Into<String>) -> Self {
        ParseError::TooLarge(msg.into())
    }
}

/// Reads one request from `stream`, honoring `limits`.
///
/// The head is read incrementally until the blank line, so a hostile
/// peer cannot make the server buffer more than `max_head_bytes`; the
/// body is read exactly to its declared `Content-Length`.
///
/// # Errors
///
/// [`ParseError::TooLarge`] when a limit is exceeded,
/// [`ParseError::Timeout`] when the socket read times out mid-request,
/// [`ParseError::Closed`] when the peer disconnects before a full
/// request, and [`ParseError::Malformed`] for everything unparseable.
pub fn read_request(stream: &mut impl Read, limits: &Limits) -> Result<Request, ParseError> {
    let (head, leftover) = read_head(stream, limits)?;
    let (request, content_length) = parse_head(&head, limits)?;
    let mut request = request;
    if content_length > limits.max_body_bytes {
        return Err(ParseError::too_large(format!(
            "content-length {content_length} exceeds the {} byte body limit",
            limits.max_body_bytes
        )));
    }
    if content_length > 0 {
        // Body bytes that arrived in the same read as the head
        // terminator are already in `leftover`.
        let mut body = leftover;
        body.truncate(content_length);
        let filled = body.len();
        body.resize(content_length, 0);
        // ucore-lint: allow(panic-reachability): in bounds — `filled` is body.len() before the resize to content_length, and truncate capped it at content_length
        read_exact_classified(stream, &mut body[filled..])?;
        request.body = body;
    }
    Ok(request)
}

/// Reads until the end-of-head blank line (`\r\n\r\n` or `\n\n`),
/// returning the head bytes (terminator excluded) and any bytes read
/// past the terminator (the start of the body).
fn read_head(
    stream: &mut impl Read,
    limits: &Limits,
) -> Result<(Vec<u8>, Vec<u8>), ParseError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if let Some((end, terminator)) = head_end(&buf) {
            let leftover = buf.split_off(end + terminator);
            buf.truncate(end);
            return Ok((buf, leftover));
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(ParseError::too_large(format!(
                "request head exceeds the {} byte limit",
                limits.max_head_bytes
            )));
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(ParseError::Closed)
                } else {
                    Err(ParseError::malformed(
                        "connection closed before the end of the request head",
                    ))
                }
            }
            Ok(n) => n,
            Err(e) => return Err(classify_io(&e)),
        };
        // ucore-lint: allow(panic-reachability): in bounds — `n` is the return of Read::read on `chunk`, so n <= chunk.len()
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// The byte offset where the head ends and its terminator's length, if
/// the terminator has arrived.
fn head_end(buf: &[u8]) -> Option<(usize, usize)> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| (p, 4))
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| (p, 2)))
}

/// Classifies an I/O error from a socket read: timeouts (slow-loris)
/// are typed apart from disconnects.
fn classify_io(e: &io::Error) -> ParseError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            ParseError::Timeout(format!("socket read timed out: {e}"))
        }
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => ParseError::Closed,
        _ => ParseError::Malformed(format!("socket read failed: {e}")),
    }
}

/// `read_exact` with the same timeout/closed classification.
fn read_exact_classified(stream: &mut impl Read, buf: &mut [u8]) -> Result<(), ParseError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        // ucore-lint: allow(panic-reachability): in bounds — the `filled < buf.len()` loop guard keeps the range start inside the buffer
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ParseError::malformed(
                    "connection closed before the declared content-length arrived",
                ))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(classify_io(&e)),
        }
    }
    Ok(())
}

/// Parses a complete request head (no body bytes). Pure — the hostile
/// ingress proptests drive this directly.
///
/// Returns the request (body empty) and the declared content length.
///
/// # Errors
///
/// [`ParseError::Malformed`] for non-UTF-8 heads, bad request lines,
/// malformed headers, or an unparseable `Content-Length`;
/// [`ParseError::TooLarge`] for an over-limit request line or header
/// count.
pub fn parse_head(head: &[u8], limits: &Limits) -> Result<(Request, usize), ParseError> {
    let text = std::str::from_utf8(head)
        .map_err(|e| ParseError::malformed(format!("request head is not UTF-8: {e}")))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > limits.max_request_line {
        return Err(ParseError::too_large(format!(
            "request line exceeds the {} byte limit",
            limits.max_request_line
        )));
    }
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| ParseError::malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseError::malformed("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::malformed("request line has no HTTP version"))?;
    if parts.next().is_some() {
        return Err(ParseError::malformed("request line has trailing fields"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.is_empty() {
        return Err(ParseError::malformed(format!("invalid method {method:?}")));
    }
    let mut content_length = 0usize;
    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        header_count += 1;
        if header_count > limits.max_headers {
            return Err(ParseError::too_large(format!(
                "more than {} header lines",
                limits.max_headers
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::malformed(format!(
                "header line without a colon: {line:?}"
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::malformed(format!("invalid header name {name:?}")));
        }
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| {
                ParseError::malformed(format!("unparseable content-length {value:?}"))
            })?;
        }
    }
    Ok((
        Request {
            method: method.to_string(),
            target: target.to_string(),
            body: Vec::new(),
        },
        content_length,
    ))
}

/// Writes one complete response (status line, minimal headers, body)
/// and flushes. Connections are single-request: the response carries
/// `Connection: close`.
///
/// # Errors
///
/// Propagates socket write failures (a vanished peer is the caller's
/// normal case, not a server fault).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<(Request, usize), ParseError> {
        parse_head(bytes, &Limits::default())
    }

    #[test]
    fn parses_a_minimal_get() {
        let (req, len) = parse(b"GET /table/5 HTTP/1.1\r\nHost: x\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/table/5");
        assert_eq!(len, 0);
    }

    #[test]
    fn parses_content_length_case_insensitively() {
        let (_, len) = parse(b"POST /query HTTP/1.1\ncontent-LENGTH: 12\n").unwrap();
        assert_eq!(len, 12);
    }

    #[test]
    fn rejects_binary_garbage_as_malformed() {
        assert!(matches!(
            parse(&[0xff, 0xfe, 0x00, 0x01]),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_request_line() {
        let line = format!("GET /{} HTTP/1.1\r\n", "a".repeat(9000));
        assert!(matches!(parse(line.as_bytes()), Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn read_request_reads_exact_body() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        let req = read_request(&mut cursor, &Limits::default()).unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn empty_stream_is_closed_not_malformed() {
        let mut cursor = std::io::Cursor::new(Vec::new());
        assert_eq!(
            read_request(&mut cursor, &Limits::default()),
            Err(ParseError::Closed)
        );
    }
}
