//! Ready-made reproductions of the paper's projection figures.
//!
//! Figures are assembled by fanning their `(f, design, node)` grid over
//! the parallel [`sweep`](crate::sweep) engine. The sweep returns
//! results in submission order and each point is memoized in the
//! process-wide evaluation cache, so figure output is deterministic
//! (bit-identical to a sequential build) and points shared between
//! figures — e.g. the baseline FFT grid appearing in both Figure 6 and
//! the scenario studies — are optimized only once per process.

use crate::engine::{DesignId, ProjectionEngine, ProjectionError};
use crate::results::{FailureRecord, FigureData, Metric, Panel, Series, SweepHealth};
use crate::scenario::Scenario;
use crate::sweep::{figure_points, sweep, SweepConfig};
use ucore_calibrate::WorkloadColumn;

/// Builds a speedup figure: one panel per `f`, one series per design.
fn speedup_figure(
    id: &str,
    title: &str,
    scenario: Scenario,
    column: WorkloadColumn,
    f_values: &[f64],
) -> Result<FigureData, ProjectionError> {
    figure_with_metric(id, title, scenario, column, f_values, Metric::Speedup)
}

fn figure_with_metric(
    id: &str,
    title: &str,
    scenario: Scenario,
    column: WorkloadColumn,
    f_values: &[f64],
    metric: Metric,
) -> Result<FigureData, ProjectionError> {
    let engine = ProjectionEngine::new(scenario)?;
    let designs = DesignId::for_column(engine.table5(), column);
    assemble_figure(&engine, id, title, &designs, column, f_values, metric)
}

/// The shared assembly tail: fans the `(f, design, node)` grid over the
/// sweep and folds the ordered results into panels/series.
fn assemble_figure(
    engine: &ProjectionEngine,
    id: &str,
    title: &str,
    designs: &[DesignId],
    column: WorkloadColumn,
    f_values: &[f64],
    metric: Metric,
) -> Result<FigureData, ProjectionError> {
    let nodes_per_series = engine.scenario().roadmap().nodes().len();
    let points = figure_points(engine, designs, column, f_values)?;
    let (results, stats) = sweep(engine, points, &SweepConfig::default());

    // Reassemble the ordered results into panels: the batch was built
    // with f outermost, then design, then node, so consecutive
    // `nodes_per_series` chunks form one series. A failed point leaves
    // its node absent from the series (like an infeasible one) and is
    // recorded in the figure's failure log instead.
    let mut chunks = results.chunks(nodes_per_series);
    let mut panels = Vec::with_capacity(f_values.len());
    let mut failures = Vec::new();
    for &fv in f_values {
        let mut series = Vec::with_capacity(designs.len());
        for &design in designs {
            let Some(chunk) = chunks.next() else {
                // Unreachable while figure_points covers the grid, but a
                // short figure must never panic mid-assembly.
                break;
            };
            let points = chunk.iter().filter_map(|r| r.outcome.node_point()).collect();
            for r in chunk {
                if let Some(message) = r.outcome.failure_message() {
                    failures.push(FailureRecord {
                        index: r.index,
                        f: fv,
                        label: design.label(),
                        message: message.to_string(),
                    });
                }
            }
            series.push(Series { label: design.label(), points });
        }
        panels.push(Panel { f: fv, series });
    }
    Ok(FigureData {
        id: id.into(),
        title: title.into(),
        metric,
        panels,
        health: SweepHealth {
            points_ok: stats.points_ok,
            points_infeasible: stats.points_infeasible,
            points_failed: stats.points_failed,
            retries: stats.retries,
        },
        failures,
    })
}

/// Figure 6: FFT-1024 speedup projection at `f ∈ {0.5, 0.9, 0.99,
/// 0.999}` under the baseline scenario.
///
/// # Errors
///
/// Propagates calibration failures (none with the shipped data).
pub fn figure6() -> Result<FigureData, ProjectionError> {
    speedup_figure(
        "figure-6",
        "FFT-1024 projection",
        Scenario::baseline(),
        WorkloadColumn::Fft1024,
        &[0.5, 0.9, 0.99, 0.999],
    )
}

/// Figure 7: MMM speedup projection (seven designs, ASIC exempt from the
/// bandwidth bound).
///
/// # Errors
///
/// Propagates calibration failures.
pub fn figure7() -> Result<FigureData, ProjectionError> {
    speedup_figure(
        "figure-7",
        "MMM projection",
        Scenario::baseline(),
        WorkloadColumn::Mmm,
        &[0.5, 0.9, 0.99, 0.999],
    )
}

/// Figure 8: Black-Scholes speedup projection at `f ∈ {0.5, 0.9}`.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn figure8() -> Result<FigureData, ProjectionError> {
    speedup_figure(
        "figure-8",
        "Black-Scholes projection",
        Scenario::baseline(),
        WorkloadColumn::Bs,
        &[0.5, 0.9],
    )
}

/// Figure 9: FFT-1024 under the 1 TB/s scenario (embedded DRAM /
/// 3D-stacked memory).
///
/// # Errors
///
/// Propagates calibration failures.
pub fn figure9() -> Result<FigureData, ProjectionError> {
    speedup_figure(
        "figure-9",
        "FFT-1024 projection given 1 TB/sec bandwidth",
        Scenario::s2_high_bandwidth(),
        WorkloadColumn::Fft1024,
        &[0.5, 0.9, 0.99, 0.999],
    )
}

/// Figure 10: MMM total-energy projection (normalized to one BCE at
/// 40 nm) at `f ∈ {0.5, 0.9, 0.99}`.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn figure10() -> Result<FigureData, ProjectionError> {
    figure_with_metric(
        "figure-10",
        "MMM energy projections (normalized to BCE)",
        Scenario::baseline(),
        WorkloadColumn::Mmm,
        &[0.5, 0.9, 0.99],
        Metric::Energy,
    )
}

/// Figure 11: the composite three-kernel workload (MMM, Black-Scholes,
/// and FFT-1024 in equal parallel shares) under the baseline scenario,
/// contrasting single shared U-cores against split accelerator
/// portfolios allocated by the Multi-Amdahl KKT rule.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn figure11() -> Result<FigureData, ProjectionError> {
    let engine = ProjectionEngine::new(Scenario::baseline())?;
    let designs = DesignId::portfolio_designs();
    assemble_figure(
        &engine,
        "figure-11",
        "Composite-workload portfolio projection",
        &designs,
        WorkloadColumn::Mmm,
        &[0.9, 0.99, 0.999],
        Metric::Speedup,
    )
}

/// A §6.2 scenario projection for any workload column and `f` sweep —
/// the quantitative backing for the qualitative scenario discussion.
///
/// # Errors
///
/// Propagates calibration failures.
pub fn scenario_figure(
    scenario: Scenario,
    column: WorkloadColumn,
    f_values: &[f64],
) -> Result<FigureData, ProjectionError> {
    let id = format!("scenario:{}:{}", scenario.name(), column.label());
    let title = format!("{} under {}", column.label(), scenario.name());
    speedup_figure(&id.clone(), &title, scenario, column, f_values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucore_core::Limiter;
    use ucore_devices::TechNode;

    #[test]
    fn figure6_structure() {
        let fig = figure6().unwrap();
        assert_eq!(fig.panels.len(), 4);
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 6, "f = {}", panel.f);
        }
    }

    #[test]
    fn figure6_f0999_asic_ceiling_matches_paper_scale() {
        // The paper's f = 0.999 panel tops out around 45-70 across nodes.
        let fig = figure6().unwrap();
        let at40 = fig.value(0.999, "ASIC", TechNode::N40).unwrap();
        let at11 = fig.value(0.999, "ASIC", TechNode::N11).unwrap();
        assert!((30.0..70.0).contains(&at40), "40 nm: {at40}");
        assert!((45.0..90.0).contains(&at11), "11 nm: {at11}");
        assert!(at11 > at40);
    }

    #[test]
    fn figure6_flexible_ucores_converge_to_asic() {
        // "the FPGA design reaches ASIC-like bandwidth-limited
        // performance as early as 32nm — and similarly for the GPU
        // designs, around 22nm and 16nm."
        let fig = figure6().unwrap();
        let f = 0.999;
        let asic_11 = fig.value(f, "ASIC", TechNode::N11).unwrap();
        let fpga_11 = fig.value(f, "LX760", TechNode::N11).unwrap();
        let gtx285_11 = fig.value(f, "GTX285", TechNode::N11).unwrap();
        assert!(fpga_11 / asic_11 > 0.8, "FPGA reached {fpga_11} vs {asic_11}");
        assert!(gtx285_11 / asic_11 > 0.8, "GTX285 reached {gtx285_11}");
    }

    #[test]
    fn figure7_asic_scales_into_the_hundreds() {
        let fig = figure7().unwrap();
        let asic = fig.value(0.999, "ASIC", TechNode::N11).unwrap();
        assert!((400.0..1100.0).contains(&asic), "got {asic}");
        // And the CMPs stay far below.
        let sym = fig.value(0.999, "SymCMP", TechNode::N11).unwrap();
        assert!(asic / sym > 10.0);
    }

    #[test]
    fn figure8_f09_ceiling_matches_paper_scale() {
        // Paper's f = 0.9 panel tops out around 30-35.
        let fig = figure8().unwrap();
        let asic = fig.value(0.9, "ASIC", TechNode::N11).unwrap();
        assert!((20.0..45.0).contains(&asic), "got {asic}");
    }

    #[test]
    fn figure9_relieves_the_bandwidth_wall() {
        let base = figure6().unwrap();
        let relieved = figure9().unwrap();
        // With 1 TB/s the GPUs/FPGA go power-limited and the ASIC gains.
        let base_asic = base.value(0.999, "ASIC", TechNode::N11).unwrap();
        let relieved_asic = relieved.value(0.999, "ASIC", TechNode::N11).unwrap();
        assert!(relieved_asic > 2.0 * base_asic);
        // Paper: ~300-350 at f = 0.999, 11 nm.
        assert!((150.0..400.0).contains(&relieved_asic), "got {relieved_asic}");

        // Flexible HETs become power-limited instead of bandwidth-limited.
        let panel = relieved.panel(0.99).unwrap();
        let gtx = panel
            .series
            .iter()
            .find(|s| s.label.contains("GTX480"))
            .unwrap();
        let at11 = gtx.points.iter().find(|p| p.node == TechNode::N11).unwrap();
        assert_eq!(at11.limiter, Limiter::Power);
    }

    #[test]
    fn figure10_energy_ordering() {
        // At moderate parallelism the ASIC consumes the least energy and
        // the symmetric CMP the most.
        let fig = figure10().unwrap();
        for f in [0.9, 0.99] {
            let asic = fig.value(f, "ASIC", TechNode::N40).unwrap();
            let sym = fig.value(f, "SymCMP", TechNode::N40).unwrap();
            let gpu = fig.value(f, "GTX285", TechNode::N40).unwrap();
            assert!(asic < gpu, "f = {f}");
            assert!(gpu < sym, "f = {f}");
        }
    }

    #[test]
    fn figure10_f05_limited_by_sequential_core() {
        // "At low levels of parallelism (f = 0.5), the opportunity to
        // reduce the energy consumed is limited by the sequential core."
        let fig = figure10().unwrap();
        let asic = fig.value(0.5, "ASIC", TechNode::N40).unwrap();
        let cmp = fig.value(0.5, "AsymCMP", TechNode::N40).unwrap();
        // The ASIC's edge shrinks: within ~2.5x instead of orders of
        // magnitude.
        assert!(cmp / asic < 2.5, "ratio {}", cmp / asic);
    }

    #[test]
    fn figure11_structure_and_portfolio_ordering() {
        let fig = figure11().unwrap();
        assert_eq!(fig.panels.len(), 3);
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 4, "f = {}", panel.f);
            for series in &panel.series {
                assert_eq!(series.points.len(), 5, "{}", series.label);
            }
        }
        // The split ASIC bank tops the composite chart, like the single
        // ASIC tops every per-kernel chart.
        let asic = fig.value(0.99, "ASIC", TechNode::N11).unwrap();
        let gpu = fig.value(0.99, "GTX285", TechNode::N11).unwrap();
        assert!(asic > gpu, "ASIC {asic} vs GTX285 {gpu}");
    }

    #[test]
    fn scenario_figure_names_itself() {
        let fig = scenario_figure(
            Scenario::s5_low_power(),
            WorkloadColumn::Fft1024,
            &[0.9],
        )
        .unwrap();
        assert!(fig.id.contains("scenario-5"));
        assert_eq!(fig.panels.len(), 1);
    }
}
