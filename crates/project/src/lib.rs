//! # ucore-project — the scaling projections
//!
//! Section 6 of the paper: calibrated U-core parameters plus the ITRS
//! 2009 roadmap, swept across technology nodes, parallel fractions, and
//! chip organizations, under area / power / bandwidth budgets.
//!
//! * [`scenario`] — the baseline study configuration and the §6.2
//!   alternatives (bandwidth, area, power, serial-power variations);
//! * [`engine`] — the projection engine: budgets per node, optimal
//!   sequential-core sizing, limiting-constraint classification;
//! * [`figures`] — ready-made reproductions of Figures 6, 7, 8, 9
//!   and 10;
//! * [`results`] — serializable result structures for export.
//!
//! ```
//! use ucore_project::{figures, Scenario};
//!
//! let fig6 = figures::figure6()?;
//! assert_eq!(fig6.panels.len(), 4); // f = 0.5, 0.9, 0.99, 0.999
//! # Ok::<(), ucore_project::ProjectionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossover;
pub mod designspace;
pub mod engine;
pub mod figures;
pub mod results;
pub mod scenario;
pub mod uncertainty;

pub use crossover::{f_crossover, node_crossover, paper_crossovers, CrossoverRecord};
pub use designspace::{bandwidth_wall_mu, required_mu, DesignSpaceCell, DesignSpaceMap};
pub use engine::{DesignId, ProjectionEngine, ProjectionError, YearPoint};
pub use results::{FigureData, NodePoint, Panel, Series};
pub use scenario::Scenario;
pub use uncertainty::{speedup_interval, InputUncertainty, SpeedupInterval};
