//! # ucore-project — the scaling projections
//!
//! Section 6 of the paper: calibrated U-core parameters plus the ITRS
//! 2009 roadmap, swept across technology nodes, parallel fractions, and
//! chip organizations, under area / power / bandwidth budgets.
//!
//! * [`scenario`] — the baseline study configuration and the §6.2
//!   alternatives (bandwidth, area, power, serial-power variations);
//! * [`engine`] — the projection engine: budgets per node, optimal
//!   sequential-core sizing, limiting-constraint classification;
//! * [`sweep`] — the parallel sweep engine: fans a figure's
//!   `(f, design, node)` grid over scoped worker threads with
//!   deterministic, submission-ordered results, backed by the
//!   process-wide memoization cache ([`ucore_core::EvalCache`]);
//! * [`figures`] — ready-made reproductions of Figures 6, 7, 8, 9
//!   and 10, assembled via the sweep engine;
//! * [`results`] — serializable result structures for export;
//! * [`journal`] — the append-only, checksummed run journal (and the
//!   [`atomic_write`] helper for crash-safe artifacts);
//! * [`durability`] — checkpoint/resume, per-point watchdog deadlines,
//!   and retry-with-backoff orchestration over the sweep engine;
//! * [`shard`] — multi-process sweep sharding: index-range leases,
//!   worker-crash/stall tolerance with bounded lease reassignment, and
//!   the deterministic shard-journal merge.
//!
//! ## Durability & recovery
//!
//! With a [`DurabilityConfig`] active (see [`durability::activate`]),
//! every completed point streams to an append-only, CRC-framed journal
//! and an interrupted run can be resumed: replayed points are not
//! re-evaluated, and because the journal stores exact `f64` bit
//! patterns and retry counts, the resumed run's figure JSON is
//! **byte-identical** to an uninterrupted run at any thread count. A
//! per-point watchdog deadline converts stuck evaluations into
//! contained `Failed{timeout}` outcomes, and failed points retry with
//! exponential backoff and deterministic jitter.
//!
//! ## Sharded execution
//!
//! A sweep shards across *processes* the same way it fans across
//! threads: [`ShardSpec::lease`] assigns worker `i` of `n` a contiguous
//! index range of every sweep, each worker journals only its lease, and
//! [`merge_journals`] folds the shard journals into one index-sorted
//! journal whose replay reproduces the single-process figure bytes
//! exactly. [`orchestrate`] runs the whole fleet: it spawns the
//! workers, watches journal-growth heartbeats, reassigns a crashed or
//! stalled worker's lease with bounded deterministic backoff, and
//! degrades gracefully — an abandoned lease's points are simply evaluated
//! in-process from the merged journal's gaps.
//!
//! ## Parallelism, caching and determinism
//!
//! Design-point evaluation is a pure function of `(optimizer, spec,
//! budgets, f)`, so the engine memoizes every outcome — feasible or
//! infeasible — in a process-wide table keyed on the canonicalized bit
//! patterns of all inputs. Figures fan their grids over worker threads
//! (thread count = available parallelism, overridable via
//! [`SweepConfig`] or the `UCORE_SWEEP_THREADS` environment variable)
//! and restore submission order before assembly, so rendered and
//! exported output is bit-identical across thread counts, cache states,
//! and repeated runs.
//!
//! ```
//! use ucore_project::{figures, Scenario};
//!
//! let fig6 = figures::figure6()?;
//! assert_eq!(fig6.panels.len(), 4); // f = 0.5, 0.9, 0.99, 0.999
//! # Ok::<(), ucore_project::ProjectionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failures on the projection path must flow through the Outcome /
// ProjectionError taxonomy, never abort the process. The few remaining
// intentional sites carry a local #[allow] with justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod crossover;
pub mod designspace;
pub mod durability;
pub mod engine;
pub mod faultinject;
pub mod figures;
pub mod journal;
mod obs;
pub mod results;
pub mod scenario;
pub mod shard;
pub mod sweep;
pub mod uncertainty;

pub use crossover::{f_crossover, node_crossover, paper_crossovers, CrossoverRecord};
pub use designspace::{bandwidth_wall_mu, required_mu, DesignSpaceCell, DesignSpaceMap};
pub use durability::{
    arm_request_deadline, backoff_delay, durability_totals, request_deadline_expired,
    watchdog_checkpoint, DurabilityConfig, DurabilityError, DurabilityGuard,
    DurabilityTotals, RequestDeadlineGuard,
};
pub use engine::{
    DesignId, PortfolioDesign, ProjectionEngine, ProjectionError, YearPoint,
};
pub use journal::{
    atomic_write, atomic_write_with, point_fingerprint, read_records, JournalError,
    JournalRecord, JournalWriter, ReplayReport,
};
pub use results::{FailureRecord, FigureData, NodePoint, Panel, Series, SweepHealth};
pub use scenario::Scenario;
pub use shard::{
    lease_ranges, merge_journals, orchestrate, shard_journal_path, shard_log_path,
    MergeReport, OrchestratorConfig, ShardError, ShardOutcome, ShardRunReport, ShardSpec,
};
pub use sweep::{
    failure_diagnostics, failures_dropped, figure_points, outcome_totals, sweep,
    FailureDiagnostic, Outcome, OutcomeTotals, SweepConfig, SweepPoint, SweepResult,
    SweepStats, MAX_RETAINED_FAILURES,
};
pub use uncertainty::{speedup_interval, InputUncertainty, SpeedupInterval};
