//! Study configurations: the baseline and the §6.2 alternatives.

use serde::{Deserialize, Serialize};
use ucore_core::{SerialPowerLaw, DEFAULT_ALPHA, SCENARIO_ALPHA};
use ucore_itrs::Roadmap;

/// A projection scenario: the roadmap to scale along, the serial power
/// law, and the sequential-core sweep limit.
///
/// ```
/// use ucore_project::Scenario;
/// let s = Scenario::baseline();
/// assert_eq!(s.alpha(), 1.75);
/// let mobile = Scenario::s5_low_power();
/// assert_eq!(mobile.roadmap().nodes()[0].core_power_budget_w, 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    name: String,
    roadmap: Roadmap,
    alpha: f64,
    r_max: f64,
}

impl Scenario {
    /// The paper's baseline study: ITRS 2009 roadmap, α = 1.75, `r`
    /// swept to 16.
    pub fn baseline() -> Self {
        Scenario {
            name: "baseline".into(),
            roadmap: Roadmap::itrs_2009(),
            alpha: DEFAULT_ALPHA,
            r_max: 16.0,
        }
    }

    /// §6.2 scenario 1: starting bandwidth reduced to 90 GB/s.
    pub fn s1_low_bandwidth() -> Self {
        Scenario {
            name: "scenario-1: 90 GB/s".into(),
            roadmap: Roadmap::itrs_2009().with_bandwidth_gb_s(90.0),
            ..Self::baseline()
        }
    }

    /// §6.2 scenario 2: 1 TB/s starting bandwidth (embedded DRAM /
    /// 3D-stacked memory).
    pub fn s2_high_bandwidth() -> Self {
        Scenario {
            name: "scenario-2: 1 TB/s".into(),
            roadmap: Roadmap::itrs_2009().with_bandwidth_gb_s(1000.0),
            ..Self::baseline()
        }
    }

    /// §6.2 scenario 3: core-area budget halved to 216 mm².
    pub fn s3_half_area() -> Self {
        Scenario {
            name: "scenario-3: 216 mm2".into(),
            roadmap: Roadmap::itrs_2009().with_core_area_mm2(216.0),
            ..Self::baseline()
        }
    }

    /// §6.2 scenario 4: power budget doubled to 200 W.
    pub fn s4_high_power() -> Self {
        Scenario {
            name: "scenario-4: 200 W".into(),
            roadmap: Roadmap::itrs_2009().with_power_budget_w(200.0),
            ..Self::baseline()
        }
    }

    /// §6.2 scenario 5: a 10 W budget (laptops and mobiles).
    pub fn s5_low_power() -> Self {
        Scenario {
            name: "scenario-5: 10 W".into(),
            roadmap: Roadmap::itrs_2009().with_power_budget_w(10.0),
            ..Self::baseline()
        }
    }

    /// §6.2 scenario 6: a hungrier sequential core (α = 2.25).
    pub fn s6_serial_power() -> Self {
        Scenario {
            name: "scenario-6: alpha 2.25".into(),
            alpha: SCENARIO_ALPHA,
            ..Self::baseline()
        }
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The roadmap scaled along.
    pub fn roadmap(&self) -> &Roadmap {
        &self.roadmap
    }

    /// The serial power-law exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The serial power law as a model object.
    // Alphas come only from this module's private constants, all of
    // which SerialPowerLaw accepts; there is no caller-supplied path to
    // this expect.
    #[allow(clippy::expect_used)]
    pub fn power_law(&self) -> SerialPowerLaw {
        // ucore-lint: allow(panic-reachability): alphas come only from this module's private constants, all of which SerialPowerLaw accepts
        SerialPowerLaw::new(self.alpha).expect("scenario alphas are valid")
    }

    /// The sequential-core sweep limit.
    pub fn r_max(&self) -> f64 {
        self.r_max
    }

    /// A copy with a custom roadmap (for ablations).
    pub fn with_roadmap(mut self, roadmap: Roadmap) -> Self {
        self.roadmap = roadmap;
        self
    }

    /// A copy with a custom `r` sweep limit (for ablations).
    pub fn with_r_max(mut self, r_max: f64) -> Self {
        self.r_max = r_max;
        self
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucore_devices::TechNode;

    #[test]
    fn baseline_matches_paper() {
        let s = Scenario::baseline();
        assert_eq!(s.alpha(), 1.75);
        assert_eq!(s.r_max(), 16.0);
        assert_eq!(
            s.roadmap().node(TechNode::N40).unwrap().bandwidth_gb_s,
            180.0
        );
    }

    #[test]
    fn scenario_knobs() {
        assert_eq!(
            Scenario::s1_low_bandwidth()
                .roadmap()
                .node(TechNode::N40)
                .unwrap()
                .bandwidth_gb_s,
            90.0
        );
        assert_eq!(
            Scenario::s2_high_bandwidth()
                .roadmap()
                .node(TechNode::N11)
                .unwrap()
                .bandwidth_gb_s,
            1400.0
        );
        assert_eq!(
            Scenario::s3_half_area()
                .roadmap()
                .node(TechNode::N40)
                .unwrap()
                .core_die_budget_mm2,
            216.0
        );
        assert_eq!(
            Scenario::s4_high_power()
                .roadmap()
                .node(TechNode::N40)
                .unwrap()
                .core_power_budget_w,
            200.0
        );
        assert_eq!(Scenario::s6_serial_power().alpha(), 2.25);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Scenario::baseline().name().to_string(),
            Scenario::s1_low_bandwidth().name().to_string(),
            Scenario::s2_high_bandwidth().name().to_string(),
            Scenario::s3_half_area().name().to_string(),
            Scenario::s4_high_power().name().to_string(),
            Scenario::s5_low_power().name().to_string(),
            Scenario::s6_serial_power().name().to_string(),
        ];
        let mut unique = names.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
