//! The durable-run orchestrator: journaling, resume, watchdog
//! deadlines, and retry policy for sweeps.
//!
//! [`activate`] installs a process-wide [`DurabilityConfig`] (mirroring
//! the [`faultinject`](crate::faultinject) guard pattern) that every
//! subsequent [`sweep`](crate::sweep::sweep) consults:
//!
//! * **Journal** — each completed point is appended to the configured
//!   [`journal`](crate::journal) file, so a killed run can be resumed.
//! * **Resume** — the journal of a previous (interrupted) run is
//!   replayed up front; points whose `(sweep, index, fingerprint)`
//!   matches a journaled record are *not* re-evaluated, and the figure
//!   output is byte-identical to an uninterrupted run because replayed
//!   outcomes carry their exact bit patterns and retry counts.
//! * **Watchdog** — a per-point deadline. The evaluation path calls
//!   [`watchdog_checkpoint`] cooperatively; a point past its budget is
//!   converted to a contained `Failed` outcome with a deterministic
//!   timeout message instead of hanging the figure. The parallel worker
//!   loop additionally runs a stall *detector* that warns on stderr
//!   about points overstaying their deadline (observability only — it
//!   never alters results).
//! * **Retry** — failed points are retried up to a bounded number of
//!   attempts with exponential backoff and *deterministic* jitter
//!   ([`backoff_delay`], keyed on submission index and attempt, no
//!   RNG), so retry behavior is identical at any thread count.
//!
//! All of this is off by default: with no active configuration a sweep
//! behaves exactly as before this module existed.

use crate::journal::{
    self, JournalError, JournalRecord, JournalWriter, ReplayLookup, ReplayMap, ReplayReport,
};
use crate::shard::ShardSpec;
use std::cell::Cell;
use std::fmt;
use std::path::PathBuf;
#[cfg(unix)]
use std::sync::atomic::AtomicI32;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// How a run should be made durable. The default is fully inert.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Journal file to stream completed points to (`--journal PATH`).
    pub journal: Option<PathBuf>,
    /// Replay the journal before running, re-evaluating only missing
    /// points (`--resume`; requires `journal`).
    pub resume: bool,
    /// Per-point watchdog deadline (`--timeout-ms`).
    pub timeout: Option<Duration>,
    /// Retry attempts for failed points (`--retries N`; 0 = no
    /// retries).
    pub retries: u32,
    /// Restrict every sweep to this shard's index-range lease
    /// (`--shard I/N`). Out-of-lease points are skipped without
    /// evaluation or journaling and reported in
    /// `SweepStats::points_skipped`.
    pub shard: Option<ShardSpec>,
}

/// Errors raised while activating a durability configuration.
#[derive(Debug)]
pub enum DurabilityError {
    /// `resume` was requested without a journal path.
    ResumeWithoutJournal,
    /// `resume` was requested but the journal file does not exist.
    JournalMissing(PathBuf),
    /// The journal could not be opened, read, or replayed.
    Journal(JournalError),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::ResumeWithoutJournal => {
                write!(f, "--resume requires --journal PATH (there is no journal to replay)")
            }
            DurabilityError::JournalMissing(path) => {
                write!(f, "cannot resume: journal {} does not exist", path.display())
            }
            DurabilityError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Journal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for DurabilityError {
    fn from(e: JournalError) -> Self {
        DurabilityError::Journal(e)
    }
}

/// The live durability state sweeps consult.
#[derive(Debug)]
pub(crate) struct DurabilityContext {
    writer: Option<Mutex<JournalWriter>>,
    /// Set after the first journal write failure: journaling degrades
    /// to a one-time warning, never a run abort (the run's *results*
    /// are unaffected; only resumability is lost).
    journal_broken: AtomicBool,
    replay: ReplayMap,
    timeout: Option<Duration>,
    retries: u32,
    shard: Option<ShardSpec>,
    sweep_seq: AtomicU64,
}

impl DurabilityContext {
    /// Claims the next sweep sequence number. Sweeps run in a
    /// deterministic order for a given command line, so sequence
    /// numbers line up between an interrupted run and its resume.
    pub(crate) fn next_sweep_seq(&self) -> u64 {
        self.sweep_seq.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    pub(crate) fn retries(&self) -> u32 {
        self.retries
    }

    /// The shard lease restricting every sweep, if this process is a
    /// shard worker.
    pub(crate) fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    pub(crate) fn lookup(
        &self,
        sweep_seq: u64,
        index: usize,
        fingerprint: u64,
    ) -> ReplayLookup<'_> {
        self.replay.lookup(sweep_seq, index, fingerprint)
    }

    /// Whether appends currently reach the journal.
    pub(crate) fn journaling(&self) -> bool {
        self.writer.is_some() && !self.journal_broken.load(Ordering::Relaxed)
    }

    /// Appends one completed point. Write failures disable journaling
    /// for the rest of the run with a single stderr warning. A planned
    /// `enospc@i` / `eio@i` disk fault for this record's submission
    /// index fails the append with a synthesized I/O error, exercising
    /// exactly this degradation path.
    pub(crate) fn append(&self, record: &JournalRecord) {
        if self.journal_broken.load(Ordering::Relaxed) {
            return;
        }
        let Some(writer) = &self.writer else { return };
        let mut writer = writer.lock().unwrap_or_else(PoisonError::into_inner);
        let injected = crate::faultinject::current_plan()
            .and_then(|plan| plan.fault_at(record.index))
            .and_then(crate::faultinject::Fault::disk_error);
        let outcome = match injected {
            Some(e) => Err(JournalError::Io(e)),
            // ucore-lint: allow(lock-discipline): the writer mutex exists to serialize exactly this append+fsync; contenders queue behind the disk write by design (§11)
            None => writer.append(record),
        };
        if let Err(e) = outcome {
            self.journal_broken.store(true, Ordering::Relaxed);
            crate::obs::metrics().journal_write_errors.inc();
            eprintln!(
                "warning: run journal {} disabled after write failure: {e}",
                writer.path().display()
            );
        } else {
            crate::obs::metrics().journal_appends.inc();
        }
    }

    /// Fsyncs the journal (end of a sweep, or right before a deliberate
    /// crash in the fault-injection harness).
    pub(crate) fn sync(&self) {
        if let Some(writer) = &self.writer {
            let _ = writer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .sync();
            crate::obs::metrics().journal_syncs.inc();
        }
    }
}

static ACTIVE: RwLock<Option<Arc<DurabilityContext>>> = RwLock::new(None);

/// Deactivates durability when dropped, fsyncing the journal first.
#[derive(Debug)]
pub struct DurabilityGuard {
    _private: (),
}

impl Drop for DurabilityGuard {
    fn drop(&mut self) {
        let ctx = ACTIVE
            .write()
            .map(|mut slot| slot.take())
            .unwrap_or_else(|e| e.into_inner().take());
        if let Some(ctx) = ctx {
            ctx.sync();
        }
        publish_journal_fd(None);
    }
}

/// The active journal's raw file descriptor, published for
/// async-signal-safe access. `-1` means no journal is active.
#[cfg(unix)]
static ACTIVE_JOURNAL_FD: AtomicI32 = AtomicI32::new(-1);

/// Publishes (or clears, on `None`) the active journal's descriptor.
#[cfg(unix)]
fn publish_journal_fd(writer: Option<&JournalWriter>) {
    ACTIVE_JOURNAL_FD.store(writer.map_or(-1, JournalWriter::raw_fd), Ordering::SeqCst);
}

#[cfg(not(unix))]
fn publish_journal_fd(_writer: Option<&JournalWriter>) {}

/// The active journal's raw file descriptor, or `-1` when no journal
/// is active. Safe to call from a signal handler (one atomic load):
/// `repro`'s SIGTERM/SIGINT handlers `fsync(2)` this descriptor so an
/// interrupted worker's journal tail is durable and the run is always
/// resumable.
#[cfg(unix)]
pub fn active_journal_fd() -> i32 {
    ACTIVE_JOURNAL_FD.load(Ordering::SeqCst)
}

/// Installs a durability configuration for every sweep in the process
/// until the returned guard is dropped. When `config.resume` is set the
/// journal is replayed first and the [`ReplayReport`] describes what
/// was restored (including whether a torn final record was skipped).
///
/// # Errors
///
/// [`DurabilityError::ResumeWithoutJournal`] when `resume` is set with
/// no journal path, [`DurabilityError::JournalMissing`] when the
/// journal to resume from does not exist, and
/// [`DurabilityError::Journal`] for I/O or corruption while replaying
/// or opening the journal.
pub fn activate(
    config: DurabilityConfig,
) -> Result<(DurabilityGuard, ReplayReport), DurabilityError> {
    let (replay, report) = if config.resume {
        let path = config
            .journal
            .as_deref()
            .ok_or(DurabilityError::ResumeWithoutJournal)?;
        if !path.exists() {
            return Err(DurabilityError::JournalMissing(path.to_path_buf()));
        }
        journal::replay(path)?
    } else {
        (ReplayMap::empty(), ReplayReport::default())
    };
    let writer = match &config.journal {
        Some(path) if config.resume => Some(JournalWriter::append_to(path)?),
        Some(path) => Some(JournalWriter::create(path)?),
        None => None,
    };
    publish_journal_fd(writer.as_ref());
    let ctx = DurabilityContext {
        writer: writer.map(Mutex::new),
        journal_broken: AtomicBool::new(false),
        replay,
        timeout: config.timeout,
        retries: config.retries,
        shard: config.shard,
        sweep_seq: AtomicU64::new(0),
    };
    match ACTIVE.write() {
        Ok(mut slot) => *slot = Some(Arc::new(ctx)),
        Err(e) => *e.into_inner() = Some(Arc::new(ctx)),
    }
    Ok((DurabilityGuard { _private: () }, report))
}

/// The active durability context, if any.
pub(crate) fn current() -> Option<Arc<DurabilityContext>> {
    ACTIVE
        .read()
        .ok()
        .and_then(|slot| slot.as_ref().map(Arc::clone))
}

// ---------------------------------------------------------------------
// Process-wide durability counters
// ---------------------------------------------------------------------

/// Process-wide durability counters (surfaced by `repro --stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityTotals {
    /// Points answered from the replayed journal instead of
    /// re-evaluation.
    pub journal_hits: u64,
    /// Journaled records ignored because their fingerprint did not
    /// match the live point (a journal from a different grid).
    pub journal_stale: u64,
    /// Retry attempts consumed by *this* process (replayed retry
    /// counts are restored into sweep health but not re-counted here).
    pub retries: u64,
}

/// A snapshot of the process-wide durability counters, read from the
/// [`ucore_obs`] registry (`journal.hits` / `journal.stale` /
/// `points.retries`).
pub fn durability_totals() -> DurabilityTotals {
    let m = crate::obs::metrics();
    DurabilityTotals {
        journal_hits: m.journal_hits.get(),
        journal_stale: m.journal_stale.get(),
        retries: m.retries.get(),
    }
}

pub(crate) fn note_journal_hits(n: u64) {
    crate::obs::metrics().journal_hits.add(n);
}

pub(crate) fn note_journal_stale(n: u64) {
    crate::obs::metrics().journal_stale.add(n);
}

pub(crate) fn note_retries(n: u64) {
    crate::obs::metrics().retries.add(n);
}

// ---------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------

/// First-retry base delay, milliseconds.
pub const BACKOFF_BASE_MS: u64 = 2;
/// Ceiling on the exponential raw delay, milliseconds.
pub const BACKOFF_CAP_MS: u64 = 64;

/// The delay before retry number `attempt` (0-based) of the point at
/// submission index `index`: exponential in the attempt
/// (`BACKOFF_BASE_MS << attempt`, capped at [`BACKOFF_CAP_MS`]) with
/// jitter in the upper half of the window. The jitter is *derived*, not
/// random — an FNV-1a hash of `(index, attempt)` — so the exact same
/// point retries after the exact same delay at any thread count, on any
/// run.
pub fn backoff_delay(index: usize, attempt: u32) -> Duration {
    let raw = BACKOFF_BASE_MS
        .checked_shl(attempt.min(16))
        .unwrap_or(u64::MAX)
        .min(BACKOFF_CAP_MS);
    let mut key = [0u8; 12];
    key[..8].copy_from_slice(&(index as u64).to_le_bytes());
    key[8..].copy_from_slice(&attempt.to_le_bytes());
    let jitter = journal::fnv1a64(&key) % (raw / 2).max(1);
    Duration::from_millis(raw / 2 + jitter)
}

// ---------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------

thread_local! {
    /// The deadline armed for the evaluation currently running on this
    /// thread, if any: (start instant, budget).
    static WATCHDOG: Cell<Option<(Instant, Duration)>> = const { Cell::new(None) };
}

/// Arms the per-point watchdog for the evaluation about to run on this
/// thread.
pub(crate) fn arm_watchdog(budget: Duration) {
    WATCHDOG.with(|w| w.set(Some((Instant::now(), budget))));
}

/// Disarms the watchdog after an evaluation settles.
pub(crate) fn disarm_watchdog() {
    WATCHDOG.with(|w| w.set(None));
}

/// The armed deadline on this thread, if any.
pub(crate) fn watchdog_state() -> Option<(Instant, Duration)> {
    WATCHDOG.with(Cell::get)
}

/// The deterministic diagnostic a timed-out point fails with.
pub(crate) fn timeout_message(index: usize, budget: Duration) -> String {
    format!(
        "watchdog timeout: point {index} exceeded its {} ms deadline",
        budget.as_millis()
    )
}

/// Cooperative watchdog checkpoint.
///
/// Long-running evaluation code calls this at loop boundaries; when the
/// current thread's armed deadline has expired it panics with a
/// deterministic message, which the sweep's containment boundary
/// catches and converts to `Failed{timeout}`. Outside an armed
/// evaluation (the common case — sequential engine paths, tests) it is
/// a no-op costing one thread-local read.
///
/// The checkpoint also honors a *request* deadline (see
/// [`arm_request_deadline`]): a serving worker past its per-request
/// budget trips here with a distinct message, so every remaining point
/// of an over-budget request fails fast instead of wedging the worker.
pub fn watchdog_checkpoint() {
    if let Some((start, budget)) = watchdog_state() {
        if start.elapsed() >= budget {
            // ucore-lint: allow(panic-reachability): the watchdog's panic IS the containment signal; the sweep boundary catches it and converts it to Failed{timeout}
            panic!(
                "watchdog deadline exceeded ({} ms budget) at cooperative checkpoint",
                budget.as_millis()
            );
        }
    }
    if let Some((start, budget)) = request_deadline_state() {
        if start.elapsed() >= budget {
            // ucore-lint: allow(panic-reachability): the request-deadline panic is the same containment signal as the watchdog's; the sweep boundary converts it to a Failed outcome
            panic!(
                "request deadline exceeded ({} ms budget) at cooperative checkpoint",
                budget.as_millis()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Per-request deadlines (serving)
// ---------------------------------------------------------------------

thread_local! {
    /// The deadline armed for the *request* currently being served on
    /// this thread, if any: (start instant, budget). Kept separate from
    /// [`WATCHDOG`] because the sweep disarms the per-point watchdog
    /// after every evaluation, while a request deadline must outlive
    /// every point of the request.
    static REQUEST_DEADLINE: Cell<Option<(Instant, Duration)>> =
        const { Cell::new(None) };
}

/// Disarms the request deadline (restoring any enclosing one) on drop.
#[derive(Debug)]
pub struct RequestDeadlineGuard {
    previous: Option<(Instant, Duration)>,
}

impl Drop for RequestDeadlineGuard {
    fn drop(&mut self) {
        REQUEST_DEADLINE.with(|d| d.set(self.previous.take()));
    }
}

/// Arms a per-request deadline on the current thread.
///
/// While the returned guard lives, [`watchdog_checkpoint`] panics with
/// a deterministic `request deadline exceeded` message once `budget`
/// has elapsed — inside a sweep that panic is contained per point, so
/// an over-budget request degrades to fast `Failed` outcomes instead of
/// hanging. The deadline is thread-local: a serving worker that runs
/// its sweeps on the same thread (`UCORE_SWEEP_THREADS=1`) covers the
/// whole request.
#[must_use]
pub fn arm_request_deadline(budget: Duration) -> RequestDeadlineGuard {
    let previous =
        REQUEST_DEADLINE.with(|d| d.replace(Some((Instant::now(), budget))));
    RequestDeadlineGuard { previous }
}

/// The armed request deadline on this thread, if any.
fn request_deadline_state() -> Option<(Instant, Duration)> {
    REQUEST_DEADLINE.with(Cell::get)
}

/// Whether the current thread's armed request deadline has expired.
/// `false` when no deadline is armed.
pub fn request_deadline_expired() -> bool {
    request_deadline_state().is_some_and(|(start, budget)| start.elapsed() >= budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_windowed() {
        for attempt in 0..8u32 {
            let raw = (BACKOFF_BASE_MS << attempt.min(16)).min(BACKOFF_CAP_MS);
            for index in [0usize, 3, 17, 4096] {
                let d = backoff_delay(index, attempt);
                assert_eq!(d, backoff_delay(index, attempt), "reproducible");
                let ms = d.as_millis() as u64;
                assert!(ms >= raw / 2 && ms < raw.max(2), "attempt {attempt} index {index}: {ms}ms not in [{}, {raw})", raw / 2);
            }
        }
        // Jitter actually varies across indices.
        let distinct: std::collections::HashSet<_> =
            (0..64usize).map(|i| backoff_delay(i, 5)).collect();
        assert!(distinct.len() > 1, "jitter must separate indices");
    }

    #[test]
    fn backoff_never_overflows_at_extreme_attempts() {
        let d = backoff_delay(usize::MAX, u32::MAX);
        assert!(d.as_millis() as u64 <= BACKOFF_CAP_MS);
    }

    #[test]
    fn watchdog_is_inert_when_unarmed() {
        disarm_watchdog();
        watchdog_checkpoint(); // must not panic
        assert!(watchdog_state().is_none());
    }

    #[test]
    fn watchdog_trips_after_the_budget() {
        arm_watchdog(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        let caught = std::panic::catch_unwind(watchdog_checkpoint);
        disarm_watchdog();
        let err = caught.expect_err("expired deadline must trip");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("watchdog deadline exceeded"), "{msg}");
    }

    #[test]
    fn request_deadline_trips_the_checkpoint_with_a_distinct_message() {
        let guard = arm_request_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(request_deadline_expired());
        let caught = std::panic::catch_unwind(watchdog_checkpoint);
        drop(guard);
        let err = caught.expect_err("expired request deadline must trip");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("request deadline exceeded"), "{msg}");
        // Disarmed after the guard drops: the checkpoint is inert again.
        assert!(!request_deadline_expired());
        watchdog_checkpoint();
    }

    #[test]
    fn request_deadline_guard_restores_the_enclosing_deadline() {
        let outer = arm_request_deadline(Duration::from_secs(3600));
        {
            let _inner = arm_request_deadline(Duration::from_millis(1));
            std::thread::sleep(Duration::from_millis(5));
            assert!(request_deadline_expired());
        }
        // Back on the (far-future) outer deadline.
        assert!(!request_deadline_expired());
        drop(outer);
    }

    #[test]
    fn resume_without_journal_is_a_typed_error() {
        let err = activate(DurabilityConfig { resume: true, ..Default::default() })
            .expect_err("resume without journal must fail");
        assert!(matches!(err, DurabilityError::ResumeWithoutJournal));
        assert!(err.to_string().contains("--resume requires --journal"), "{err}");
    }

    #[test]
    fn resume_from_a_missing_journal_is_a_typed_error() {
        let path = std::env::temp_dir().join(format!(
            "ucore-durability-missing-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let err = activate(DurabilityConfig {
            journal: Some(path.clone()),
            resume: true,
            ..Default::default()
        })
        .expect_err("missing journal must fail");
        assert!(matches!(err, DurabilityError::JournalMissing(_)));
        assert!(err.to_string().contains("does not exist"), "{err}");
    }
}
