//! The parallel design-space sweep engine.
//!
//! A projection figure is a large batch of independent design-point
//! evaluations: every `(design, node, f)` cell of every panel runs the
//! same pure `r` sweep under its own budgets. This module fans such a
//! batch over scoped worker threads while keeping the output
//! **deterministic**: results are returned in the exact order the
//! [`SweepPoint`]s were submitted, and each point's value is computed by
//! the same code path the sequential engine uses, so a parallel sweep is
//! bit-identical to a sequential one regardless of thread count or
//! scheduling.
//!
//! # Determinism
//!
//! Two properties make this safe to parallelize:
//!
//! 1. **Purity** — evaluating a point reads only the point itself and
//!    the engine's immutable scenario/Table 5 state. The shared
//!    [`EvalCache`](ucore_core::EvalCache) memoizes `Result`s of a pure
//!    function keyed on every input, so a cache hit returns exactly what
//!    the evaluation would have computed.
//! 2. **Order restoration** — workers pull indices from an atomic
//!    counter and tag each outcome with its index; the engine merges the
//!    tagged outcomes back into submission slots before returning.
//!    Thread interleaving affects wall time only, never the result
//!    vector.
//!
//! # Fault containment
//!
//! Every point evaluates inside [`std::panic::catch_unwind`]: a panic —
//! a model bug on a pathological corner of the design space, or a fault
//! injected by [`faultinject`](crate::faultinject) — degrades that one
//! point to [`Outcome::Failed`] instead of aborting the sweep. The
//! containment guarantees are:
//!
//! * a fault at point *k* produces exactly one `Failed` outcome, at
//!   index *k*;
//! * every other outcome is bit-identical to an uninjected run, at any
//!   thread count;
//! * the shared memoization cache is never polluted by a failed point
//!   (a contained panic happens *before* the cache insert; an injected
//!   cache error bypasses the cache entirely).
//!
//! Failed points are counted in [`SweepStats`], surfaced in figure
//! exports, and policed by `repro --max-failures` (default 0: any
//! failure fails the run).
//!
//! # Observability
//!
//! Every sweep returns [`SweepStats`] alongside its results: points
//! evaluated, outcome counts (ok / infeasible / failed), threads used,
//! cache hit/miss deltas, and the wall time of the evaluation phase.
//! The `repro --stats` flag surfaces the global totals after rendering.

use crate::durability::{self, DurabilityContext};
use crate::engine::{DesignId, ProjectionEngine};
use crate::faultinject::{self, Fault, FaultPlan};
use crate::journal::{self, JournalRecord, ReplayLookup};
use crate::obs;
use crate::results::NodePoint;
use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, Once, PoisonError};
use std::time::{Duration, Instant};
use ucore_calibrate::WorkloadColumn;
use ucore_core::{Budgets, ParallelFraction};
use ucore_itrs::NodeParams;

/// One unit of sweep work: a fully specified design-point evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The chip design under evaluation.
    pub design: DesignId,
    /// The workload column supplying the U-core calibration.
    pub column: WorkloadColumn,
    /// The roadmap node supplying the physical budgets.
    pub node: NodeParams,
    /// The model budgets (already converted to BCE units, and already
    /// widened if the point is bandwidth-exempt).
    pub budgets: Budgets,
    /// The workload's parallel fraction.
    pub f: ParallelFraction,
}

/// How one design-point evaluation ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A feasible optimum was found.
    Feasible(NodePoint),
    /// No feasible design exists at this cell (an *expected*, typed
    /// outcome under tight budgets — the sequential engine omits such
    /// nodes from its series).
    Infeasible,
    /// The evaluation failed: it panicked, or a fault was injected. The
    /// failure is contained to this point; the rest of the sweep is
    /// unaffected.
    Failed {
        /// The panic payload or injected-fault diagnostic.
        panic_msg: String,
    },
}

impl Outcome {
    /// The evaluated node point, when feasible.
    pub fn node_point(&self) -> Option<NodePoint> {
        match self {
            Outcome::Feasible(p) => Some(*p),
            _ => None,
        }
    }

    /// Whether this point failed (panicked or was fault-injected).
    pub fn is_failed(&self) -> bool {
        matches!(self, Outcome::Failed { .. })
    }

    /// Whether this point was infeasible under its budgets.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, Outcome::Infeasible)
    }

    /// The failure diagnostic, when failed.
    pub fn failure_message(&self) -> Option<&str> {
        match self {
            Outcome::Failed { panic_msg } => Some(panic_msg),
            _ => None,
        }
    }
}

/// The outcome of one [`SweepPoint`], tagged with its submission index.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Position of the point in the submitted batch.
    pub index: usize,
    /// The point that was evaluated.
    pub point: SweepPoint,
    /// How the evaluation ended.
    pub outcome: Outcome,
}

/// How a sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Worker thread count. `None` means the available parallelism of
    /// the machine (or the `UCORE_SWEEP_THREADS` environment variable
    /// when set). `Some(1)` runs fully sequentially on the caller's
    /// thread.
    pub threads: Option<usize>,
    /// Whether evaluations go through the engine's memoization cache.
    /// Disable for benchmarking the uncached path; results are identical
    /// either way.
    pub use_cache: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { threads: None, use_cache: true }
    }
}

impl SweepConfig {
    /// A sequential, cache-enabled configuration.
    pub fn sequential() -> Self {
        SweepConfig { threads: Some(1), use_cache: true }
    }

    /// The effective worker count for a batch of `jobs` points.
    fn effective_threads(&self, jobs: usize) -> usize {
        let requested = self.threads.or_else(env_thread_override).unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
        requested.max(1).min(jobs.max(1))
    }
}

fn env_thread_override() -> Option<usize> {
    std::env::var("UCORE_SWEEP_THREADS")
        .ok()?
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Counters from one sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Points in the batch (evaluated or answered from cache).
    pub points: usize,
    /// Points that produced a feasible optimum.
    pub points_ok: usize,
    /// Points with no feasible design under their budgets.
    pub points_infeasible: usize,
    /// Points whose evaluation failed (contained panic or injected
    /// fault).
    pub points_failed: usize,
    /// Points outside this process's shard lease, skipped without
    /// evaluation or journaling. Always 0 unless a `--shard I/N` lease
    /// is active; skipped points are excluded from
    /// `points_infeasible`.
    pub points_skipped: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Cache hits during this sweep.
    pub cache_hits: u64,
    /// Cache misses (optimizer runs) during this sweep. Zero when the
    /// sweep ran with the cache disabled.
    pub cache_misses: u64,
    /// Points answered by replaying a run journal (`--resume`) instead
    /// of re-evaluating.
    pub journal_hits: u64,
    /// Retry attempts consumed by this sweep's points. Replayed points
    /// contribute the retry count recorded in the journal, so a
    /// resumed run's health accounting matches the uninterrupted run
    /// exactly.
    pub retries: u64,
    /// Wall time of the evaluation phase.
    pub wall: Duration,
}

/// Process-wide outcome totals across every sweep so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeTotals {
    /// Feasible points.
    pub ok: u64,
    /// Infeasible points.
    pub infeasible: u64,
    /// Failed (contained) points.
    pub failed: u64,
}

/// The process-wide outcome totals (the `repro --stats` /
/// `--max-failures` counters) — since ISSUE 5 a typed view of the
/// `points.ok` / `points.infeasible` / `points.failed` registry
/// counters (see [`crate::obs`] for the metric-name contract).
pub fn outcome_totals() -> OutcomeTotals {
    let m = obs::metrics();
    OutcomeTotals {
        ok: m.ok.get(),
        infeasible: m.infeasible.get(),
        failed: m.failed.get(),
    }
}

/// A retained failure diagnostic (the first
/// [`MAX_RETAINED_FAILURES`] per process are kept for reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureDiagnostic {
    /// Submission index of the failed point within its sweep.
    pub index: usize,
    /// The contained panic payload or injected-fault message.
    pub panic_msg: String,
}

/// Retention cap for per-process failure diagnostics: enough to
/// diagnose, bounded so a pathological sweep cannot balloon memory.
pub const MAX_RETAINED_FAILURES: usize = 64;

static FAILURE_LOG: Mutex<Vec<FailureDiagnostic>> = Mutex::new(Vec::new());

fn record_failures<'a>(results: impl Iterator<Item = (usize, &'a Outcome)>) {
    let m = obs::metrics();
    let mut log = FAILURE_LOG
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    for (index, outcome) in results {
        if let Outcome::Failed { panic_msg } = outcome {
            if log.len() >= MAX_RETAINED_FAILURES {
                // Keep counting what the bounded log cannot hold, so a
                // flood of failures is visible (`--stats`), not silent.
                m.failures_dropped.inc();
            } else {
                log.push(FailureDiagnostic { index, panic_msg: panic_msg.clone() });
                m.failures_retained.inc();
            }
        }
    }
}

/// Failure diagnostics discarded because the bounded log
/// ([`MAX_RETAINED_FAILURES`]) was already full (the
/// `failures.dropped` registry counter).
pub fn failures_dropped() -> u64 {
    obs::metrics().failures_dropped.get()
}

/// A snapshot of the retained per-process failure diagnostics.
pub fn failure_diagnostics() -> Vec<FailureDiagnostic> {
    FAILURE_LOG
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Evaluates a batch of points, fanning over worker threads.
///
/// Results come back in submission order with their indices, so callers
/// can reassemble figures deterministically. With `config.threads ==
/// Some(1)` the batch runs on the calling thread; the produced results
/// are identical in either mode.
///
/// Evaluation is fault-contained: a panicking point (or one poisoned by
/// the active [`faultinject`] plan) yields [`Outcome::Failed`] for that
/// index while every other point completes normally.
pub fn sweep(
    engine: &ProjectionEngine,
    points: Vec<SweepPoint>,
    config: &SweepConfig,
) -> (Vec<SweepResult>, SweepStats) {
    let threads = config.effective_threads(points.len());
    let plan = faultinject::current_plan();
    let plan = plan.as_deref();
    let dur = durability::current();
    let dur = dur.as_deref();
    // Sweeps execute in a deterministic order for a given command, so
    // the sequence number lines a resumed run's sweeps up with the
    // journaled ones.
    let sweep_seq = dur.map(|d| d.next_sweep_seq()).unwrap_or(0);
    let _span = ucore_obs::span!("project.sweep", sweep_seq, points.len());
    // A shard worker owns only its lease of the batch; everything else
    // is skipped before evaluation, journaling, or fault injection.
    let lease = dur.and_then(|d| d.shard()).map(|spec| spec.lease(points.len()));
    let lease = lease.as_ref();
    let cache_before = engine.cache().stats();
    // ucore-lint: allow(determinism): wall-clock feeds only the SweepStats elapsed field, which is observability metadata excluded from output bytes
    let start = Instant::now();

    let resolutions: Vec<PointResolution> = if threads <= 1 || points.len() <= 1 {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                resolve_point(engine, p, i, config.use_cache, plan, dur, sweep_seq, lease)
            })
            .collect()
    } else {
        parallel_resolutions(
            engine, &points, threads, config.use_cache, plan, dur, sweep_seq, lease,
        )
    };
    // One batch-final fsync bounds journal loss to the in-flight tail.
    if let Some(d) = dur {
        d.sync();
    }

    let wall = start.elapsed();
    let cache_after = engine.cache().stats();
    let points_ok = resolutions
        .iter()
        .filter(|r| r.outcome.node_point().is_some())
        .count();
    let points_skipped = resolutions.iter().filter(|r| r.skipped).count();
    let points_infeasible = resolutions
        .iter()
        .filter(|r| r.outcome.is_infeasible() && !r.skipped)
        .count();
    let points_failed = resolutions.iter().filter(|r| r.outcome.is_failed()).count();
    let journal_hits = resolutions.iter().filter(|r| r.replayed).count() as u64;
    let retries: u64 = resolutions.iter().map(|r| u64::from(r.retries)).sum();
    let m = obs::metrics();
    m.sweep_batches.inc();
    m.submitted.add(points.len() as u64);
    m.ok.add(points_ok as u64);
    m.infeasible.add(points_infeasible as u64);
    m.failed.add(points_failed as u64);
    if points_skipped > 0 {
        m.shard_points_skipped.add(points_skipped as u64);
    }
    // Feasible speedups are model outputs, so this histogram is part of
    // the deterministic snapshot (bucket counts are order-independent).
    for speedup in resolutions
        .iter()
        .filter_map(|r| r.outcome.node_point().map(|p| p.speedup))
    {
        m.speedup.observe(speedup);
    }
    durability::note_journal_hits(journal_hits);
    if points_failed > 0 {
        record_failures(
            resolutions.iter().enumerate().map(|(i, r)| (i, &r.outcome)),
        );
    }
    let stats = SweepStats {
        points: points.len(),
        points_ok,
        points_infeasible,
        points_failed,
        points_skipped,
        threads,
        cache_hits: cache_after.hits - cache_before.hits,
        cache_misses: cache_after.misses - cache_before.misses,
        journal_hits,
        retries,
        wall,
    };
    record_phase(stats);
    let results = points
        .into_iter()
        .zip(resolutions)
        .enumerate()
        .map(|(index, (point, resolution))| SweepResult {
            index,
            point,
            outcome: resolution.outcome,
        })
        .collect();
    (results, stats)
}

/// Every completed sweep of the process, in completion order — the
/// "wall time per phase" log behind `repro --stats`.
static PHASE_LOG: Mutex<Vec<SweepStats>> = Mutex::new(Vec::new());

fn record_phase(stats: SweepStats) {
    PHASE_LOG
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(stats);
}

/// Drains and returns the per-sweep phase log accumulated so far.
pub fn drain_phase_log() -> Vec<SweepStats> {
    std::mem::take(
        &mut *PHASE_LOG.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// How one point was resolved: the outcome, plus the durability
/// accounting the sweep folds into its stats.
#[derive(Debug, Clone)]
struct PointResolution {
    outcome: Outcome,
    /// Retry attempts consumed (journaled value when replayed).
    retries: u32,
    /// Whether the outcome came from the replayed journal.
    replayed: bool,
    /// Whether the point was outside this worker's shard lease and
    /// skipped without evaluation (its `Infeasible` outcome is a
    /// placeholder, not a model result).
    skipped: bool,
}

/// Resolves one point through the full durability pipeline:
///
/// 1. **Replay** — with a resumed journal active, a matching
///    `(sweep, index, fingerprint)` record answers the point without
///    re-evaluation (a journal hit). A record whose fingerprint does
///    not match the live point (stale journal) is ignored.
/// 2. **Kill fault** — `kill@i` aborts the process here, after an
///    fsync, modelling a `kill -9` between two completed points.
/// 3. **Evaluate + retry** — the contained evaluation runs; a `Failed`
///    outcome is retried up to the configured budget with
///    deterministic backoff ([`durability::backoff_delay`]).
/// 4. **Journal** — the settled outcome (and its retry count) is
///    appended to the run journal.
///
/// With a shard `lease` active, an out-of-lease point short-circuits
/// *before* any of the above: it is not evaluated, not journaled, and
/// no injected fault fires for it — only the worker that owns a point
/// can crash on it.
#[allow(clippy::too_many_arguments)]
fn resolve_point(
    engine: &ProjectionEngine,
    point: &SweepPoint,
    index: usize,
    use_cache: bool,
    plan: Option<&FaultPlan>,
    dur: Option<&DurabilityContext>,
    sweep_seq: u64,
    lease: Option<&Range<usize>>,
) -> PointResolution {
    if lease.is_some_and(|l| !l.contains(&index)) {
        return PointResolution {
            outcome: Outcome::Infeasible,
            retries: 0,
            replayed: false,
            skipped: true,
        };
    }
    let _span = ucore_obs::span!("engine.node_point", sweep_seq, index);
    let fingerprint = dur.map(|_| journal::point_fingerprint(point));
    if let (Some(d), Some(fp)) = (dur, fingerprint) {
        match d.lookup(sweep_seq, index, fp) {
            ReplayLookup::Hit(rec) => {
                return PointResolution {
                    outcome: rec.outcome.clone(),
                    retries: rec.retries,
                    replayed: true,
                    skipped: false,
                }
            }
            ReplayLookup::Stale => durability::note_journal_stale(1),
            ReplayLookup::Miss => {}
        }
    }
    if plan.and_then(|p| p.fault_at(index)) == Some(Fault::Kill) {
        // A deterministic crash for the durability suite: flush every
        // completed point, then die without unwinding — exactly what a
        // kill -9 between two points leaves behind.
        if let Some(d) = dur {
            d.sync();
        }
        std::process::abort();
    }
    let max_retries = dur.map(|d| d.retries()).unwrap_or(0);
    let timeout = dur.and_then(|d| d.timeout());
    let mut attempt: u32 = 0;
    // Wall time routed through the sanctioned obs clock: it feeds only
    // the `sweep.point_us` timing histogram, never output bytes.
    let eval_started_ns = ucore_obs::clock::wall_ns();
    let outcome = loop {
        let outcome = evaluate_contained(engine, point, index, use_cache, plan, attempt, timeout);
        if !outcome.is_failed() || attempt >= max_retries {
            break outcome;
        }
        std::thread::sleep(durability::backoff_delay(index, attempt));
        attempt += 1;
    };
    let elapsed_us = ucore_obs::clock::wall_ns().saturating_sub(eval_started_ns) / 1_000;
    obs::metrics().point_us.observe(elapsed_us as f64);
    if attempt > 0 {
        durability::note_retries(u64::from(attempt));
    }
    if let (Some(d), Some(fp)) = (dur, fingerprint) {
        if d.journaling() {
            d.append(&JournalRecord {
                sweep_seq,
                index,
                fingerprint: fp,
                retries: attempt,
                outcome: outcome.clone(),
            });
        }
    }
    PointResolution { outcome, retries: attempt, replayed: false, skipped: false }
}

/// How often the stall detector samples worker heartbeats, and how far
/// past the deadline a point must run before it is reported (the grace
/// leaves room for the cooperative checkpoint to fire first).
const STALL_DETECTOR_PERIOD: Duration = Duration::from_millis(10);
const STALL_DETECTOR_GRACE: Duration = Duration::from_millis(250);

/// Work-queue fan-out: workers claim indices from a shared atomic
/// counter, collect `(index, resolution)` pairs locally, and the merged
/// pairs are slotted back into submission order. A worker that dies
/// mid-batch (impossible while per-point containment holds, but the
/// join is defensive anyway) surfaces as `Failed` outcomes for the
/// points it never delivered — never as a whole-sweep abort.
///
/// When a watchdog deadline is configured, one extra *stall detector*
/// thread samples per-worker heartbeats and warns on stderr about any
/// point running well past its deadline. The detector is observability
/// only: results always come from the workers, so its scheduling can
/// never affect output bytes. It shuts down *promptly*: the sweep's
/// finish signal is a condvar notification, so the detector's join
/// never waits out a sampling period — a serving process can drain a
/// sweep without leaking (or stalling on) detector threads.
#[allow(clippy::too_many_arguments)]
fn parallel_resolutions(
    engine: &ProjectionEngine,
    points: &[SweepPoint],
    threads: usize,
    use_cache: bool,
    plan: Option<&FaultPlan>,
    dur: Option<&DurabilityContext>,
    sweep_seq: u64,
    lease: Option<&Range<usize>>,
) -> Vec<PointResolution> {
    let next = AtomicUsize::new(0);
    let signal = StallSignal::new();
    let heartbeats: Vec<Mutex<Option<(usize, Instant)>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();
    let scope_result = crossbeam::scope(|scope| {
        let detector = dur.and_then(|d| d.timeout()).map(|budget| {
            let signal = &signal;
            let heartbeats = &heartbeats;
            scope.spawn(move |_| {
                stall_detector(budget, STALL_DETECTOR_PERIOD, signal, heartbeats)
            })
        });
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let next = &next;
                let heartbeat = &heartbeats[w];
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(i) else {
                            break;
                        };
                        // ucore-lint: allow(determinism): the heartbeat timestamp is watchdog observability only and never reaches serialized output
                        let stamp = Instant::now();
                        *heartbeat.lock().unwrap_or_else(PoisonError::into_inner) =
                            Some((i, stamp));
                        local.push((
                            i,
                            resolve_point(
                                engine, point, i, use_cache, plan, dur, sweep_seq, lease,
                            ),
                        ));
                        *heartbeat.lock().unwrap_or_else(PoisonError::into_inner) = None;
                    }
                    local
                })
            })
            .collect();
        let mut tagged: Vec<(usize, PointResolution)> = Vec::with_capacity(points.len());
        let mut worker_panics: Vec<String> = Vec::new();
        for handle in handles {
            match handle.join() {
                Ok(local) => tagged.extend(local),
                Err(payload) => worker_panics.push(panic_message(payload.as_ref())),
            }
        }
        signal.finish();
        if let Some(detector) = detector {
            let _ = detector.join();
        }
        (tagged, worker_panics)
    });
    let (tagged, worker_panics) = match scope_result {
        Ok(collected) => collected,
        Err(payload) => (Vec::new(), vec![panic_message(payload.as_ref())]),
    };

    // Slot tagged resolutions into submission order; indices a dead
    // worker never delivered degrade to Failed.
    let mut slots: Vec<Option<PointResolution>> = vec![None; points.len()];
    for (i, resolution) in tagged {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(resolution);
        }
    }
    let worker_msg = if worker_panics.is_empty() {
        String::from("sweep worker terminated before delivering this point")
    } else {
        format!("sweep worker panicked: {}", worker_panics.join("; "))
    };
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| PointResolution {
                outcome: Outcome::Failed { panic_msg: worker_msg.clone() },
                retries: 0,
                replayed: false,
                skipped: false,
            })
        })
        .collect()
}

/// The sweep-finished signal the stall detector parks on. A condvar —
/// not a polled flag — so `finish()` wakes the detector mid-period and
/// its join is immediate rather than bounded by the sampling period
/// (the PR 3 detector slept out its period before noticing `done`,
/// which a draining server cannot afford).
struct StallSignal {
    done: Mutex<bool>,
    cv: Condvar,
}

impl StallSignal {
    fn new() -> Self {
        StallSignal { done: Mutex::new(false), cv: Condvar::new() }
    }

    /// Marks the sweep finished and wakes the detector immediately.
    fn finish(&self) {
        *self.done.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    /// Parks for up to `period` (or until [`StallSignal::finish`]);
    /// returns whether the sweep has finished.
    fn wait_finished(&self, period: Duration) -> bool {
        let guard = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        if *guard {
            return true;
        }
        let (guard, _timed_out) = self
            .cv
            .wait_timeout(guard, period)
            .unwrap_or_else(PoisonError::into_inner);
        *guard
    }
}

/// The stall-detector loop: samples worker heartbeats every `period`
/// until the sweep finishes, warning once per point that overstays its
/// deadline. Returns as soon as `signal` reports the sweep done.
fn stall_detector(
    budget: Duration,
    period: Duration,
    signal: &StallSignal,
    heartbeats: &[Mutex<Option<(usize, Instant)>>],
) {
    let mut warned: Vec<usize> = Vec::new();
    loop {
        if signal.wait_finished(period) {
            return;
        }
        for (worker, heartbeat) in heartbeats.iter().enumerate() {
            let sample = *heartbeat.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some((index, started)) = sample {
                if started.elapsed() > budget + STALL_DETECTOR_GRACE
                    && !warned.contains(&index)
                {
                    warned.push(index);
                    eprintln!(
                        "warning: stall detector: point {index} on worker {worker} is \
                         {} ms past its {} ms deadline; waiting for cooperative \
                         cancellation",
                        (started.elapsed() - budget).as_millis(),
                        budget.as_millis(),
                    );
                }
            }
        }
    }
}

/// Evaluates one point inside a panic boundary, applying any injected
/// fault first. Injected parameter faults route the poisoned scalar
/// through the model's ingress validation, so the typed rejection —
/// never a raw NaN — becomes the contained failure. The injected
/// cache-layer error returns before any cache access, so the shared
/// memo table cannot be polluted by it.
///
/// With a watchdog `timeout` configured the deadline is armed for the
/// duration of the evaluation: [`durability::watchdog_checkpoint`]
/// calls inside the engine convert an overrunning point into a
/// contained panic, and an injected stall fault is released with a
/// deterministic `Failed{timeout}` as soon as the budget expires.
fn evaluate_contained(
    engine: &ProjectionEngine,
    point: &SweepPoint,
    index: usize,
    use_cache: bool,
    plan: Option<&FaultPlan>,
    attempt: u32,
    timeout: Option<Duration>,
) -> Outcome {
    let fault = plan.and_then(|p| p.fault_for_attempt(index, attempt));
    match fault {
        Some(Fault::NanParam) => return injected_param_fault(index, f64::NAN),
        Some(Fault::InfParam) => return injected_param_fault(index, f64::INFINITY),
        Some(Fault::CacheError) => {
            return Outcome::Failed {
                panic_msg: format!(
                    "injected cache-layer error at point {index}: memo lookup failed"
                ),
            }
        }
        Some(Fault::Stall) => return stalled_point(index, timeout),
        // Kill is handled (and aborts) in `resolve_point` before any
        // evaluation; reaching it here would mean a caller bypassed the
        // durability pipeline, so honor the crash semantics anyway.
        Some(Fault::Kill) => std::process::abort(),
        // Disk faults fire at the journal append, not the evaluation:
        // the point itself computes normally.
        Some(Fault::DiskEnospc | Fault::DiskEio) => {}
        Some(Fault::Panic) | None => {}
    }
    if let Some(budget) = timeout {
        durability::arm_watchdog(budget);
    }
    install_quiet_panic_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if matches!(fault, Some(Fault::Panic)) {
            // ucore-lint: allow(panic-reachability): deliberate fault injection exercising the containment boundary that catches it two lines down
            panic!("injected panic at point {index}");
        }
        evaluate(engine, point, use_cache)
    }));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    durability::disarm_watchdog();
    match caught {
        Ok(Some(node_point)) => Outcome::Feasible(node_point),
        Ok(None) => Outcome::Infeasible,
        Err(payload) => Outcome::Failed { panic_msg: panic_message(payload.as_ref()) },
    }
}

/// Cap on an injected stall when no watchdog deadline is configured:
/// the stall still terminates (with a distinct diagnostic) instead of
/// hanging a run forever.
const UNWATCHED_STALL_CAP: Duration = Duration::from_secs(30);

/// An injected stall: the point hangs — sleeping in short slices, like
/// stuck evaluation code polling a dead resource — until the watchdog
/// budget expires and releases it as a deterministic `Failed{timeout}`.
fn stalled_point(index: usize, timeout: Option<Duration>) -> Outcome {
    // ucore-lint: allow(determinism): the injected stall's clock decides only *when* the deterministic timeout message is released, never its bytes
    let started = Instant::now();
    loop {
        match timeout {
            Some(budget) if started.elapsed() >= budget => {
                return Outcome::Failed {
                    panic_msg: durability::timeout_message(index, budget),
                }
            }
            None if started.elapsed() >= UNWATCHED_STALL_CAP => {
                return Outcome::Failed {
                    panic_msg: format!(
                        "injected stall at point {index} ran {} s with no watchdog \
                         deadline configured; releasing",
                        UNWATCHED_STALL_CAP.as_secs()
                    ),
                }
            }
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// A poisoned scalar pushed through ingress validation: the typed
/// `ModelError` it earns is the point's failure diagnostic.
fn injected_param_fault(index: usize, bad: f64) -> Outcome {
    let rejection = match ParallelFraction::new(bad) {
        Err(e) => e.to_string(),
        Ok(_) => String::from("ingress validation unexpectedly accepted it"),
    };
    Outcome::Failed {
        panic_msg: format!("injected {bad} parameter at point {index}: {rejection}"),
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

thread_local! {
    /// Set while a contained evaluation runs on this thread, so the
    /// process panic hook stays silent for panics we are about to catch.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once) a panic hook that swallows output for panics raised
/// inside a contained evaluation and delegates everything else to the
/// previous hook — contained faults are reported through [`Outcome`],
/// not stderr noise.
fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

fn evaluate(
    engine: &ProjectionEngine,
    point: &SweepPoint,
    use_cache: bool,
) -> Option<NodePoint> {
    // Portfolio designs have no single-U-core chip spec: they sweep the
    // Multi-Amdahl allocator instead of the cached optimizer.
    if let DesignId::Portfolio(design) = point.design {
        return engine.portfolio_point(design, &point.node, &point.budgets, point.f);
    }
    let spec = engine.chip_spec(point.design, point.column)?;
    engine.node_point(&spec, &point.node, &point.budgets, point.f, use_cache)
}

/// Builds the sweep batch for one figure: every `(f, design, node)`
/// combination in nesting order (`f` outermost, node innermost), with
/// budgets resolved per node and the bandwidth exemption applied.
///
/// # Errors
///
/// Propagates calibration errors from budget derivation and invalid
/// parallel fractions, exactly as the sequential figure builder does.
pub fn figure_points(
    engine: &ProjectionEngine,
    designs: &[DesignId],
    column: WorkloadColumn,
    f_values: &[f64],
) -> Result<Vec<SweepPoint>, crate::engine::ProjectionError> {
    let nodes = engine.scenario().roadmap().nodes().to_vec();
    let mut points = Vec::with_capacity(f_values.len() * designs.len() * nodes.len());
    for &fv in f_values {
        let f = ParallelFraction::new(fv).map_err(|e| {
            crate::engine::ProjectionError::Infeasible { reason: e.to_string() }
        })?;
        for &design in designs {
            let exempt = ProjectionEngine::bandwidth_exempt(design, column);
            for node in &nodes {
                let budgets = engine.budgets(node, column, exempt)?;
                points.push(SweepPoint { design, column, node: *node, budgets, f });
            }
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use std::sync::Arc;
    use ucore_core::EvalCache;

    fn engine() -> ProjectionEngine {
        // A private cache per test engine keeps stats assertions exact.
        ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
            .unwrap()
    }

    fn batch(e: &ProjectionEngine) -> Vec<SweepPoint> {
        let designs = DesignId::for_column(e.table5(), WorkloadColumn::Fft1024);
        figure_points(e, &designs, WorkloadColumn::Fft1024, &[0.5, 0.9, 0.99]).unwrap()
    }

    #[test]
    fn parallel_equals_sequential() {
        let e = engine();
        let points = batch(&e);
        let (seq, _) = sweep(&e, points.clone(), &SweepConfig {
            threads: Some(1),
            use_cache: false,
        });
        for threads in [2, 4, 7] {
            let (par, stats) = sweep(&e, points.clone(), &SweepConfig {
                threads: Some(threads),
                use_cache: false,
            });
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.index, p.index);
                assert_eq!(s.outcome, p.outcome, "index {}", s.index);
            }
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.cache_misses, 0, "cache was disabled");
        }
    }

    #[test]
    fn cached_equals_uncached() {
        let e = engine();
        let points = batch(&e);
        let (plain, _) =
            sweep(&e, points.clone(), &SweepConfig { threads: Some(1), use_cache: false });
        let (cached_cold, cold) =
            sweep(&e, points.clone(), &SweepConfig { threads: None, use_cache: true });
        let (cached_warm, warm) =
            sweep(&e, points, &SweepConfig { threads: None, use_cache: true });
        for (a, b) in plain.iter().zip(&cached_cold) {
            assert_eq!(a.outcome, b.outcome, "cold index {}", a.index);
        }
        for (a, b) in plain.iter().zip(&cached_warm) {
            assert_eq!(a.outcome, b.outcome, "warm index {}", a.index);
        }
        assert!(cold.cache_misses > 0);
        assert_eq!(warm.cache_misses, 0, "second pass is fully memoized");
        assert_eq!(warm.cache_hits as usize, warm.points);
    }

    #[test]
    fn results_are_in_submission_order() {
        let e = engine();
        let points = batch(&e);
        let n = points.len();
        let (results, stats) = sweep(&e, points, &SweepConfig::default());
        assert_eq!(results.len(), n);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert_eq!(stats.points, n);
        assert_eq!(stats.points_ok + stats.points_infeasible + stats.points_failed, n);
        assert_eq!(stats.points_failed, 0, "healthy sweeps have no failures");
        assert!(stats.threads >= 1);
    }

    #[test]
    fn figure_points_cover_the_grid_in_nesting_order() {
        let e = engine();
        let designs = DesignId::for_column(e.table5(), WorkloadColumn::Fft1024);
        let nodes = e.scenario().roadmap().nodes().len();
        let points =
            figure_points(&e, &designs, WorkloadColumn::Fft1024, &[0.5, 0.9]).unwrap();
        assert_eq!(points.len(), 2 * designs.len() * nodes);
        // f outermost, then design, then node.
        assert_eq!(points[0].f.get(), 0.5);
        assert_eq!(points[nodes].design, designs[1]);
        assert_eq!(points[designs.len() * nodes].f.get(), 0.9);
    }

    #[test]
    fn infeasible_cells_come_back_as_infeasible() {
        // The 10 W scenario starves power-hungry symmetric designs at
        // early nodes.
        let e = ProjectionEngine::with_cache(
            Scenario::s5_low_power(),
            Arc::new(EvalCache::new()),
        )
        .unwrap();
        let points =
            figure_points(&e, &[DesignId::SymCmp], WorkloadColumn::Fft1024, &[0.999])
                .unwrap();
        let (results, stats) = sweep(&e, points, &SweepConfig::default());
        assert!(stats.points_infeasible > 0, "10 W starves early nodes");
        assert_eq!(stats.points_failed, 0, "infeasible is not failed");
        // The sequential engine omits infeasible nodes; the sweep marks
        // them Infeasible. Both views must agree.
        let sequential = e
            .project(
                DesignId::SymCmp,
                WorkloadColumn::Fft1024,
                ParallelFraction::new(0.999).unwrap(),
            )
            .unwrap();
        let feasible: Vec<_> =
            results.iter().filter_map(|r| r.outcome.node_point()).collect();
        assert_eq!(feasible, sequential);
    }

    #[test]
    fn stall_detector_joins_promptly_on_the_finish_signal() {
        // Regression: the PR 3 detector slept out its full sampling
        // period before checking `done`, so with a long period a join
        // would hang. The condvar signal must wake it immediately.
        let signal = StallSignal::new();
        let heartbeats: Vec<Mutex<Option<(usize, Instant)>>> = vec![Mutex::new(None)];
        let started = Instant::now();
        std::thread::scope(|scope| {
            let detector = scope.spawn(|| {
                stall_detector(
                    Duration::from_millis(50),
                    Duration::from_secs(3600), // one wait would outlive the test
                    &signal,
                    &heartbeats,
                )
            });
            std::thread::sleep(Duration::from_millis(20));
            signal.finish();
            detector.join().unwrap();
        });
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "detector must join on the signal, not the period ({:?})",
            started.elapsed()
        );
    }

    #[test]
    fn stall_signal_already_finished_returns_without_parking() {
        let signal = StallSignal::new();
        signal.finish();
        let started = Instant::now();
        assert!(signal.wait_finished(Duration::from_secs(3600)));
        assert!(started.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn panic_message_extracts_both_payload_shapes() {
        let s: Box<dyn Any + Send> = Box::new("static str payload");
        assert_eq!(panic_message(s.as_ref()), "static str payload");
        let owned: Box<dyn Any + Send> = Box::new(String::from("owned payload"));
        assert_eq!(panic_message(owned.as_ref()), "owned payload");
        let other: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(other.as_ref()), "non-string panic payload");
    }
}
