//! The parallel design-space sweep engine.
//!
//! A projection figure is a large batch of independent design-point
//! evaluations: every `(design, node, f)` cell of every panel runs the
//! same pure `r` sweep under its own budgets. This module fans such a
//! batch over scoped worker threads while keeping the output
//! **deterministic**: results are returned in the exact order the
//! [`SweepPoint`]s were submitted, and each point's value is computed by
//! the same code path the sequential engine uses, so a parallel sweep is
//! bit-identical to a sequential one regardless of thread count or
//! scheduling.
//!
//! # Determinism
//!
//! Two properties make this safe to parallelize:
//!
//! 1. **Purity** — evaluating a point reads only the point itself and
//!    the engine's immutable scenario/Table 5 state. The shared
//!    [`EvalCache`](ucore_core::EvalCache) memoizes `Result`s of a pure
//!    function keyed on every input, so a cache hit returns exactly what
//!    the evaluation would have computed.
//! 2. **Order restoration** — workers pull indices from an atomic
//!    counter and tag each outcome with its index; the engine sorts the
//!    merged outcomes by index before returning. Thread interleaving
//!    affects wall time only, never the result vector.
//!
//! # Observability
//!
//! Every sweep returns [`SweepStats`] alongside its results: points
//! evaluated, threads used, cache hit/miss deltas, and the wall time of
//! the evaluation phase. The `repro --stats` flag surfaces the global
//! totals after rendering.

use crate::engine::{DesignId, ProjectionEngine};
use crate::results::NodePoint;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use ucore_calibrate::WorkloadColumn;
use ucore_core::{Budgets, ParallelFraction};
use ucore_itrs::NodeParams;

/// One unit of sweep work: a fully specified design-point evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The chip design under evaluation.
    pub design: DesignId,
    /// The workload column supplying the U-core calibration.
    pub column: WorkloadColumn,
    /// The roadmap node supplying the physical budgets.
    pub node: NodeParams,
    /// The model budgets (already converted to BCE units, and already
    /// widened if the point is bandwidth-exempt).
    pub budgets: Budgets,
    /// The workload's parallel fraction.
    pub f: ParallelFraction,
}

/// The outcome of one [`SweepPoint`], tagged with its submission index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepResult {
    /// Position of the point in the submitted batch.
    pub index: usize,
    /// The point that was evaluated.
    pub point: SweepPoint,
    /// The evaluated node point, or `None` when no feasible design
    /// exists at this cell (matching the sequential engine, which omits
    /// such nodes from its series).
    pub outcome: Option<NodePoint>,
}

/// How a sweep runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Worker thread count. `None` means the available parallelism of
    /// the machine (or the `UCORE_SWEEP_THREADS` environment variable
    /// when set). `Some(1)` runs fully sequentially on the caller's
    /// thread.
    pub threads: Option<usize>,
    /// Whether evaluations go through the engine's memoization cache.
    /// Disable for benchmarking the uncached path; results are identical
    /// either way.
    pub use_cache: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { threads: None, use_cache: true }
    }
}

impl SweepConfig {
    /// A sequential, cache-enabled configuration.
    pub fn sequential() -> Self {
        SweepConfig { threads: Some(1), use_cache: true }
    }

    /// The effective worker count for a batch of `jobs` points.
    fn effective_threads(&self, jobs: usize) -> usize {
        let requested = self.threads.or_else(env_thread_override).unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
        requested.max(1).min(jobs.max(1))
    }
}

fn env_thread_override() -> Option<usize> {
    std::env::var("UCORE_SWEEP_THREADS")
        .ok()?
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Counters from one sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Points in the batch (evaluated or answered from cache).
    pub points: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Cache hits during this sweep.
    pub cache_hits: u64,
    /// Cache misses (optimizer runs) during this sweep. Zero when the
    /// sweep ran with the cache disabled.
    pub cache_misses: u64,
    /// Wall time of the evaluation phase.
    pub wall: Duration,
}

/// Evaluates a batch of points, fanning over worker threads.
///
/// Results come back in submission order with their indices, so callers
/// can reassemble figures deterministically. With `config.threads ==
/// Some(1)` the batch runs on the calling thread; the produced results
/// are identical in either mode.
pub fn sweep(
    engine: &ProjectionEngine,
    points: Vec<SweepPoint>,
    config: &SweepConfig,
) -> (Vec<SweepResult>, SweepStats) {
    let threads = config.effective_threads(points.len());
    let cache_before = engine.cache().stats();
    let start = Instant::now();

    let outcomes: Vec<Option<NodePoint>> = if threads <= 1 || points.len() <= 1 {
        points.iter().map(|p| evaluate(engine, p, config.use_cache)).collect()
    } else {
        parallel_outcomes(engine, &points, threads, config.use_cache)
    };

    let wall = start.elapsed();
    let cache_after = engine.cache().stats();
    let stats = SweepStats {
        points: points.len(),
        threads,
        cache_hits: cache_after.hits - cache_before.hits,
        cache_misses: cache_after.misses - cache_before.misses,
        wall,
    };
    record_phase(stats);
    let results = points
        .into_iter()
        .zip(outcomes)
        .enumerate()
        .map(|(index, (point, outcome))| SweepResult { index, point, outcome })
        .collect();
    (results, stats)
}

/// Every completed sweep of the process, in completion order — the
/// "wall time per phase" log behind `repro --stats`.
static PHASE_LOG: Mutex<Vec<SweepStats>> = Mutex::new(Vec::new());

fn record_phase(stats: SweepStats) {
    PHASE_LOG
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(stats);
}

/// Drains and returns the per-sweep phase log accumulated so far.
pub fn drain_phase_log() -> Vec<SweepStats> {
    std::mem::take(
        &mut *PHASE_LOG.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// Work-queue fan-out: workers claim indices from a shared atomic
/// counter, collect `(index, outcome)` pairs locally, and the merged
/// pairs are sorted back into submission order.
fn parallel_outcomes(
    engine: &ProjectionEngine,
    points: &[SweepPoint],
    threads: usize,
    use_cache: bool,
) -> Vec<Option<NodePoint>> {
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, Option<NodePoint>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(i) else {
                            break;
                        };
                        local.push((i, evaluate(engine, point, use_cache)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope does not panic");
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, outcome)| outcome).collect()
}

fn evaluate(
    engine: &ProjectionEngine,
    point: &SweepPoint,
    use_cache: bool,
) -> Option<NodePoint> {
    let spec = engine.chip_spec(point.design, point.column)?;
    engine.node_point(&spec, &point.node, &point.budgets, point.f, use_cache)
}

/// Builds the sweep batch for one figure: every `(f, design, node)`
/// combination in nesting order (`f` outermost, node innermost), with
/// budgets resolved per node and the bandwidth exemption applied.
///
/// # Errors
///
/// Propagates calibration errors from budget derivation and invalid
/// parallel fractions, exactly as the sequential figure builder does.
pub fn figure_points(
    engine: &ProjectionEngine,
    designs: &[DesignId],
    column: WorkloadColumn,
    f_values: &[f64],
) -> Result<Vec<SweepPoint>, crate::engine::ProjectionError> {
    let nodes = engine.scenario().roadmap().nodes().to_vec();
    let mut points = Vec::with_capacity(f_values.len() * designs.len() * nodes.len());
    for &fv in f_values {
        let f = ParallelFraction::new(fv).map_err(|e| {
            crate::engine::ProjectionError::Infeasible { reason: e.to_string() }
        })?;
        for &design in designs {
            let exempt = ProjectionEngine::bandwidth_exempt(design, column);
            for node in &nodes {
                let budgets = engine.budgets(node, column, exempt)?;
                points.push(SweepPoint { design, column, node: *node, budgets, f });
            }
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use std::sync::Arc;
    use ucore_core::EvalCache;

    fn engine() -> ProjectionEngine {
        // A private cache per test engine keeps stats assertions exact.
        ProjectionEngine::with_cache(Scenario::baseline(), Arc::new(EvalCache::new()))
            .unwrap()
    }

    fn batch(e: &ProjectionEngine) -> Vec<SweepPoint> {
        let designs = DesignId::for_column(e.table5(), WorkloadColumn::Fft1024);
        figure_points(e, &designs, WorkloadColumn::Fft1024, &[0.5, 0.9, 0.99]).unwrap()
    }

    #[test]
    fn parallel_equals_sequential() {
        let e = engine();
        let points = batch(&e);
        let (seq, _) = sweep(&e, points.clone(), &SweepConfig {
            threads: Some(1),
            use_cache: false,
        });
        for threads in [2, 4, 7] {
            let (par, stats) = sweep(&e, points.clone(), &SweepConfig {
                threads: Some(threads),
                use_cache: false,
            });
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.index, p.index);
                assert_eq!(s.outcome, p.outcome, "index {}", s.index);
            }
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.cache_misses, 0, "cache was disabled");
        }
    }

    #[test]
    fn cached_equals_uncached() {
        let e = engine();
        let points = batch(&e);
        let (plain, _) =
            sweep(&e, points.clone(), &SweepConfig { threads: Some(1), use_cache: false });
        let (cached_cold, cold) =
            sweep(&e, points.clone(), &SweepConfig { threads: None, use_cache: true });
        let (cached_warm, warm) =
            sweep(&e, points, &SweepConfig { threads: None, use_cache: true });
        for (a, b) in plain.iter().zip(&cached_cold) {
            assert_eq!(a.outcome, b.outcome, "cold index {}", a.index);
        }
        for (a, b) in plain.iter().zip(&cached_warm) {
            assert_eq!(a.outcome, b.outcome, "warm index {}", a.index);
        }
        assert!(cold.cache_misses > 0);
        assert_eq!(warm.cache_misses, 0, "second pass is fully memoized");
        assert_eq!(warm.cache_hits as usize, warm.points);
    }

    #[test]
    fn results_are_in_submission_order() {
        let e = engine();
        let points = batch(&e);
        let n = points.len();
        let (results, stats) = sweep(&e, points, &SweepConfig::default());
        assert_eq!(results.len(), n);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert_eq!(stats.points, n);
        assert!(stats.threads >= 1);
    }

    #[test]
    fn figure_points_cover_the_grid_in_nesting_order() {
        let e = engine();
        let designs = DesignId::for_column(e.table5(), WorkloadColumn::Fft1024);
        let nodes = e.scenario().roadmap().nodes().len();
        let points =
            figure_points(&e, &designs, WorkloadColumn::Fft1024, &[0.5, 0.9]).unwrap();
        assert_eq!(points.len(), 2 * designs.len() * nodes);
        // f outermost, then design, then node.
        assert_eq!(points[0].f.get(), 0.5);
        assert_eq!(points[nodes].design, designs[1]);
        assert_eq!(points[designs.len() * nodes].f.get(), 0.9);
    }

    #[test]
    fn infeasible_cells_come_back_as_none() {
        // The 10 W scenario starves power-hungry symmetric designs at
        // early nodes.
        let e = ProjectionEngine::with_cache(
            Scenario::s5_low_power(),
            Arc::new(EvalCache::new()),
        )
        .unwrap();
        let points =
            figure_points(&e, &[DesignId::SymCmp], WorkloadColumn::Fft1024, &[0.999])
                .unwrap();
        let (results, _) = sweep(&e, points, &SweepConfig::default());
        // The sequential engine omits infeasible nodes; the sweep marks
        // them None. Both views must agree.
        let sequential = e
            .project(
                DesignId::SymCmp,
                WorkloadColumn::Fft1024,
                ParallelFraction::new(0.999).unwrap(),
            )
            .unwrap();
        let feasible: Vec<_> = results.iter().filter_map(|r| r.outcome).collect();
        assert_eq!(feasible, sequential);
    }
}
