//! The `(µ, φ)` U-core design space (Section 3.3: "Together, µ and φ
//! characterize a design space for U-cores").
//!
//! Given budgets and a parallel fraction, these tools map out what a
//! *hypothetical* U-core would achieve — useful for asking the paper's
//! designer questions in reverse: how efficient must a new fabric be to
//! beat a GPU? past what µ does the bandwidth wall swallow further
//! gains?

use serde::{Deserialize, Serialize};
use ucore_core::{
    Budgets, ChipSpec, EvalCache, Limiter, ModelError, Optimizer, ParallelFraction, UCore,
};

/// One cell of a design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignSpaceCell {
    /// U-core relative performance.
    pub mu: f64,
    /// U-core relative power.
    pub phi: f64,
    /// Best achievable speedup (NaN if infeasible).
    pub speedup: f64,
    /// The binding resource at the optimum, if feasible.
    pub limiter: Option<Limiter>,
}

/// A grid sweep over `(µ, φ)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpaceMap {
    cells: Vec<DesignSpaceCell>,
    mu_values: Vec<f64>,
    phi_values: Vec<f64>,
}

impl DesignSpaceMap {
    /// Sweeps a logarithmic `(µ, φ)` grid under the given budgets.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositive`] for empty or non-positive
    /// ranges.
    pub fn sweep(
        budgets: &Budgets,
        f: ParallelFraction,
        mu_range: (f64, f64),
        phi_range: (f64, f64),
        steps: usize,
    ) -> Result<Self, ModelError> {
        for (what, value) in [
            ("mu range", mu_range.0),
            ("mu range", mu_range.1),
            ("phi range", phi_range.0),
            ("phi range", phi_range.1),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(ModelError::NonPositive { what, value });
            }
        }
        let steps = steps.max(2);
        let grid = |lo: f64, hi: f64| -> Vec<f64> {
            (0..steps)
                .map(|i| {
                    let t = i as f64 / (steps - 1) as f64;
                    (lo.ln() + t * (hi.ln() - lo.ln())).exp()
                })
                .collect()
        };
        let mu_values = grid(mu_range.0, mu_range.1);
        let phi_values = grid(phi_range.0, phi_range.1);
        let optimizer = Optimizer::paper_default();
        let cache = EvalCache::global();
        let mut cells = Vec::with_capacity(steps * steps);
        for &phi in &phi_values {
            for &mu in &mu_values {
                let spec = ChipSpec::heterogeneous(UCore::new(mu, phi)?);
                match cache.optimize(&optimizer, &spec, budgets, f) {
                    Ok(best) => cells.push(DesignSpaceCell {
                        mu,
                        phi,
                        speedup: best.evaluation.speedup.get(),
                        limiter: Some(best.evaluation.limiter),
                    }),
                    Err(_) => cells.push(DesignSpaceCell {
                        mu,
                        phi,
                        speedup: f64::NAN,
                        limiter: None,
                    }),
                }
            }
        }
        Ok(DesignSpaceMap { cells, mu_values, phi_values })
    }

    /// All cells, row-major by φ then µ.
    pub fn cells(&self) -> &[DesignSpaceCell] {
        &self.cells
    }

    /// The swept µ axis.
    pub fn mu_values(&self) -> &[f64] {
        &self.mu_values
    }

    /// The swept φ axis.
    pub fn phi_values(&self) -> &[f64] {
        &self.phi_values
    }

    /// The cell nearest a `(µ, φ)` point, or `None` for an empty map.
    /// Distances compare via `total_cmp`, so a NaN query (e.g. a
    /// negative µ whose log is undefined) still selects deterministically
    /// instead of panicking.
    pub fn nearest(&self, mu: f64, phi: f64) -> Option<&DesignSpaceCell> {
        self.cells.iter().min_by(|a, b| {
            let da = (a.mu.ln() - mu.ln()).abs() + (a.phi.ln() - phi.ln()).abs();
            let db = (b.mu.ln() - mu.ln()).abs() + (b.phi.ln() - phi.ln()).abs();
            da.total_cmp(&db)
        })
    }
}

/// The smallest `µ` (at fixed `φ`) that reaches `target` speedup, found
/// by bisection, or `None` if even an arbitrarily fast U-core cannot
/// (the bandwidth wall or the serial fraction caps it).
pub fn required_mu(
    budgets: &Budgets,
    f: ParallelFraction,
    phi: f64,
    target: f64,
) -> Option<f64> {
    let optimizer = Optimizer::paper_default();
    // The bisection revisits nearby µ values across calls with the same
    // budgets; the global memo table answers repeats directly.
    let cache = EvalCache::global();
    let speedup_at = |mu: f64| -> Option<f64> {
        let spec = ChipSpec::heterogeneous(UCore::new(mu, phi).ok()?);
        cache
            .optimize(&optimizer, &spec, budgets, f)
            .ok()
            .map(|b| b.evaluation.speedup.get())
    };
    let hi_cap = 1e9;
    if speedup_at(hi_cap)? < target {
        return None;
    }
    let mut lo = 1e-6f64;
    let mut hi = hi_cap;
    for _ in 0..200 {
        let mid = (lo.ln() + (hi.ln() - lo.ln()) / 2.0).exp();
        if speedup_at(mid).is_some_and(|s| s >= target) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The `µ` at which further performance stops paying because the design
/// becomes bandwidth-limited (at fixed `φ`): the paper's recurring
/// observation that "flexible U-cores can keep up" past this point.
/// Returns `None` if the design never hits the bandwidth wall within
/// `µ ≤ 1e6` (e.g. the bandwidth-exempt ASIC MMM).
pub fn bandwidth_wall_mu(budgets: &Budgets, f: ParallelFraction, phi: f64) -> Option<f64> {
    let optimizer = Optimizer::paper_default();
    let cache = EvalCache::global();
    let limiter_at = |mu: f64| -> Option<Limiter> {
        let spec = ChipSpec::heterogeneous(UCore::new(mu, phi).ok()?);
        cache
            .optimize(&optimizer, &spec, budgets, f)
            .ok()
            .map(|b| b.evaluation.limiter)
    };
    if limiter_at(1e6)? != Limiter::Bandwidth {
        return None;
    }
    let mut lo = 1e-6f64;
    let mut hi = 1e6f64;
    for _ in 0..200 {
        let mid = (lo.ln() + (hi.ln() - lo.ln()) / 2.0).exp();
        if limiter_at(mid) == Some(Limiter::Bandwidth) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    fn budgets() -> Budgets {
        // 40 nm FFT-1024-style: A = 19, P ~ 8.7, B ~ 45.
        Budgets::new(19.0, 8.7, 45.0).unwrap()
    }

    #[test]
    fn map_covers_the_grid() {
        let map =
            DesignSpaceMap::sweep(&budgets(), f(0.99), (0.5, 500.0), (0.1, 10.0), 8)
                .unwrap();
        assert_eq!(map.cells().len(), 64);
        assert_eq!(map.mu_values().len(), 8);
        assert!(map.cells().iter().all(|c| c.speedup.is_finite()));
    }

    #[test]
    fn speedup_monotone_in_mu_at_fixed_phi() {
        let map =
            DesignSpaceMap::sweep(&budgets(), f(0.99), (0.5, 500.0), (0.5, 0.5), 12)
                .unwrap();
        // Rows are laid out per phi; check monotonicity along one row.
        let row = &map.cells()[..map.mu_values().len()];
        let mut prev = 0.0;
        for cell in row {
            assert!(cell.speedup + 1e-9 >= prev, "mu = {}", cell.mu);
            prev = cell.speedup;
        }
    }

    #[test]
    fn nearest_finds_the_right_cell() {
        let map = DesignSpaceMap::sweep(&budgets(), f(0.9), (1.0, 100.0), (0.1, 10.0), 5)
            .unwrap();
        let c = map.nearest(100.0, 10.0).unwrap();
        assert_eq!(c.mu, *map.mu_values().last().unwrap());
        assert_eq!(c.phi, *map.phi_values().last().unwrap());
    }

    #[test]
    fn required_mu_is_tight() {
        let b = budgets();
        let mu = required_mu(&b, f(0.99), 0.5, 30.0).unwrap();
        let opt = Optimizer::paper_default();
        let at = |m: f64| {
            opt.optimize(
                &ChipSpec::heterogeneous(UCore::new(m, 0.5).unwrap()),
                &b,
                f(0.99),
            )
            .unwrap()
            .evaluation
            .speedup
            .get()
        };
        assert!(at(mu) >= 30.0 - 1e-6);
        assert!(at(mu * 0.9) < 30.0);
    }

    #[test]
    fn unreachable_targets_return_none() {
        // The bandwidth wall caps FFT-like speedups around B + serial
        // contribution; 10,000x is unreachable at any mu.
        assert!(required_mu(&budgets(), f(0.99), 0.5, 10_000.0).is_none());
    }

    #[test]
    fn bandwidth_wall_exists_for_fft_like_budgets() {
        let wall = bandwidth_wall_mu(&budgets(), f(0.99), 0.5).unwrap();
        // Past the wall the limiter is bandwidth; below it, something
        // else.
        assert!(wall > 1.0 && wall < 100.0, "wall at {wall}");
    }

    #[test]
    fn no_wall_when_bandwidth_is_abundant() {
        let roomy = Budgets::new(19.0, 8.7, 1e12).unwrap();
        assert!(bandwidth_wall_mu(&roomy, f(0.99), 0.5).is_none());
    }

    #[test]
    fn gpu_vs_asic_moral_from_the_map() {
        // The paper's FFT story read off the design space: the ASIC's
        // enormous mu buys little over the GPU's because both sit past
        // the bandwidth wall.
        let b = budgets();
        let opt = Optimizer::paper_default();
        let gpu = opt
            .optimize(
                &ChipSpec::heterogeneous(UCore::new(2.88, 0.63).unwrap()),
                &b,
                f(0.99),
            )
            .unwrap()
            .evaluation
            .speedup
            .get();
        let asic = opt
            .optimize(
                &ChipSpec::heterogeneous(UCore::new(489.0, 4.96).unwrap()),
                &b,
                f(0.99),
            )
            .unwrap()
            .evaluation
            .speedup
            .get();
        assert!(asic / gpu < 1.5, "asic {asic} vs gpu {gpu}");
    }
}
