//! Sharded multi-process sweep orchestration with worker-crash
//! tolerance.
//!
//! A design-space sweep is embarrassingly parallel across submission
//! indices, so it shards by contiguous index-range *leases*: worker
//! `i` of `n` owns [`ShardSpec::lease`] of every sweep in the run,
//! evaluates exactly those points through the ordinary durability
//! pipeline, and journals them into its own shard journal. The
//! orchestrator ([`orchestrate`]) spawns the workers as separate
//! processes (`repro --shard i/n --journal PATH.shard<i>`), watches
//! each journal's growth as a heartbeat, and treats a dead or silent
//! worker as a *lease failure*: the lease is reassigned to a fresh
//! worker process — which resumes the dead worker's journal, so
//! nothing already settled is re-evaluated — with bounded retries and
//! the same deterministic exponential backoff the per-point retry
//! policy uses ([`crate::durability::backoff_delay`]). A lease whose
//! retries are exhausted is abandoned with a warning; its missing
//! points fall through to the caller's replay pass and are evaluated
//! in-process, so the run degrades gracefully down to a single
//! surviving process instead of failing.
//!
//! Completed shard journals merge deterministically
//! ([`merge_journals`]): records key into a `BTreeMap` by
//! `(sweep_seq, index)` — index-sorted by construction — and a slot
//! written twice (a reassigned lease executed by two workers)
//! deduplicates by fingerprint. Matching fingerprints keep the later
//! record, mirroring [`crate::journal::replay`]'s last-wins rule;
//! a mismatched fingerprint *rejects* the later write and keeps the
//! first, because two honest executions of the same grid point can
//! never disagree on the point's identity. Replaying the merged
//! journal therefore reproduces the single-process run's figure bytes
//! exactly — the property the shard CLI tests pin at shard counts
//! 1, 2, 4 and 8, under injected whole-worker kills and stalls.

use crate::durability;
use crate::journal::{self, JournalError, JournalRecord};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Leases
// ---------------------------------------------------------------------

/// Which contiguous slice of every sweep a worker process owns: shard
/// `index` of `count`, parsed from the CLI as `"i/n"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

/// A rejected shard specification (`--shard I/N`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpecError {
    given: String,
    reason: &'static str,
}

impl fmt::Display for ShardSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard spec {:?}: {}", self.given, self.reason)
    }
}

impl std::error::Error for ShardSpecError {}

impl ShardSpec {
    /// Shard `index` of `count`.
    ///
    /// # Errors
    ///
    /// Rejects a zero `count` and an `index` outside `0..count`.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardSpecError> {
        let bad = |reason| ShardSpecError { given: format!("{index}/{count}"), reason };
        if count == 0 {
            return Err(bad("shard count must be at least 1"));
        }
        if index >= count {
            return Err(bad("shard index must be smaller than the shard count"));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI form `"I/N"` (shard I of N, zero-based).
    ///
    /// # Errors
    ///
    /// Rejects malformed fragments and out-of-range indices.
    pub fn parse(s: &str) -> Result<Self, ShardSpecError> {
        let bad = |reason| ShardSpecError { given: s.to_string(), reason };
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| bad("expected the form I/N (shard I of N)"))?;
        let index = index
            .trim()
            .parse()
            .map_err(|_| bad("shard index is not a non-negative integer"))?;
        let count = count
            .trim()
            .parse()
            .map_err(|_| bad("shard count is not a positive integer"))?;
        ShardSpec::new(index, count)
    }

    /// This shard's zero-based index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// How many shards partition the sweep.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The contiguous submission-index lease this shard owns out of a
    /// sweep of `total` points. Leases partition `0..total`, stay
    /// contiguous and ascending in shard order, and are balanced:
    /// sizes differ by at most one, with the remainder going to the
    /// lowest-indexed shards. Pure integer arithmetic — every process
    /// computes the identical partition from `(index, count, total)`
    /// alone, with no coordination.
    pub fn lease(&self, total: usize) -> Range<usize> {
        let base = total / self.count;
        let rem = total % self.count;
        let start = self.index * base + self.index.min(rem);
        let len = base + usize::from(self.index < rem);
        start..start + len
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Every shard's lease over a sweep of `total` points, in shard order.
/// The returned ranges partition `0..total`.
pub fn lease_ranges(total: usize, count: usize) -> Vec<Range<usize>> {
    (0..count)
        .filter_map(|index| ShardSpec::new(index, count).ok())
        .map(|spec| spec.lease(total))
        .collect()
}

// ---------------------------------------------------------------------
// Shard-journal merge
// ---------------------------------------------------------------------

/// What [`merge_journals`] found and decided.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Distinct `(sweep_seq, index)` slots written to the merged
    /// journal.
    pub records: usize,
    /// Slots journaled more than once with *matching* fingerprints — a
    /// reassigned lease executed by two workers. The later record wins,
    /// mirroring replay's last-wins rule; either way the bytes agree.
    pub duplicates: usize,
    /// Later writes rejected because their fingerprint disagreed with
    /// the record already holding the slot. The first write is kept:
    /// honest re-executions of one grid point cannot disagree on its
    /// identity, so the later record is the suspect one.
    pub rejected: usize,
    /// Shard journals ending in a torn (partially appended) record —
    /// the signature of a worker killed mid-append. The tail is
    /// skipped, exactly as in replay.
    pub torn_tails: usize,
    /// Shard journals missing entirely (a lease abandoned before its
    /// worker ever appended); those points fall to the caller's replay
    /// pass.
    pub missing: usize,
    /// Intact records contributed per shard journal, in shard order.
    pub per_shard_records: Vec<usize>,
}

/// Merges shard journals (in shard order) into one merged journal at
/// `merged`, written atomically via [`journal::atomic_write`].
///
/// Records are keyed by `(sweep_seq, index)` into a `BTreeMap`, so the
/// merged file is index-sorted regardless of worker completion order —
/// byte-identical for any interleaving of the same records. Duplicate
/// slots deduplicate by fingerprint (see [`MergeReport`] for the
/// policy); missing journals and torn tails are tolerated and counted,
/// never errors.
///
/// # Errors
///
/// [`JournalError::Io`] on read/write failure and
/// [`JournalError::Corrupt`] when a shard journal has an invalid
/// *interior* record (which no crash can produce).
pub fn merge_journals(shards: &[PathBuf], merged: &Path) -> Result<MergeReport, JournalError> {
    let mut slots: BTreeMap<(u64, usize), JournalRecord> = BTreeMap::new();
    let mut report = MergeReport::default();
    for path in shards {
        if !path.exists() {
            report.missing += 1;
            report.per_shard_records.push(0);
            continue;
        }
        let (records, file_report) = journal::read_records(path)?;
        if file_report.torn_tail {
            report.torn_tails += 1;
        }
        report.per_shard_records.push(records.len());
        for record in records {
            let key = (record.sweep_seq, record.index);
            match slots.get(&key) {
                Some(existing) if existing.fingerprint != record.fingerprint => {
                    report.rejected += 1;
                }
                Some(_) => {
                    report.duplicates += 1;
                    slots.insert(key, record);
                }
                None => {
                    slots.insert(key, record);
                }
            }
        }
    }
    report.records = slots.len();
    let mut bytes = String::new();
    for record in slots.values() {
        bytes.push_str(&journal::encode_record(record));
    }
    journal::atomic_write(merged, bytes.as_bytes())?;
    let m = crate::obs::metrics();
    m.shard_merge_records.add(report.records as u64);
    m.shard_merge_duplicates.add(report.duplicates as u64);
    m.shard_merge_rejected.add(report.rejected as u64);
    Ok(report)
}

// ---------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------

/// How often the orchestrator polls worker exits and journal growth.
/// Scheduling only: results come exclusively from the journals.
pub const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Default heartbeat budget: a live worker whose journal has not grown
/// for this long is declared stalled, killed, and its lease reassigned
/// (`--shard-stall-ms`).
pub const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Default reassignment budget per lease (`--shard-retries`).
pub const DEFAULT_LEASE_RETRIES: u32 = 3;

/// How the orchestrator runs a sharded sweep.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Worker process count (= shard count).
    pub shards: usize,
    /// The merged journal target; shard journals and worker logs are
    /// its siblings ([`shard_journal_path`], [`shard_log_path`]).
    pub merged_journal: PathBuf,
    /// The worker executable (normally [`std::env::current_exe`]).
    pub program: PathBuf,
    /// Arguments appended after the generated
    /// `--shard i/n --journal PATH [--resume]` prefix: the render
    /// command plus any forwarded per-point policy flags.
    pub worker_args: Vec<String>,
    /// No journal growth for this long while the process lives ⇒
    /// stalled: the worker is killed and its lease reassigned.
    pub stall_timeout: Duration,
    /// Reassignments per lease before it is abandoned.
    pub lease_retries: u32,
    /// Exit-status / heartbeat polling period.
    pub poll_interval: Duration,
}

impl OrchestratorConfig {
    /// A configuration with the default stall/retry/poll policy.
    pub fn new(
        shards: usize,
        merged_journal: PathBuf,
        program: PathBuf,
        worker_args: Vec<String>,
    ) -> Self {
        OrchestratorConfig {
            shards,
            merged_journal,
            program,
            worker_args,
            stall_timeout: DEFAULT_STALL_TIMEOUT,
            lease_retries: DEFAULT_LEASE_RETRIES,
            poll_interval: POLL_INTERVAL,
        }
    }
}

/// One shard's fate across every attempt at its lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// Worker processes spawned for this lease (1 = clean first run).
    pub attempts: u32,
    /// Attempts that exited nonzero or unpollable.
    pub crashes: u32,
    /// Attempts killed by the heartbeat stall detector.
    pub stalls: u32,
    /// Whether some attempt finally exited cleanly (`false` = the
    /// lease was abandoned after exhausting its retries).
    pub completed: bool,
    /// Intact records this shard's journal contributed to the merge.
    pub records: usize,
}

/// The orchestrator's full account of a sharded run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardRunReport {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<ShardOutcome>,
    /// Worker processes spawned in total (first runs + reassignments).
    pub workers_spawned: u64,
    /// Workers that exited cleanly.
    pub workers_ok: u64,
    /// Workers that crashed (nonzero exit, signal death, poll failure).
    pub workers_crashed: u64,
    /// Workers killed for heartbeat silence.
    pub workers_stalled: u64,
    /// Leases handed to a replacement worker.
    pub leases_reassigned: u64,
    /// Leases abandoned after exhausting their retries.
    pub leases_abandoned: u64,
    /// What the final journal merge found.
    pub merge: MergeReport,
}

/// Errors that abort orchestration outright. Worker failures never do —
/// they consume lease retries and degrade to in-process evaluation.
#[derive(Debug)]
pub enum ShardError {
    /// Zero shards requested.
    NoShards,
    /// A worker process could not even be spawned (a broken `program`
    /// path — crashes *after* spawn are handled by reassignment).
    Spawn {
        /// The shard whose worker failed to launch.
        shard: usize,
        /// The underlying spawn failure.
        source: io::Error,
    },
    /// Merging the shard journals failed.
    Journal(JournalError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "--shards needs at least one shard"),
            ShardError::Spawn { shard, source } => {
                write!(f, "cannot spawn worker for shard {shard}: {source}")
            }
            ShardError::Journal(e) => write!(f, "shard journal merge failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Spawn { source, .. } => Some(source),
            ShardError::Journal(e) => Some(e),
            ShardError::NoShards => None,
        }
    }
}

/// The shard journal worker `shard` writes: `<merged>.shard<i>`, a
/// sibling of the merged journal.
pub fn shard_journal_path(merged: &Path, shard: usize) -> PathBuf {
    let mut name = merged.as_os_str().to_os_string();
    name.push(format!(".shard{shard}"));
    PathBuf::from(name)
}

/// Where worker `shard`'s stderr is captured: `<merged>.shard<i>.log`
/// (overwritten per attempt, kept after the run for diagnosis).
pub fn shard_log_path(merged: &Path, shard: usize) -> PathBuf {
    let mut name = merged.as_os_str().to_os_string();
    name.push(format!(".shard{shard}.log"));
    PathBuf::from(name)
}

/// The single scheduling clock behind spawn backoff and stall
/// detection: it decides only *when* workers run or die, never what
/// the merged journal or the figure bytes contain.
fn sched_now() -> Instant {
    // ucore-lint: allow(determinism): orchestration scheduling clock; worker spawn/kill timing never reaches journal records or output bytes
    Instant::now()
}

/// One pending lease execution (`attempt` 0 is the first run).
#[derive(Debug, Clone, Copy)]
struct Task {
    shard: usize,
    attempt: u32,
}

/// A live worker process under watch.
struct Running {
    task: Task,
    child: Child,
    journal: PathBuf,
    journal_len: u64,
    last_progress: Instant,
}

fn spawn_worker(cfg: &OrchestratorConfig, task: Task, now: Instant) -> Result<Running, ShardError> {
    let journal = shard_journal_path(&cfg.merged_journal, task.shard);
    let mut cmd = Command::new(&cfg.program);
    cmd.arg("--shard")
        .arg(format!("{}/{}", task.shard, cfg.shards))
        .arg("--journal")
        .arg(&journal);
    if task.attempt > 0 && journal.exists() {
        // The replacement replays everything the dead worker already
        // settled and evaluates only the rest of its lease.
        cmd.arg("--resume");
    }
    cmd.args(&cfg.worker_args);
    cmd.stdin(Stdio::null());
    // A worker's stdout is a partial figure (only its lease is
    // evaluated); the authoritative bytes come from the caller's
    // replay of the merged journal.
    cmd.stdout(Stdio::null());
    match File::create(shard_log_path(&cfg.merged_journal, task.shard)) {
        Ok(log) => {
            cmd.stderr(Stdio::from(log));
        }
        Err(_) => {
            cmd.stderr(Stdio::null());
        }
    }
    if task.attempt > 0 {
        // An injected worker fault (`kill@i`, `stall@i`) models a
        // one-shot environmental failure; a replacement inheriting the
        // env plan would re-crash on the same point and drive the lease
        // straight to abandonment.
        cmd.env_remove("UCORE_FAULT_INJECT");
    }
    let child = cmd
        .spawn()
        .map_err(|source| ShardError::Spawn { shard: task.shard, source })?;
    let journal_len = fs::metadata(&journal).map(|m| m.len()).unwrap_or(0);
    Ok(Running { task, child, journal, journal_len, last_progress: now })
}

/// A failed lease attempt: reassign with deterministic backoff while
/// retries remain; abandon once they are exhausted (the caller's
/// replay pass evaluates the leftovers in-process).
fn requeue(
    cfg: &OrchestratorConfig,
    report: &mut ShardRunReport,
    pending: &mut Vec<(Task, Instant)>,
    task: Task,
    why: &str,
) {
    let m = crate::obs::metrics();
    if task.attempt < cfg.lease_retries {
        let delay = durability::backoff_delay(task.shard, task.attempt);
        eprintln!(
            "warning: shard {}/{} worker {why}; reassigning its lease after {} ms \
             (attempt {} of {})",
            task.shard,
            cfg.shards,
            delay.as_millis(),
            task.attempt + 2,
            cfg.lease_retries + 1,
        );
        report.leases_reassigned += 1;
        m.shard_leases_reassigned.inc();
        pending.push((Task { shard: task.shard, attempt: task.attempt + 1 }, sched_now() + delay));
    } else {
        eprintln!(
            "warning: shard {}/{} worker {why}; lease retries exhausted after {} attempt(s) — \
             its unfinished points will be evaluated in-process from the merged journal",
            task.shard,
            cfg.shards,
            task.attempt + 1,
        );
        report.leases_abandoned += 1;
        m.shard_leases_abandoned.inc();
    }
}

/// A human description of how a worker exited. Exit codes 130/143 are
/// the signal-flush path (`repro`'s SIGINT/SIGTERM handlers fsync the
/// journal before exiting), so the journal tail is known-durable.
fn describe_exit(status: ExitStatus) -> String {
    match status.code() {
        Some(code @ (130 | 143)) => {
            format!("was interrupted (exit code {code}, journal flushed)")
        }
        Some(code) => format!("exited with code {code}"),
        None => String::from("was killed by a signal"),
    }
}

/// Runs the full sharded sweep: spawn one worker per lease, watch
/// exits and journal-growth heartbeats, reassign failed leases with
/// bounded backoff, and merge the shard journals into
/// `cfg.merged_journal`.
///
/// Worker deaths never abort the run; they consume that lease's
/// retries. The run completes as long as the orchestrator process
/// itself survives — in the worst case every lease is abandoned and
/// the caller's replay pass evaluates the whole grid in-process,
/// which is exactly the single-process run.
///
/// # Errors
///
/// [`ShardError::NoShards`] for a zero shard count,
/// [`ShardError::Spawn`] when a worker cannot even be launched, and
/// [`ShardError::Journal`] when the final merge fails.
pub fn orchestrate(cfg: &OrchestratorConfig) -> Result<ShardRunReport, ShardError> {
    if cfg.shards == 0 {
        return Err(ShardError::NoShards);
    }
    let m = crate::obs::metrics();
    let mut report = ShardRunReport {
        shards: (0..cfg.shards)
            .map(|shard| ShardOutcome {
                shard,
                attempts: 0,
                crashes: 0,
                stalls: 0,
                completed: false,
                records: 0,
            })
            .collect(),
        ..ShardRunReport::default()
    };
    let mut pending: Vec<(Task, Instant)> = (0..cfg.shards)
        .map(|shard| (Task { shard, attempt: 0 }, sched_now()))
        .collect();
    let mut running: Vec<Running> = Vec::new();

    while !pending.is_empty() || !running.is_empty() {
        // Launch every lease whose backoff has elapsed.
        let now = sched_now();
        let mut deferred = Vec::new();
        for (task, ready_at) in pending.drain(..) {
            if ready_at > now {
                deferred.push((task, ready_at));
                continue;
            }
            let worker = spawn_worker(cfg, task, now)?;
            report.workers_spawned += 1;
            m.shard_workers_spawned.inc();
            if let Some(outcome) = report.shards.get_mut(task.shard) {
                outcome.attempts += 1;
            }
            running.push(worker);
        }
        pending = deferred;

        // Poll the fleet: exits first, then journal heartbeats.
        let mut alive = Vec::with_capacity(running.len());
        for mut worker in running {
            match worker.child.try_wait() {
                Ok(Some(status)) if status.success() => {
                    report.workers_ok += 1;
                    m.shard_workers_ok.inc();
                    if let Some(outcome) = report.shards.get_mut(worker.task.shard) {
                        outcome.completed = true;
                    }
                }
                Ok(Some(status)) => {
                    report.workers_crashed += 1;
                    m.shard_workers_crashed.inc();
                    if let Some(outcome) = report.shards.get_mut(worker.task.shard) {
                        outcome.crashes += 1;
                    }
                    requeue(cfg, &mut report, &mut pending, worker.task, &describe_exit(status));
                }
                Ok(None) => {
                    let len = fs::metadata(&worker.journal).map(|m| m.len()).unwrap_or(0);
                    let polled = sched_now();
                    if len != worker.journal_len {
                        worker.journal_len = len;
                        worker.last_progress = polled;
                        alive.push(worker);
                    } else if polled.duration_since(worker.last_progress) >= cfg.stall_timeout {
                        // Heartbeat silence past the budget: kill the
                        // worker *before* its own unwatched-stall cap
                        // can journal a divergent timeout outcome, then
                        // reassign the lease.
                        let _ = worker.child.kill();
                        let _ = worker.child.wait();
                        report.workers_stalled += 1;
                        m.shard_workers_stalled.inc();
                        if let Some(outcome) = report.shards.get_mut(worker.task.shard) {
                            outcome.stalls += 1;
                        }
                        let why = format!(
                            "made no journal progress for {} ms (killed)",
                            cfg.stall_timeout.as_millis()
                        );
                        requeue(cfg, &mut report, &mut pending, worker.task, &why);
                    } else {
                        alive.push(worker);
                    }
                }
                Err(e) => {
                    let _ = worker.child.kill();
                    let _ = worker.child.wait();
                    report.workers_crashed += 1;
                    m.shard_workers_crashed.inc();
                    if let Some(outcome) = report.shards.get_mut(worker.task.shard) {
                        outcome.crashes += 1;
                    }
                    let why = format!("could not be polled: {e}");
                    requeue(cfg, &mut report, &mut pending, worker.task, &why);
                }
            }
        }
        running = alive;
        if !pending.is_empty() || !running.is_empty() {
            std::thread::sleep(cfg.poll_interval);
        }
    }

    let shard_journals: Vec<PathBuf> = (0..cfg.shards)
        .map(|shard| shard_journal_path(&cfg.merged_journal, shard))
        .collect();
    let merge =
        merge_journals(&shard_journals, &cfg.merged_journal).map_err(ShardError::Journal)?;
    for (outcome, &records) in report.shards.iter_mut().zip(&merge.per_shard_records) {
        outcome.records = records;
    }
    report.merge = merge;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_partition_every_grid() {
        for total in [0usize, 1, 5, 47, 191, 192, 193] {
            for count in [1usize, 2, 3, 4, 8, 13] {
                let ranges = lease_ranges(total, count);
                assert_eq!(ranges.len(), count);
                // Contiguous, ascending, covering 0..total exactly.
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor, "total {total} count {count}");
                    cursor = r.end;
                }
                assert_eq!(cursor, total, "total {total} count {count}");
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                let min = sizes.iter().min().copied().unwrap_or(0);
                let max = sizes.iter().max().copied().unwrap_or(0);
                assert!(max - min <= 1, "total {total} count {count}: {sizes:?}");
            }
        }
    }

    #[test]
    fn lease_matches_lease_ranges() {
        for (index, range) in lease_ranges(192, 8).into_iter().enumerate() {
            assert_eq!(ShardSpec::new(index, 8).unwrap().lease(192), range);
        }
    }

    #[test]
    fn spec_parses_and_rejects() {
        let spec = ShardSpec::parse("2/4").unwrap();
        assert_eq!((spec.index(), spec.count()), (2, 4));
        assert_eq!(spec.to_string(), "2/4");
        for bad in ["", "3", "4/4", "5/4", "x/4", "1/y", "1/0", "-1/4"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn sibling_paths_derive_from_the_merged_journal() {
        let merged = Path::new("/tmp/run.jsonl");
        assert_eq!(
            shard_journal_path(merged, 3),
            PathBuf::from("/tmp/run.jsonl.shard3")
        );
        assert_eq!(
            shard_log_path(merged, 0),
            PathBuf::from("/tmp/run.jsonl.shard0.log")
        );
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        let cfg = OrchestratorConfig::new(
            0,
            PathBuf::from("/tmp/never.jsonl"),
            PathBuf::from("/bin/true"),
            Vec::new(),
        );
        assert!(matches!(orchestrate(&cfg), Err(ShardError::NoShards)));
    }

    #[test]
    fn exit_descriptions_distinguish_signal_flush_codes() {
        // Unix lets us fabricate ExitStatus values only via real
        // processes; the formatting contract is pinned through code()
        // pattern equivalents instead.
        assert!(describe_exit_text(Some(143)).contains("journal flushed"));
        assert!(describe_exit_text(Some(130)).contains("journal flushed"));
        assert!(describe_exit_text(Some(2)).contains("exited with code 2"));
        assert!(describe_exit_text(None).contains("killed by a signal"));
    }

    /// Mirror of [`describe_exit`]'s match over a bare exit code, so
    /// the wording contract is testable without spawning processes.
    fn describe_exit_text(code: Option<i32>) -> String {
        match code {
            Some(code @ (130 | 143)) => {
                format!("was interrupted (exit code {code}, journal flushed)")
            }
            Some(code) => format!("exited with code {code}"),
            None => String::from("was killed by a signal"),
        }
    }
}
