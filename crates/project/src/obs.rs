//! The projection pipeline's registered observability instruments.
//!
//! Every counter the sweep/durability/journal layers maintain lives in
//! the process-wide [`ucore_obs`] registry under these names (the
//! metric-name contract documented in DESIGN.md §14):
//!
//! | name                | type      | meaning                                    |
//! |---------------------|-----------|--------------------------------------------|
//! | `points.submitted`  | counter   | sweep points submitted                     |
//! | `points.ok`         | counter   | feasible outcomes                          |
//! | `points.infeasible` | counter   | infeasible outcomes                        |
//! | `points.failed`     | counter   | contained failures                         |
//! | `points.retries`    | counter   | retry attempts consumed by this process    |
//! | `points.speedup`    | histogram | feasible speedups (data-derived)           |
//! | `sweep.batches`     | counter   | sweep batches run                          |
//! | `sweep.point_us`    | histogram | per-point evaluation wall time (µs)        |
//! | `journal.hits`      | counter   | points answered from a replayed journal    |
//! | `journal.stale`     | counter   | journaled records with a stale fingerprint |
//! | `journal.appends`   | counter   | records appended to the run journal        |
//! | `journal.syncs`     | counter   | journal fsyncs                             |
//! | `journal.write_errors` | counter | append failures (journaling degraded)     |
//! | `failures.retained` | counter   | diagnostics kept in the bounded log        |
//! | `failures.dropped`  | counter   | diagnostics dropped beyond the cap         |
//! | `shard.workers_spawned`   | counter | shard worker processes launched (first runs + reassignments) |
//! | `shard.workers_ok`        | counter | shard workers that exited cleanly          |
//! | `shard.workers_crashed`   | counter | shard workers that crashed (nonzero exit / signal / unpollable) |
//! | `shard.workers_stalled`   | counter | shard workers killed for journal-heartbeat silence |
//! | `shard.leases_reassigned` | counter | leases handed to a replacement worker      |
//! | `shard.leases_abandoned`  | counter | leases given up after exhausting retries   |
//! | `shard.merge_records`     | counter | distinct slots written by the journal merge |
//! | `shard.merge_duplicates`  | counter | duplicate slots deduped by the merge       |
//! | `shard.merge_rejected`    | counter | merge writes rejected on fingerprint mismatch |
//! | `shard.points_skipped`    | counter | out-of-lease points skipped by shard workers |
//!
//! (`ucore-core` registers `cache.hits`/`cache.misses`/`cache.lookups`
//! and the `cache.entries` gauge for the global evaluation cache.)
//!
//! Everything except `sweep.point_us` is derived from run *data*, so
//! the values are identical at any thread count; `sweep.point_us` is
//! wall-clock timing and is excluded from golden comparisons by the
//! [`ucore_obs::is_timing_metric`] naming convention.

use std::sync::{Arc, OnceLock};
use ucore_obs::{Counter, Histogram};

/// Upper bounds (µs) for the per-point evaluation-time histogram.
const POINT_US_BOUNDS: [f64; 8] =
    [50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0, 25000.0, 100000.0];

/// Upper bounds for the feasible-speedup histogram. Speedups are model
/// outputs (data, not timing), so these bucket counts are part of the
/// deterministic snapshot.
const SPEEDUP_BOUNDS: [f64; 8] = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0];

/// One `Arc` per instrument, resolved from the registry exactly once.
pub(crate) struct ProjectMetrics {
    pub(crate) submitted: Arc<Counter>,
    pub(crate) ok: Arc<Counter>,
    pub(crate) infeasible: Arc<Counter>,
    pub(crate) failed: Arc<Counter>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) sweep_batches: Arc<Counter>,
    pub(crate) journal_hits: Arc<Counter>,
    pub(crate) journal_stale: Arc<Counter>,
    pub(crate) journal_appends: Arc<Counter>,
    pub(crate) journal_syncs: Arc<Counter>,
    pub(crate) journal_write_errors: Arc<Counter>,
    pub(crate) failures_retained: Arc<Counter>,
    pub(crate) failures_dropped: Arc<Counter>,
    pub(crate) shard_workers_spawned: Arc<Counter>,
    pub(crate) shard_workers_ok: Arc<Counter>,
    pub(crate) shard_workers_crashed: Arc<Counter>,
    pub(crate) shard_workers_stalled: Arc<Counter>,
    pub(crate) shard_leases_reassigned: Arc<Counter>,
    pub(crate) shard_leases_abandoned: Arc<Counter>,
    pub(crate) shard_merge_records: Arc<Counter>,
    pub(crate) shard_merge_duplicates: Arc<Counter>,
    pub(crate) shard_merge_rejected: Arc<Counter>,
    pub(crate) shard_points_skipped: Arc<Counter>,
    pub(crate) speedup: Arc<Histogram>,
    pub(crate) point_us: Arc<Histogram>,
}

/// The crate's registered instruments.
pub(crate) fn metrics() -> &'static ProjectMetrics {
    static METRICS: OnceLock<ProjectMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = ucore_obs::registry();
        ProjectMetrics {
            submitted: r.counter("points.submitted"),
            ok: r.counter("points.ok"),
            infeasible: r.counter("points.infeasible"),
            failed: r.counter("points.failed"),
            retries: r.counter("points.retries"),
            sweep_batches: r.counter("sweep.batches"),
            journal_hits: r.counter("journal.hits"),
            journal_stale: r.counter("journal.stale"),
            journal_appends: r.counter("journal.appends"),
            journal_syncs: r.counter("journal.syncs"),
            journal_write_errors: r.counter("journal.write_errors"),
            failures_retained: r.counter("failures.retained"),
            failures_dropped: r.counter("failures.dropped"),
            shard_workers_spawned: r.counter("shard.workers_spawned"),
            shard_workers_ok: r.counter("shard.workers_ok"),
            shard_workers_crashed: r.counter("shard.workers_crashed"),
            shard_workers_stalled: r.counter("shard.workers_stalled"),
            shard_leases_reassigned: r.counter("shard.leases_reassigned"),
            shard_leases_abandoned: r.counter("shard.leases_abandoned"),
            shard_merge_records: r.counter("shard.merge_records"),
            shard_merge_duplicates: r.counter("shard.merge_duplicates"),
            shard_merge_rejected: r.counter("shard.merge_rejected"),
            shard_points_skipped: r.counter("shard.points_skipped"),
            speedup: r.histogram("points.speedup", &SPEEDUP_BOUNDS),
            point_us: r.histogram("sweep.point_us", &POINT_US_BOUNDS),
        }
    })
}
