//! The projection engine.
//!
//! For each design (a CMP baseline or a U-core heterogeneous chip), each
//! projection node, and each parallel fraction, the engine:
//!
//! 1. converts the node's Table 6 budgets into model units via the
//!    workload's BCE calibration (`A` in BCE area, `P` in BCE power —
//!    growing as power per transistor shrinks — and `B` in compulsory
//!    bandwidth units);
//! 2. sweeps the sequential-core size `r` up to the scenario limit,
//!    takes the best speedup, and records which resource bound the
//!    design (the paper's dashed/solid/unconnected distinction);
//! 3. computes the design's normalized energy for the Figure 10 study.
//!
//! The ASIC MMM core is exempted from the bandwidth bound, as in the
//! paper (its 40 nm design blocks at `N ≥ 2048` and needs almost no
//! off-chip traffic).

use crate::results::NodePoint;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use ucore_calibrate::{composite_workload, BceCalibration, Table5, WorkloadColumn};
use ucore_core::{
    Budgets, ChipSpec, EnergyModel, EvalCache, Limiter, Optimizer, ParallelFraction,
    PortfolioChip, SegmentedWorkload,
};
use ucore_devices::DeviceId;
use ucore_itrs::NodeParams;
use ucore_workloads::WorkloadKind;

/// Errors raised while projecting.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjectionError {
    /// Calibration failed (no measurement for the requested cell).
    Calibration(String),
    /// No feasible design existed at some node for a design that the
    /// study expects to be plottable.
    Infeasible {
        /// Explanation from the model.
        reason: String,
    },
}

impl fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectionError::Calibration(msg) => write!(f, "calibration failed: {msg}"),
            ProjectionError::Infeasible { reason } => f.write_str(reason),
        }
    }
}

impl Error for ProjectionError {}

/// A design plotted in the projection figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignId {
    /// `(0)` Symmetric CMP of i7-class cores.
    SymCmp,
    /// `(1)` Asymmetric CMP with the big core offloaded in parallel
    /// phases.
    AsymCmp,
    /// `(2..6)` A heterogeneous chip built from the device's U-cores.
    Het(DeviceId),
    /// A Multi-Amdahl chip on the composite three-kernel workload
    /// (Figure 11). Appended after the original variants so the journal
    /// fingerprints of pre-existing sweep points are untouched.
    Portfolio(PortfolioDesign),
}

/// How a Figure 11 chip organizes its accelerator area across the
/// composite workload's segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortfolioDesign {
    /// One programmable U-core (GPU, or an FPGA reconfigured between
    /// kernels) serving every segment with the *full* parallel area,
    /// time-multiplexed.
    Shared(DeviceId),
    /// Kernel-specific U-cores of this device splitting the parallel
    /// area under the KKT allocator — fixed-function silicon, so each
    /// segment only ever touches its own slice.
    Split(DeviceId),
}

impl PortfolioDesign {
    /// The underlying device whose Table 5 cells parameterize every
    /// segment.
    pub fn device(&self) -> DeviceId {
        match self {
            PortfolioDesign::Shared(d) | PortfolioDesign::Split(d) => *d,
        }
    }

    /// The legend label. The leading index doubles as the plot glyph
    /// (second character), so each Figure 11 series gets a distinct one.
    pub fn label(&self) -> String {
        let idx = match self {
            PortfolioDesign::Shared(DeviceId::Gtx285) => 0,
            PortfolioDesign::Shared(DeviceId::V6Lx760) => 1,
            PortfolioDesign::Split(DeviceId::V6Lx760) => 2,
            PortfolioDesign::Split(DeviceId::Asic) => 3,
            PortfolioDesign::Shared(_) => 8,
            PortfolioDesign::Split(_) => 9,
        };
        let kind = match self {
            PortfolioDesign::Shared(_) => "shared",
            PortfolioDesign::Split(_) => "split",
        };
        format!("({idx}) {} {kind}", self.device().label())
    }
}

impl DesignId {
    /// The label used in the figures' legends.
    pub fn label(&self) -> String {
        match self {
            DesignId::SymCmp => "(0) SymCMP".into(),
            DesignId::AsymCmp => "(1) AsymCMP".into(),
            DesignId::Het(d) => {
                format!("({}) {}", d.figure_index().unwrap_or(9), d.label())
            }
            DesignId::Portfolio(p) => p.label(),
        }
    }

    /// The designs a figure plots for a workload column: both CMPs plus
    /// every U-core device with a Table 5 entry for that column.
    pub fn for_column(table5: &Table5, column: WorkloadColumn) -> Vec<DesignId> {
        let mut designs = vec![DesignId::SymCmp, DesignId::AsymCmp];
        for device in [
            DeviceId::V6Lx760,
            DeviceId::Gtx285,
            DeviceId::Gtx480,
            DeviceId::R5870,
            DeviceId::Asic,
        ] {
            if table5.ucore(device, column).is_some() {
                designs.push(DesignId::Het(device));
            }
        }
        designs
    }

    /// The Figure 11 series: single shared U-cores (the GPU and the
    /// reconfigurable FPGA) against split portfolios (the FPGA
    /// partitioned, and the kernel-specific ASIC bank — the only way an
    /// ASIC can serve three kernels at all).
    pub fn portfolio_designs() -> Vec<DesignId> {
        vec![
            DesignId::Portfolio(PortfolioDesign::Shared(DeviceId::Gtx285)),
            DesignId::Portfolio(PortfolioDesign::Shared(DeviceId::V6Lx760)),
            DesignId::Portfolio(PortfolioDesign::Split(DeviceId::V6Lx760)),
            DesignId::Portfolio(PortfolioDesign::Split(DeviceId::Asic)),
        ]
    }
}

impl fmt::Display for DesignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The projection engine for one scenario.
#[derive(Debug, Clone)]
pub struct ProjectionEngine {
    scenario: Scenario,
    table5: Table5,
    cache: Arc<EvalCache>,
    /// The scenario's `r` sweep, validated once at construction so the
    /// hot path never re-validates (and never panics).
    optimizer: Optimizer,
}

impl ProjectionEngine {
    /// Builds an engine, deriving Table 5 from the simulated lab. The
    /// engine memoizes design-point evaluations in the process-wide
    /// [`EvalCache::global`] cache, so identical `(design, node, f)`
    /// points shared between figures and scenarios are optimized once.
    ///
    /// # Errors
    ///
    /// Returns [`ProjectionError::Calibration`] if the lab cannot supply
    /// the i7 baselines (never the case for the shipped data).
    pub fn new(scenario: Scenario) -> Result<Self, ProjectionError> {
        Self::with_cache(scenario, EvalCache::global().clone())
    }

    /// Builds an engine backed by a specific evaluation cache (e.g. a
    /// fresh private cache for benchmarking or isolation).
    ///
    /// # Errors
    ///
    /// Same as [`ProjectionEngine::new`].
    pub fn with_cache(
        scenario: Scenario,
        cache: Arc<EvalCache>,
    ) -> Result<Self, ProjectionError> {
        let table5 =
            Table5::derive().map_err(|e| ProjectionError::Calibration(e.to_string()))?;
        let optimizer =
            Optimizer::new(1.0, scenario.r_max(), 1.0).map_err(|e| {
                ProjectionError::Calibration(format!(
                    "scenario {:?} has an invalid r sweep: {e}",
                    scenario.name()
                ))
            })?;
        Ok(ProjectionEngine { scenario, table5, cache, optimizer })
    }

    /// The engine's scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The derived Table 5 the engine projects from.
    pub fn table5(&self) -> &Table5 {
        &self.table5
    }

    /// The evaluation cache backing this engine.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// The `r` sweep this scenario prescribes (validated at engine
    /// construction).
    pub fn optimizer(&self) -> Optimizer {
        self.optimizer
    }

    /// Evaluates one `(spec, node, budgets, f)` cell: the memoized
    /// optimal design plus its node-local normalized energy. `None` when
    /// no feasible design exists (e.g. under the 10 W scenario).
    pub(crate) fn node_point(
        &self,
        spec: &ChipSpec,
        node: &NodeParams,
        budgets: &Budgets,
        f: ParallelFraction,
        use_cache: bool,
    ) -> Option<NodePoint> {
        // Cooperative watchdog: under a `--timeout-ms` deadline, a point
        // that overstays its budget is cancelled here (as a contained
        // panic) instead of hanging its sweep worker. A no-op when no
        // deadline is armed on this thread.
        crate::durability::watchdog_checkpoint();
        let optimizer = self.optimizer();
        let best = {
            let _span = ucore_obs::span!("engine.optimize");
            if use_cache {
                self.cache.optimize(&optimizer, spec, budgets, f).ok()?
            } else {
                optimizer.optimize(spec, budgets, f).ok()?
            }
        };
        // Normalized energy at this node: linear in the node's power
        // scale. A node with an unusable power scale degrades to a NaN
        // energy (plotted as a gap), like any other energy failure.
        let energy = EnergyModel::new(node.rel_power_per_transistor)
            .and_then(|m| {
                m.breakdown(spec, f, best.evaluation.n, best.evaluation.r)
            })
            .map(|b| b.total())
            .unwrap_or(f64::NAN);
        Some(NodePoint {
            node: node.node,
            speedup: best.evaluation.speedup.get(),
            limiter: best.evaluation.limiter,
            r: best.evaluation.r,
            n: best.evaluation.n,
            energy,
        })
    }

    /// Evaluates one Figure 11 cell: the best composite-workload
    /// portfolio chip over the scenario's `r` sweep. `None` when no `r`
    /// leaves both area and power for the accelerators.
    ///
    /// For each candidate `r` the serial core claims `r` BCE of area and
    /// `r^(α/2)` of power, leaving `A − r` and `P − r^(α/2)` for the
    /// parallel phase. Only one accelerator runs at a time (the segments
    /// are phases of one program), so power caps each segment's area at
    /// `P_parallel / φ_k` rather than their sum:
    ///
    /// - [`PortfolioDesign::Shared`]: one programmable U-core serves all
    ///   segments with area `min(A_parallel, min_k P_parallel/φ_k)`;
    /// - [`PortfolioDesign::Split`]: the KKT allocator splits
    ///   `A_parallel` into kernel-specific U-cores, each capped at its
    ///   own `P_parallel / φ_k`.
    ///
    /// Portfolio points carry no energy model (`energy` is NaN, plotted
    /// as a gap) and are bandwidth-exempt like the ASIC MMM core — the
    /// composite study isolates the area/power trade.
    pub(crate) fn portfolio_point(
        &self,
        design: PortfolioDesign,
        node: &NodeParams,
        budgets: &Budgets,
        f: ParallelFraction,
    ) -> Option<NodePoint> {
        crate::durability::watchdog_checkpoint();
        let _span = ucore_obs::span!("engine.portfolio");
        let workload = composite_workload(&self.table5, design.device(), f).ok()?;
        let power_law = self.scenario.power_law();
        let mut best: Option<NodePoint> = None;
        for r in self.optimizer().candidate_values() {
            let a_par = budgets.area() - r;
            if a_par <= 0.0 {
                continue;
            }
            let p_par = budgets.power() - power_law.power_of_area(r);
            if p_par <= 0.0 {
                continue;
            }
            let evaluated = match design {
                PortfolioDesign::Shared(_) => shared_point(&workload, r, a_par, p_par),
                PortfolioDesign::Split(_) => split_point(&workload, r, a_par, p_par),
            };
            let Some((speedup, used, power_bound)) = evaluated else {
                continue;
            };
            // First-wins strict-`>` argmax, the workspace's tie policy.
            if best.as_ref().is_none_or(|b| speedup > b.speedup) {
                best = Some(NodePoint {
                    node: node.node,
                    speedup,
                    limiter: if power_bound { Limiter::Power } else { Limiter::Area },
                    r,
                    n: r + used,
                    energy: f64::NAN,
                });
            }
        }
        best
    }

    /// The model budgets a portfolio design sweeps under: the MMM
    /// column's BCE anchoring (the composite's first kernel) with the
    /// bandwidth bound exempted.
    ///
    /// # Errors
    ///
    /// Same as [`ProjectionEngine::budgets`].
    pub fn portfolio_budgets(&self, node: &NodeParams) -> Result<Budgets, ProjectionError> {
        self.budgets(node, WorkloadColumn::Mmm, true)
    }

    /// The chip spec for a design on a workload column.
    ///
    /// Returns `None` when the column has no published U-core for the
    /// device, and always for portfolio designs — they are evaluated by
    /// [`ProjectionEngine::portfolio_point`], not the single-U-core
    /// optimizer.
    pub fn chip_spec(&self, design: DesignId, column: WorkloadColumn) -> Option<ChipSpec> {
        let spec = match design {
            DesignId::SymCmp => ChipSpec::symmetric(),
            DesignId::AsymCmp => ChipSpec::asymmetric_offload(),
            DesignId::Het(device) => {
                ChipSpec::heterogeneous(self.table5.ucore(device, column)?)
            }
            DesignId::Portfolio(_) => return None,
        };
        Some(spec.with_power_law(self.scenario.power_law()))
    }

    /// Whether the paper exempts this (design, column) pair from the
    /// bandwidth bound. Portfolio designs are always exempt (the
    /// composite study isolates the area/power trade).
    pub fn bandwidth_exempt(design: DesignId, column: WorkloadColumn) -> bool {
        matches!(
            (design, column),
            (DesignId::Het(DeviceId::Asic), WorkloadColumn::Mmm)
                | (DesignId::Portfolio(_), _)
        )
    }

    /// The model budgets for one node of the scenario's roadmap, in BCE
    /// units for the given workload column.
    ///
    /// # Errors
    ///
    /// Returns [`ProjectionError::Calibration`] if the BCE cannot be
    /// anchored for the column's workload.
    pub fn budgets(
        &self,
        node: &NodeParams,
        column: WorkloadColumn,
        bandwidth_exempt: bool,
    ) -> Result<Budgets, ProjectionError> {
        let bce = BceCalibration::derive(column.workload())
            .map_err(|e| ProjectionError::Calibration(e.to_string()))?;
        let power = bce.power_budget_units(
            node.core_power_budget_w,
            node.rel_power_per_transistor,
        );
        let bandwidth = if bandwidth_exempt {
            f64::MAX / 4.0
        } else {
            bce.bandwidth_budget_units(node.bandwidth_gb_s)
        };
        Budgets::new(node.max_area_bce, power, bandwidth)
            .map_err(|e| ProjectionError::Infeasible { reason: e.to_string() })
    }

    /// Projects one design across every node of the roadmap at a given
    /// parallel fraction. Nodes where no feasible design exists are
    /// omitted (this happens under the 10 W scenario for power-hungry
    /// configurations).
    ///
    /// # Errors
    ///
    /// Returns [`ProjectionError::Calibration`] for columns the design
    /// cannot run (no Table 5 entry).
    pub fn project(
        &self,
        design: DesignId,
        column: WorkloadColumn,
        f: ParallelFraction,
    ) -> Result<Vec<NodePoint>, ProjectionError> {
        let spec = self.chip_spec(design, column).ok_or_else(|| {
            ProjectionError::Calibration(format!("no {column} u-core for {design}"))
        })?;
        let exempt = Self::bandwidth_exempt(design, column);
        let mut points = Vec::new();
        for node in self.scenario.roadmap().nodes() {
            let budgets = self.budgets(node, column, exempt)?;
            if let Some(point) = self.node_point(&spec, node, &budgets, f, true) {
                points.push(point);
            }
        }
        Ok(points)
    }

    /// Projects one design year by year (2011–2022) using the roadmap's
    /// interpolated parameters — a finer-grained view than the paper's
    /// node-granular figures, built on [`ucore_itrs::Roadmap::at_year`].
    ///
    /// Infeasible years are omitted, like infeasible nodes in
    /// [`project`](Self::project).
    ///
    /// # Errors
    ///
    /// Returns [`ProjectionError::Calibration`] for unpublished cells.
    pub fn project_yearly(
        &self,
        design: DesignId,
        column: WorkloadColumn,
        f: ParallelFraction,
    ) -> Result<Vec<YearPoint>, ProjectionError> {
        let spec = self.chip_spec(design, column).ok_or_else(|| {
            ProjectionError::Calibration(format!("no {column} u-core for {design}"))
        })?;
        let exempt = Self::bandwidth_exempt(design, column);
        let optimizer = self.optimizer();
        let roadmap = self.scenario.roadmap();
        let (first, last) = {
            let nodes = roadmap.nodes();
            (nodes[0].year, nodes[nodes.len() - 1].year)
        };
        let mut points = Vec::new();
        for year in first..=last {
            let Ok(params) = roadmap.at_year(year) else {
                continue;
            };
            let Ok(budgets) = self.budgets(&params, column, exempt) else {
                continue;
            };
            let Ok(best) = self.cache.optimize(&optimizer, &spec, &budgets, f) else {
                continue;
            };
            points.push(YearPoint {
                year,
                speedup: best.evaluation.speedup.get(),
                limiter: best.evaluation.limiter,
            });
        }
        Ok(points)
    }

    /// Convenience: the speedup at a single (design, column, node, f)
    /// point, if feasible.
    pub fn speedup_at(
        &self,
        design: DesignId,
        column: WorkloadColumn,
        node: ucore_devices::TechNode,
        f: ParallelFraction,
    ) -> Option<f64> {
        self.project(design, column, f)
            .ok()?
            .into_iter()
            .find(|p| p.node == node)
            .map(|p| p.speedup)
    }
}

/// One year of a fine-grained projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YearPoint {
    /// Calendar year.
    pub year: u32,
    /// Best achievable speedup.
    pub speedup: f64,
    /// The binding resource.
    pub limiter: ucore_core::Limiter,
}

/// One shared-design candidate: the single programmable U-core runs
/// every segment time-multiplexed on the same silicon, so it can use the
/// full parallel area — up to the tightest per-kernel power cap.
/// Returns `(speedup, used_area, power_bound)`.
fn shared_point(
    workload: &SegmentedWorkload,
    r: f64,
    a_par: f64,
    p_par: f64,
) -> Option<(f64, f64, bool)> {
    let power_cap = workload
        .segments()
        .iter()
        .filter(|s| s.weight() > 0.0)
        .map(|s| p_par / s.ucore().phi())
        .fold(f64::INFINITY, f64::min);
    let area = a_par.min(power_cap);
    if area <= 0.0 {
        return None;
    }
    let chip = PortfolioChip::new(r + a_par, r, workload.clone()).ok()?;
    let areas = vec![area; workload.segments().len()];
    let speedup = chip.speedup_for(&areas).ok()?;
    Some((speedup.get(), area, power_cap < a_par))
}

/// One split-design candidate: kernel-specific U-cores divide the
/// parallel area under the KKT allocator, each capped at its own
/// `P_parallel / φ_k` (only one is powered at a time). Returns
/// `(speedup, used_area, power_bound)`.
fn split_point(
    workload: &SegmentedWorkload,
    r: f64,
    a_par: f64,
    p_par: f64,
) -> Option<(f64, f64, bool)> {
    let mut capped = Vec::with_capacity(workload.segments().len());
    for seg in workload.segments() {
        capped.push(seg.with_max_area(p_par / seg.ucore().phi()).ok()?);
    }
    let workload = SegmentedWorkload::new(workload.serial_weight(), capped).ok()?;
    let chip = PortfolioChip::new(r + a_par, r, workload).ok()?;
    let alloc = chip.allocate().ok()?;
    let used: f64 = alloc.areas.iter().sum();
    let power_bound = chip
        .workload()
        .segments()
        .iter()
        .zip(&alloc.areas)
        .any(|(seg, &a)| seg.max_area().is_some_and(|cap| a >= cap));
    Some((alloc.speedup.get(), used, power_bound))
}

/// The workload kinds the projections cover, with their columns.
pub fn projection_columns() -> [(WorkloadKind, WorkloadColumn); 3] {
    [
        (WorkloadKind::Fft, WorkloadColumn::Fft1024),
        (WorkloadKind::Mmm, WorkloadColumn::Mmm),
        (WorkloadKind::BlackScholes, WorkloadColumn::Bs),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucore_core::Limiter;
    use ucore_devices::TechNode;

    fn engine() -> ProjectionEngine {
        ProjectionEngine::new(Scenario::baseline()).unwrap()
    }

    fn f(v: f64) -> ParallelFraction {
        ParallelFraction::new(v).unwrap()
    }

    #[test]
    fn designs_per_column_match_figures() {
        let e = engine();
        // Figure 6 (FFT): SymCMP, AsymCMP, LX760, GTX285, GTX480, ASIC.
        let fft = DesignId::for_column(e.table5(), WorkloadColumn::Fft1024);
        assert_eq!(fft.len(), 6);
        assert!(!fft.contains(&DesignId::Het(DeviceId::R5870)));
        // Figure 7 (MMM): all seven.
        let mmm = DesignId::for_column(e.table5(), WorkloadColumn::Mmm);
        assert_eq!(mmm.len(), 7);
        // Figure 8 (BS): five.
        let bs = DesignId::for_column(e.table5(), WorkloadColumn::Bs);
        assert_eq!(bs.len(), 5);
    }

    #[test]
    fn budgets_scale_across_nodes() {
        let e = engine();
        let roadmap = e.scenario().roadmap().clone();
        let b40 = e
            .budgets(&roadmap.node(TechNode::N40).unwrap(), WorkloadColumn::Mmm, false)
            .unwrap();
        let b11 = e
            .budgets(&roadmap.node(TechNode::N11).unwrap(), WorkloadColumn::Mmm, false)
            .unwrap();
        assert!(b11.area() > b40.area());
        assert!(b11.power() > b40.power());
        assert!(b11.bandwidth() > b40.bandwidth());
        // Area grows ~16x, power only ~4x: the dark-silicon squeeze.
        assert!((b11.area() / b40.area() - 15.7).abs() < 1.0);
        assert!((b11.power() / b40.power() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn asic_fft_is_bandwidth_limited_from_the_start() {
        // Section 6.1: "At all values of f, the ASIC achieves the highest
        // level of performance but cannot scale further due to bandwidth
        // limitations."
        let e = engine();
        let pts = e
            .project(DesignId::Het(DeviceId::Asic), WorkloadColumn::Fft1024, f(0.99))
            .unwrap();
        assert_eq!(pts.len(), 5);
        for p in &pts {
            assert_eq!(p.limiter, Limiter::Bandwidth, "{:?}", p.node);
        }
    }

    #[test]
    fn asic_mmm_is_never_bandwidth_limited() {
        let e = engine();
        let pts = e
            .project(DesignId::Het(DeviceId::Asic), WorkloadColumn::Mmm, f(0.999))
            .unwrap();
        for p in &pts {
            assert_ne!(p.limiter, Limiter::Bandwidth, "{:?}", p.node);
        }
    }

    #[test]
    fn asic_tops_every_fft_chart() {
        let e = engine();
        for fv in [0.5, 0.9, 0.99, 0.999] {
            let asic = e
                .speedup_at(
                    DesignId::Het(DeviceId::Asic),
                    WorkloadColumn::Fft1024,
                    TechNode::N11,
                    f(fv),
                )
                .unwrap();
            for design in [
                DesignId::SymCmp,
                DesignId::AsymCmp,
                DesignId::Het(DeviceId::Gtx285),
                DesignId::Het(DeviceId::Gtx480),
                DesignId::Het(DeviceId::V6Lx760),
            ] {
                let other = e
                    .speedup_at(design, WorkloadColumn::Fft1024, TechNode::N11, f(fv))
                    .unwrap();
                assert!(asic >= other, "f = {fv}: {design} beat the ASIC");
            }
        }
    }

    #[test]
    fn low_parallelism_erases_het_advantage() {
        // Section 6.1: "At f = 0.5, the lack of sufficient parallelism
        // results in none of the HETs providing a significant performance
        // gain over the CMPs."
        let e = engine();
        let cmp = e
            .speedup_at(DesignId::AsymCmp, WorkloadColumn::Fft1024, TechNode::N11, f(0.5))
            .unwrap();
        let gpu = e
            .speedup_at(
                DesignId::Het(DeviceId::Gtx480),
                WorkloadColumn::Fft1024,
                TechNode::N11,
                f(0.5),
            )
            .unwrap();
        assert!(gpu / cmp < 1.6, "HET/CMP at f=0.5 was {}", gpu / cmp);
    }

    #[test]
    fn high_parallelism_amplifies_het_advantage() {
        let e = engine();
        let cmp = e
            .speedup_at(DesignId::AsymCmp, WorkloadColumn::Mmm, TechNode::N11, f(0.999))
            .unwrap();
        let asic = e
            .speedup_at(
                DesignId::Het(DeviceId::Asic),
                WorkloadColumn::Mmm,
                TechNode::N11,
                f(0.999),
            )
            .unwrap();
        assert!(asic / cmp > 5.0, "ASIC/CMP at f=0.999 was {}", asic / cmp);
    }

    #[test]
    fn speedups_grow_across_nodes() {
        let e = engine();
        let pts = e
            .project(DesignId::AsymCmp, WorkloadColumn::Mmm, f(0.99))
            .unwrap();
        for pair in pts.windows(2) {
            assert!(pair[1].speedup >= pair[0].speedup * 0.99);
        }
    }

    #[test]
    fn energy_declines_across_nodes() {
        let e = engine();
        let pts = e
            .project(DesignId::Het(DeviceId::Asic), WorkloadColumn::Mmm, f(0.9))
            .unwrap();
        for pair in pts.windows(2) {
            assert!(pair[1].energy <= pair[0].energy + 1e-9);
        }
    }

    #[test]
    fn yearly_projection_brackets_the_node_projection() {
        let e = engine();
        let nodes = e
            .project(DesignId::AsymCmp, WorkloadColumn::Fft1024, f(0.99))
            .unwrap();
        let years = e
            .project_yearly(DesignId::AsymCmp, WorkloadColumn::Fft1024, f(0.99))
            .unwrap();
        assert_eq!(years.len(), 12); // 2011..=2022
        // Node years agree with the coarse projection.
        for (node_point, year) in nodes.iter().zip([2011u32, 2013, 2016, 2019, 2022]) {
            let yp = years.iter().find(|p| p.year == year).unwrap();
            assert!(
                (yp.speedup - node_point.speedup).abs() < 1e-9,
                "year {year}"
            );
        }
        // And intermediate years interpolate monotonically.
        for pair in years.windows(2) {
            assert!(pair[1].speedup >= pair[0].speedup * 0.999);
        }
    }

    #[test]
    fn missing_column_is_an_error() {
        let e = engine();
        let err = e
            .project(DesignId::Het(DeviceId::R5870), WorkloadColumn::Bs, f(0.9))
            .unwrap_err();
        assert!(matches!(err, ProjectionError::Calibration(_)));
    }

    fn portfolio_points(
        e: &ProjectionEngine,
        design: PortfolioDesign,
        fv: f64,
    ) -> Vec<NodePoint> {
        let mut points = Vec::new();
        for node in e.scenario().roadmap().nodes() {
            let budgets = e.portfolio_budgets(node).unwrap();
            if let Some(p) = e.portfolio_point(design, node, &budgets, f(fv)) {
                points.push(p);
            }
        }
        points
    }

    #[test]
    fn portfolio_labels_have_distinct_glyph_characters() {
        let designs = DesignId::portfolio_designs();
        assert_eq!(designs.len(), 4);
        let glyphs: std::collections::BTreeSet<char> = designs
            .iter()
            .map(|d| d.label().chars().nth(1).unwrap())
            .collect();
        assert_eq!(glyphs.len(), designs.len(), "series glyphs collide");
        // Portfolio designs never map to a single-U-core chip spec and
        // are always bandwidth-exempt.
        for d in designs {
            assert!(e_chip_spec_is_none(d));
            assert!(ProjectionEngine::bandwidth_exempt(d, WorkloadColumn::Mmm));
            assert!(ProjectionEngine::bandwidth_exempt(d, WorkloadColumn::Bs));
        }
    }

    fn e_chip_spec_is_none(d: DesignId) -> bool {
        engine().chip_spec(d, WorkloadColumn::Mmm).is_none()
    }

    #[test]
    fn every_portfolio_design_projects_across_all_nodes() {
        let e = engine();
        for design in DesignId::portfolio_designs() {
            let DesignId::Portfolio(p) = design else { unreachable!() };
            let pts = portfolio_points(&e, p, 0.99);
            assert_eq!(pts.len(), 5, "{design}");
            for pair in pts.windows(2) {
                assert!(
                    pair[1].speedup >= pair[0].speedup * 0.99,
                    "{design} regressed across nodes"
                );
            }
            for pt in &pts {
                assert!(pt.speedup >= 1.0, "{design} slower than baseline");
                assert!(pt.energy.is_nan(), "portfolio energy is a NaN gap");
                assert!(pt.n >= pt.r);
            }
        }
    }

    #[test]
    fn split_asic_portfolio_beats_every_shared_programmable() {
        // The kernel-specific ASIC bank is the portfolio argument in one
        // line: splitting area among fixed-function cores beats giving
        // the whole parallel region to any programmable device.
        let e = engine();
        let asic = portfolio_points(&e, PortfolioDesign::Split(DeviceId::Asic), 0.99);
        for shared in [
            PortfolioDesign::Shared(DeviceId::Gtx285),
            PortfolioDesign::Shared(DeviceId::V6Lx760),
        ] {
            let other = portfolio_points(&e, shared, 0.99);
            for (a, o) in asic.iter().zip(&other) {
                assert!(
                    a.speedup > o.speedup,
                    "{shared:?} beat the ASIC portfolio at {:?}",
                    a.node
                );
            }
        }
    }

    #[test]
    fn split_fpga_beats_shared_only_when_power_binds() {
        // Reconfiguring one big FPGA between kernels time-shares the
        // full parallel area, so under an area bound the shared device
        // can never lose to three static partitions of the same silicon.
        // Under a *power* bound the tables turn: the shared fabric must
        // be sized for its hungriest kernel (`min_k P/φ_k`), while split
        // cores are each sized to their own kernel's φ.
        let e = engine();
        let shared = portfolio_points(&e, PortfolioDesign::Shared(DeviceId::V6Lx760), 0.99);
        let split = portfolio_points(&e, PortfolioDesign::Split(DeviceId::V6Lx760), 0.99);
        let mut split_won_somewhere = false;
        for (sh, sp) in shared.iter().zip(&split) {
            if sh.limiter == Limiter::Area {
                assert!(
                    sh.speedup >= sp.speedup * (1.0 - 1e-9),
                    "split FPGA beat area-limited shared at {:?}",
                    sh.node
                );
            } else if sp.speedup > sh.speedup {
                split_won_somewhere = true;
            }
        }
        // The dark-silicon squeeze makes the late nodes power-bound, so
        // the per-kernel sizing advantage must show up somewhere.
        assert!(
            split_won_somewhere,
            "power never bound: the split-vs-shared contrast is vacuous"
        );
    }
}
