//! Crossover detection: *where* one design overtakes another.
//!
//! The paper's conclusions are crossover statements — U-cores beat CMPs
//! once `f ≥ 0.9`; flexible fabrics catch the ASIC once the bandwidth
//! wall binds; custom logic pulls away from GPUs only past `f = 0.99`
//! on MMM. This module locates those crossovers programmatically so the
//! reproduction can report them as numbers rather than read them off
//! charts.

use crate::engine::{DesignId, ProjectionEngine, ProjectionError};
use serde::{Deserialize, Serialize};
use ucore_calibrate::WorkloadColumn;
use ucore_core::ParallelFraction;
use ucore_devices::TechNode;

/// The `f` above which `challenger` sustains at least `ratio` times the
/// `incumbent`'s speedup at a node, found by bisection over `f`.
///
/// Returns `None` if the challenger never reaches that ratio even at
/// `f = 0.9999`.
///
/// # Errors
///
/// Propagates projection errors (unpublished cells).
pub fn f_crossover(
    engine: &ProjectionEngine,
    challenger: DesignId,
    incumbent: DesignId,
    column: WorkloadColumn,
    node: TechNode,
    ratio: f64,
) -> Result<Option<f64>, ProjectionError> {
    let advantage = |fv: f64| -> Result<Option<f64>, ProjectionError> {
        let f = ParallelFraction::new(fv)
            .map_err(|e| ProjectionError::Infeasible { reason: e.to_string() })?;
        let c = engine
            .project(challenger, column, f)?
            .into_iter()
            .find(|p| p.node == node);
        let i = engine
            .project(incumbent, column, f)?
            .into_iter()
            .find(|p| p.node == node);
        Ok(match (c, i) {
            (Some(c), Some(i)) => Some(c.speedup / i.speedup),
            _ => None,
        })
    };

    let hi = 0.9999;
    match advantage(hi)? {
        Some(a) if a >= ratio => {}
        _ => return Ok(None),
    }
    let mut lo = 0.0001;
    if advantage(lo)?.is_some_and(|a| a >= ratio) {
        return Ok(Some(lo));
    }
    let mut hi = hi;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if advantage(mid)?.is_some_and(|a| a >= ratio) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(hi))
}

/// The first projection node (if any) at which `challenger` comes within
/// `fraction` of `incumbent`'s speedup at a fixed `f` — e.g. "the FPGA
/// reaches ASIC-like performance as early as 32 nm".
///
/// # Errors
///
/// Propagates projection errors.
pub fn node_crossover(
    engine: &ProjectionEngine,
    challenger: DesignId,
    incumbent: DesignId,
    column: WorkloadColumn,
    f: ParallelFraction,
    fraction: f64,
) -> Result<Option<TechNode>, ProjectionError> {
    let c = engine.project(challenger, column, f)?;
    let i = engine.project(incumbent, column, f)?;
    for node in TechNode::PROJECTION {
        let cv = c.iter().find(|p| p.node == node).map(|p| p.speedup);
        let iv = i.iter().find(|p| p.node == node).map(|p| p.speedup);
        if let (Some(cv), Some(iv)) = (cv, iv) {
            if cv >= fraction * iv {
                return Ok(Some(node));
            }
        }
    }
    Ok(None)
}

/// A named crossover record for reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossoverRecord {
    /// What the crossover describes.
    pub description: String,
    /// The located value (`f` or a node year), if it exists.
    pub value: Option<f64>,
}

/// The paper's headline crossovers, located live.
///
/// # Errors
///
/// Propagates projection errors.
pub fn paper_crossovers(engine: &ProjectionEngine) -> Result<Vec<CrossoverRecord>, ProjectionError> {
    use ucore_devices::DeviceId;
    let mut out = Vec::new();

    // 1. HET beats the AsymCMP by 1.5x on FFT at 11 nm starting at f = ?
    let f1 = f_crossover(
        engine,
        DesignId::Het(DeviceId::Asic),
        DesignId::AsymCmp,
        WorkloadColumn::Fft1024,
        TechNode::N11,
        1.5,
    )?;
    out.push(CrossoverRecord {
        description: "FFT-1024 @11nm: ASIC HET sustains 1.5x over AsymCMP from f".into(),
        value: f1,
    });

    // 2. The FPGA reaches 95% of the ASIC's FFT speedup at which node?
    let n1 = node_crossover(
        engine,
        DesignId::Het(DeviceId::V6Lx760),
        DesignId::Het(DeviceId::Asic),
        WorkloadColumn::Fft1024,
        ParallelFraction::new(0.999)
            .map_err(|e| ProjectionError::Infeasible { reason: e.to_string() })?,
        0.95,
    )?;
    out.push(CrossoverRecord {
        description: "FFT-1024 f=0.999: FPGA reaches 95% of the ASIC at node year".into(),
        value: n1.and_then(|n| n.projection_year()).map(f64::from),
    });

    // 3. MMM: the ASIC pulls 3x away from the R5870 starting at f = ?
    let f2 = f_crossover(
        engine,
        DesignId::Het(DeviceId::Asic),
        DesignId::Het(DeviceId::R5870),
        WorkloadColumn::Mmm,
        TechNode::N11,
        3.0,
    )?;
    out.push(CrossoverRecord {
        description: "MMM @11nm: ASIC sustains 3x over the R5870 from f".into(),
        value: f2,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use ucore_devices::DeviceId;

    fn engine() -> ProjectionEngine {
        ProjectionEngine::new(Scenario::baseline()).unwrap()
    }

    #[test]
    fn het_vs_cmp_crossover_sits_near_f09() {
        // The paper's first conclusion, as a number: significant HET
        // gains need roughly f >= 0.9.
        let e = engine();
        let f = f_crossover(
            &e,
            DesignId::Het(DeviceId::Asic),
            DesignId::AsymCmp,
            WorkloadColumn::Fft1024,
            TechNode::N11,
            1.5,
        )
        .unwrap()
        .expect("crossover exists");
        assert!((0.6..0.97).contains(&f), "crossover at f = {f}");
    }

    #[test]
    fn fpga_catches_asic_by_32nm_on_fft() {
        let e = engine();
        let node = node_crossover(
            &e,
            DesignId::Het(DeviceId::V6Lx760),
            DesignId::Het(DeviceId::Asic),
            WorkloadColumn::Fft1024,
            ParallelFraction::new(0.999).unwrap(),
            0.95,
        )
        .unwrap()
        .expect("the FPGA catches up");
        assert!(
            node == TechNode::N32 || node == TechNode::N40,
            "caught up at {node}"
        );
    }

    #[test]
    fn mmm_asic_needs_extreme_f_to_triple_the_gpu() {
        // Conclusion 3: competitive at 90-99%, decisive only beyond.
        let e = engine();
        let f = f_crossover(
            &e,
            DesignId::Het(DeviceId::Asic),
            DesignId::Het(DeviceId::R5870),
            WorkloadColumn::Mmm,
            TechNode::N11,
            3.0,
        )
        .unwrap()
        .expect("crossover exists");
        assert!(f > 0.99, "crossover at f = {f}");
    }

    #[test]
    fn unreachable_ratio_returns_none() {
        // On FFT both designs share the bandwidth ceiling: a 10x gap
        // never opens.
        let e = engine();
        let f = f_crossover(
            &e,
            DesignId::Het(DeviceId::Asic),
            DesignId::Het(DeviceId::Gtx285),
            WorkloadColumn::Fft1024,
            TechNode::N11,
            10.0,
        )
        .unwrap();
        assert_eq!(f, None);
    }

    #[test]
    fn paper_crossovers_report_is_complete() {
        let records = paper_crossovers(&engine()).unwrap();
        assert_eq!(records.len(), 3);
        assert!(records[0].value.is_some());
        assert!(records[1].value.is_some());
        assert!(records[2].value.is_some());
    }
}
