//! Serializable projection results.

use serde::{Deserialize, Serialize};
use ucore_core::Limiter;
use ucore_devices::TechNode;

/// One projected design point at one technology node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePoint {
    /// The technology node.
    pub node: TechNode,
    /// Best achievable speedup (relative to one BCE).
    pub speedup: f64,
    /// Which resource bound the design (the dashed/solid/unconnected
    /// encoding of the figures).
    pub limiter: Limiter,
    /// The optimal sequential-core size.
    pub r: f64,
    /// The usable resources at the optimum.
    pub n: f64,
    /// Total workload energy, normalized to one BCE at 40 nm.
    pub energy: f64,
}

/// One line of a figure panel: a design swept across nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// The legend label, e.g. `"(6) ASIC"`.
    pub label: String,
    /// One point per feasible node.
    pub points: Vec<NodePoint>,
}

/// One panel of a figure (one parallel fraction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    /// The parallel fraction `f` of this panel.
    pub f: f64,
    /// All plotted series.
    pub series: Vec<Series>,
}

/// Outcome counters for the sweep that produced a figure.
///
/// `points_ok + points_infeasible + points_failed` equals the size of
/// the figure's `(f, design, node)` grid. A healthy figure has
/// `points_failed == 0`; `repro --max-failures` polices the total
/// across all rendered figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SweepHealth {
    /// Points with a feasible optimum.
    pub points_ok: usize,
    /// Points with no feasible design under their budgets (expected
    /// under tight scenarios; omitted from series, not an error).
    pub points_infeasible: usize,
    /// Points whose evaluation failed (contained panic or injected
    /// fault).
    pub points_failed: usize,
    /// Retry attempts consumed by the figure's points under the
    /// `--retries` policy. A resumed run restores each replayed point's
    /// journaled retry count, so this field is identical between an
    /// interrupted-and-resumed run and an uninterrupted one.
    pub retries: u64,
}

/// One contained failure recorded during figure assembly: which cell of
/// the sweep grid failed and why. The point's slot in its series is
/// simply absent; nothing else in the figure is affected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Submission index of the failed point within the figure's sweep.
    pub index: usize,
    /// The parallel fraction of the failed cell.
    pub f: f64,
    /// The series label of the failed cell.
    pub label: String,
    /// The contained panic payload or injected-fault diagnostic.
    pub message: String,
}

/// A reproduced figure: its identity and panels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Which figure this reproduces, e.g. `"figure-6"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The metric plotted on the y-axis.
    pub metric: Metric,
    /// One panel per swept `f`.
    pub panels: Vec<Panel>,
    /// Outcome counters for the sweep that produced this figure.
    pub health: SweepHealth,
    /// Contained failures, in submission order (empty when healthy).
    pub failures: Vec<FailureRecord>,
}

/// What a figure's y-axis shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Speedup relative to one BCE.
    Speedup,
    /// Energy normalized to one BCE at 40 nm.
    Energy,
}

impl FigureData {
    /// The panel for a given `f`, if present.
    pub fn panel(&self, f: f64) -> Option<&Panel> {
        self.panels.iter().find(|p| (p.f - f).abs() < 1e-12)
    }

    /// The value (speedup or energy, per [`Metric`]) of one series at
    /// one node, if plotted.
    pub fn value(&self, f: f64, label_contains: &str, node: TechNode) -> Option<f64> {
        let panel = self.panel(f)?;
        let series = panel
            .series
            .iter()
            .find(|s| s.label.contains(label_contains))?;
        let point = series.points.iter().find(|p| p.node == node)?;
        Some(match self.metric {
            Metric::Speedup => point.speedup,
            Metric::Energy => point.energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        FigureData {
            id: "figure-6".into(),
            title: "FFT-1024 projection".into(),
            metric: Metric::Speedup,
            health: SweepHealth {
                points_ok: 1,
                points_infeasible: 0,
                points_failed: 0,
                retries: 0,
            },
            failures: Vec::new(),
            panels: vec![Panel {
                f: 0.9,
                series: vec![Series {
                    label: "(6) ASIC".into(),
                    points: vec![NodePoint {
                        node: TechNode::N40,
                        speedup: 12.0,
                        limiter: Limiter::Bandwidth,
                        r: 4.0,
                        n: 5.0,
                        energy: 0.5,
                    }],
                }],
            }],
        }
    }

    #[test]
    fn lookup_by_f_label_node() {
        let fig = sample();
        assert_eq!(fig.value(0.9, "ASIC", TechNode::N40), Some(12.0));
        assert_eq!(fig.value(0.9, "ASIC", TechNode::N11), None);
        assert_eq!(fig.value(0.5, "ASIC", TechNode::N40), None);
        assert_eq!(fig.value(0.9, "GTX", TechNode::N40), None);
    }

    #[test]
    fn energy_metric_switches_value() {
        let mut fig = sample();
        fig.metric = Metric::Energy;
        assert_eq!(fig.value(0.9, "ASIC", TechNode::N40), Some(0.5));
    }

    #[test]
    fn serde_round_trip() {
        let fig = sample();
        let json = serde_json::to_string(&fig).unwrap();
        let back: FigureData = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fig);
    }
}
